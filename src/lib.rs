//! # XRBench (Rust reproduction)
//!
//! A full reproduction of **XRBench: An Extended Reality (XR) Machine
//! Learning Benchmark Suite for the Metaverse** (Kwon et al., MLSys
//! 2023): a real-time, multi-task multi-model (MTMM) inference
//! benchmark with scenario-driven workloads, dynamic model cascading,
//! and a hierarchical scoring methodology (real-time × energy ×
//! accuracy × QoE).
//!
//! This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`costmodel`] | `xrbench-costmodel` | MAESTRO-style analytical dataflow cost model |
//! | [`models`] | `xrbench-models` | the 11 unit-model proxies (Tables 1 & 7) |
//! | [`workload`] | `xrbench-workload` | input sources, 7 usage scenarios, jittered load generation (Tables 2 & 3, Box 1) |
//! | [`accel`] | `xrbench-accel` | the 13 simulated accelerators A–M (Table 5) |
//! | [`sim`] | `xrbench-sim` | the discrete-event benchmark runtime (Figure 2) |
//! | [`score`] | `xrbench-score` | the four unit scores and their aggregation (Box 2, Figure 4) |
//! | [`fleet`] | `xrbench-fleet` | fleet-scale execution: sharded device sessions, streaming mergeable aggregation |
//! | [`core`] | `xrbench-core` | the harness, reports, and figure regeneration |
//! | [`analysis`] | `xrbench-analysis` | static schedulability analyzer (`XA###` diagnostics) and the determinism lint |
//!
//! ## Quickstart
//!
//! ```
//! use xrbench::prelude::*;
//!
//! // Evaluate accelerator J (WS+OS HDA) with 8K PEs on VR gaming.
//! let config = table5().into_iter().find(|c| c.id == 'J').unwrap();
//! let system = AcceleratorSystem::new(config, 8192);
//! let report = Harness::new().run_scenario(UsageScenario::VrGaming, &system);
//! println!("overall score: {:.2}", report.overall());
//! assert!(report.overall() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xrbench_accel as accel;
pub use xrbench_analysis as analysis;
pub use xrbench_core as core;
pub use xrbench_costmodel as costmodel;
pub use xrbench_fleet as fleet;
pub use xrbench_models as models;
pub use xrbench_score as score;
pub use xrbench_sim as sim;
pub use xrbench_workload as workload;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use xrbench_accel::{
        config_by_id, table5, AcceleratorConfig, AcceleratorStyle, AcceleratorSystem,
    };
    pub use xrbench_analysis::{
        analyze_fleet, analyze_run_document, analyze_scenario, analyze_session, Analysis,
        Diagnostic, FeasibleSampling, Severity,
    };
    pub use xrbench_core::{
        run_sessions, run_suite, run_suite_catalog, BenchmarkReport, BreakdownReport, ErrorCode,
        FleetRun, Harness, ModelReport, RunDocument, RunReport, Runner, ScenarioReport,
        SchedulerSpec, SessionReport, SessionRun, SuiteRun, SweepDocument, SweepReport, SystemSpec,
        UserReport, XrError,
    };
    pub use xrbench_costmodel::{
        evaluate_layer, evaluate_layers, Dataflow, HardwareConfig, Layer, LayerKind,
        MappingStrategy, TensorDims,
    };
    pub use xrbench_fleet::{run_fleet, DeviceGroup, FleetReport, FleetRunConfig, FleetSpec};
    pub use xrbench_models::{model_info, ModelId, TaskCategory};
    pub use xrbench_score::{benchmark_score, InferenceScore, ModelOutcome};
    pub use xrbench_sim::{
        CostProvider, DenseCostCache, InferenceCost, LatencyGreedy, LeastLoaded, RoundRobin,
        Scheduler, SessionSimResult, SimConfig, Simulator, SlackAwareEdf, TableProvider,
    };
    pub use xrbench_workload::{
        scenario_from_str, scenario_to_json, session_from_str, session_to_json, LoadGenerator,
        ScenarioBuilder, ScenarioCatalog, ScenarioSpace, ScenarioSpec, SessionSpec, SpecError,
        UsageScenario,
    };
}
