//! Golden diagnostic fixtures for the static analyzer.
//!
//! Pins the analyzer's stable JSON form (`tests/fixtures/analyze/`):
//!
//! 1. The 7 builtin Table 2 scenarios, analyzed on the quickstart
//!    system (accelerator J at 8192 PEs) — all of them analyzer-clean
//!    (no errors), matching the acceptance bar that
//!    `xrbench analyze specs/suite_default.json` exits 0.
//! 2. Four hand-crafted statically-infeasible specs, each pinned to
//!    the exact `XA###` error codes it must produce.
//!
//! Re-bless after an intentional diagnostic change with:
//!
//! ```sh
//! XRBENCH_BLESS=1 cargo test --test analysis_golden
//! ```

use std::fs;
use std::path::PathBuf;

use xrbench::analysis::{analyze_run_document, analyze_scenario, Analysis, Severity};
use xrbench::prelude::*;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_dir() -> PathBuf {
    repo_root().join("tests").join("fixtures").join("analyze")
}

fn bless() -> bool {
    std::env::var("XRBENCH_BLESS").is_ok_and(|v| v == "1")
}

fn quickstart_system() -> AcceleratorSystem {
    AcceleratorSystem::new(config_by_id('J').expect("J exists"), 8192)
}

/// Compares `analysis` JSON against the named fixture byte-for-byte
/// (or rewrites it under `XRBENCH_BLESS=1`). Returns the JSON.
fn check_fixture(analysis: &Analysis, fixture: &str) -> String {
    let json = analysis.to_json() + "\n";
    let path = fixture_dir().join(fixture);
    if bless() {
        fs::create_dir_all(fixture_dir()).expect("fixture dir");
        fs::write(&path, &json).expect("write fixture");
        return json;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        expected, json,
        "{fixture} drifted (re-bless with XRBENCH_BLESS=1 after an intentional change)"
    );
    json
}

fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace(' ', "_")
}

#[test]
fn builtin_scenarios_pin_their_diagnostics() {
    let system = quickstart_system();
    for scenario in UsageScenario::ALL {
        let spec = scenario.spec();
        let analysis = analyze_scenario(&spec, &system);
        check_fixture(
            &analysis,
            &format!("scenario_{}.diag.json", slug(&spec.name)),
        );
        assert!(
            !analysis.has_errors(),
            "builtin scenario {} must analyze clean on J@8192:\n{}",
            spec.name,
            analysis.to_text()
        );
    }
}

#[test]
fn infeasible_fixtures_pin_their_error_codes() {
    // (spec file, exact error-severity code sequence it must emit)
    let cases: [(&str, &[&str]); 4] = [
        // Every model alone overloads 2 × 100 ms engines (XA001 per
        // model), so the aggregate does too (XA002).
        (
            "infeasible_unsustainable",
            &["XA001", "XA001", "XA001", "XA002"],
        ),
        // Each chain stage fits alone — only the aggregate utilization
        // test catches the overload.
        ("infeasible_cascade", &["XA002"]),
        // Each user fits; four concurrent users on one device do not.
        ("infeasible_overload", &["XA010"]),
        // The workload fits the raw engines, but the group's fault
        // process (availability × throttle derating) does not leave
        // enough capacity — only the fault-aware check catches it.
        ("infeasible_faulted", &["XA014"]),
    ];
    for (name, expected_codes) in cases {
        let spec_path = fixture_dir().join(format!("{name}.spec.json"));
        let text = fs::read_to_string(&spec_path)
            .unwrap_or_else(|e| panic!("{}: {e}", spec_path.display()));
        let doc = RunDocument::from_json_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = analyze_run_document(&doc);
        let codes: Vec<&str> = analysis.errors().map(|d| d.code).collect();
        assert_eq!(codes, expected_codes, "{name}:\n{}", analysis.to_text());
        check_fixture(&analysis, &format!("{name}.diag.json"));
    }
}

#[test]
fn committed_spec_files_analyze_clean() {
    // The CI analysis-gate runs `xrbench analyze` over everything in
    // specs/; this is the same bar library-side, so a spec change that
    // breaks the gate fails locally first.
    let specs = repo_root().join("specs");
    let mut checked = 0;
    for entry in [
        "suite_default.json",
        "session_default.json",
        "fleet_default.json",
    ] {
        let text = fs::read_to_string(specs.join(entry)).expect("committed spec");
        let doc = RunDocument::from_json_str(&text).expect("valid document");
        let analysis = analyze_run_document(&doc);
        assert!(!analysis.has_errors(), "{entry}:\n{}", analysis.to_text());
        checked += 1;
    }
    let system = quickstart_system();
    for entry in fs::read_dir(specs.join("scenarios")).expect("scenarios dir") {
        let path = entry.expect("entry").path();
        let text = fs::read_to_string(&path).expect("scenario spec");
        let spec = scenario_from_str(&text).expect("valid scenario");
        let analysis = analyze_scenario(&spec, &system);
        assert!(
            !analysis.has_errors(),
            "{}:\n{}",
            path.display(),
            analysis.to_text()
        );
        checked += 1;
    }
    assert_eq!(checked, 3 + 7, "covered every committed spec");
}

#[test]
fn severity_mapping_matches_the_soft_deadline_model() {
    // PD on J@8192 misses its 33 ms deadline (the accel tests pin
    // this) yet drops nothing — the analyzer must call that a warning
    // (XA004), never an error, or the committed suite spec would be
    // rejected.
    let analysis = analyze_scenario(&UsageScenario::ArGaming.spec(), &quickstart_system());
    let pd = analysis
        .diagnostics
        .iter()
        .find(|d| d.model == Some(ModelId::PlaneDetection) && d.code == "XA004")
        .expect("PD deadline warning present");
    assert_eq!(pd.severity, Severity::Warning);
    assert!(!analysis.has_errors());
}
