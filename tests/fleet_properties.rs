//! Property-based tests over the fleet layer: exact-merge algebra of
//! the accumulator, worker-count invariance of whole fleet runs, and
//! the 1-session fleet ↔ `Harness::run_session` parity that anchors
//! the fleet's scoring semantics to the harness's.

use proptest::prelude::*;

use xrbench::fleet::{
    merge_fleet_shards, plan_shards, replica_seed, FleetAccumulator, FleetSpec, ShardState,
    StatAgg, SCORE_SCALE, TIME_SCALE,
};
use xrbench::models::ModelId;
use xrbench::prelude::*;
use xrbench::score::ScenarioBreakdown;
use xrbench::sim::{
    ExecRecord, FaultProcess, ModelStats, RecoveryPolicy, ThrottleSpec, UniformProvider,
};

/// Splitmix64 step — randomized structure derived deterministically
/// from one proptest-drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn pick(state: &mut u64, n: usize) -> usize {
    (mix(state) % n as u64) as usize
}

/// A synthetic accumulator: random records, stats, user breakdowns,
/// and session scores folded in — everything `merge` has to preserve.
fn synth_acc(seed: u64) -> FleetAccumulator {
    let mut st = seed;
    let mut acc = FleetAccumulator::new();
    let records = 1 + pick(&mut st, 40);
    for _ in 0..records {
        let model = ModelId::ALL[pick(&mut st, ModelId::ALL.len())];
        let t_req = unit(&mut st);
        let latency = 1e-5 + unit(&mut st) * 0.05;
        let rec = ExecRecord {
            model,
            frame_id: mix(&mut st) % 1000,
            sensor_frame: mix(&mut st) % 1000,
            engine: pick(&mut st, 4),
            t_req,
            t_deadline: t_req + unit(&mut st) * 0.03,
            t_start: t_req,
            t_end: t_req + latency,
            energy_j: unit(&mut st) * 0.002,
        };
        acc.latency.record(rec.latency_s());
        acc.overrun.record(rec.overrun_s());
        acc.score.record(unit(&mut st));
        acc.model_mut(rec.model).record_exec(&rec);
        acc.model_mut(rec.model).absorb_stats(&ModelStats {
            total_frames: 1 + mix(&mut st) % 3,
            executed_frames: 1,
            dropped_superseded: mix(&mut st) % 2,
            dropped_starved: mix(&mut st) % 2,
            ..Default::default()
        });
    }
    let sessions = 1 + pick(&mut st, 3) as u64;
    for _ in 0..sessions {
        acc.sessions += 1;
        let users = 1 + pick(&mut st, 4);
        acc.users += users as u64;
        acc.session_score.record(unit(&mut st), SCORE_SCALE);
        for _ in 0..users {
            let name = ["VR Gaming", "AR Gaming", "Social"][pick(&mut st, 3)];
            let b = ScenarioBreakdown {
                realtime: unit(&mut st),
                energy: unit(&mut st),
                accuracy: unit(&mut st),
                qoe: unit(&mut st),
                overall: unit(&mut st),
            };
            acc.scenario_mut(name).record_user(&b);
        }
    }
    acc
}

/// A small random fleet: 1–3 groups of 1–3 replicas of 1–4-user
/// sessions over randomly chosen built-in scenarios.
fn random_fleet(seed: u64) -> FleetSpec {
    let mut st = seed;
    let mut fleet = FleetSpec::new(format!("prop-{seed:x}"));
    let groups = 1 + pick(&mut st, 3);
    for g in 0..groups {
        let scenario = UsageScenario::ALL[pick(&mut st, UsageScenario::ALL.len())];
        let users = 1 + pick(&mut st, 4) as u32;
        let stagger = unit(&mut st) * 0.01;
        let session = SessionSpec::uniform(
            format!("g{g}-{}", scenario.spec().name),
            scenario.spec(),
            users,
            stagger,
        );
        fleet = fleet.group(format!("group-{g}"), session, 1 + pick(&mut st, 3) as u32);
    }
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accumulator_merge_is_associative_and_commutative(
        sa in any::<u64>(),
        sb in any::<u64>(),
        sc in any::<u64>(),
    ) {
        let (a, b, c) = (synth_acc(sa), synth_acc(sb), synth_acc(sc));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Identity: merging an empty accumulator changes nothing.
        let mut with_empty = a.clone();
        with_empty.merge(&FleetAccumulator::new());
        prop_assert_eq!(&with_empty, &a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stat_agg_quarantines_anomalies_through_any_merge_tree(
        seed in any::<u64>(),
        split in 0usize..=60,
    ) {
        // Streams salted with NaN / ±inf / −0.0: anomalies must be
        // counted (never summed), and any two-way partition of the
        // stream must merge to bit-identical state in either order.
        let mut st = seed;
        let vals: Vec<f64> = (0..60)
            .map(|_| match pick(&mut st, 8) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => unit(&mut st) * 0.05,
            })
            .collect();
        let mut whole = StatAgg::default();
        for &v in &vals {
            whole.record(v, TIME_SCALE);
        }
        let n_anomalies = vals.iter().filter(|v| !v.is_finite()).count() as u64;
        prop_assert_eq!(whole.anomalies, n_anomalies);
        prop_assert_eq!(whole.count + whole.anomalies, vals.len() as u64);
        prop_assert!(whole.min().is_finite());
        prop_assert!(whole.max().is_finite());
        prop_assert!(whole.mean(TIME_SCALE).is_finite());

        let split = split.min(vals.len());
        let mut left = StatAgg::default();
        for &v in &vals[..split] {
            left.record(v, TIME_SCALE);
        }
        let mut right = StatAgg::default();
        for &v in &vals[split..] {
            right.record(v, TIME_SCALE);
        }
        let mut lr = left;
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        prop_assert_eq!(lr, whole);
        prop_assert_eq!(rl, whole);
    }
}

/// Like [`random_fleet`], but even-indexed groups carry a random
/// (always-valid) fault process, half of them with a thermal throttle.
fn random_faulted_fleet(seed: u64) -> FleetSpec {
    let mut st = seed;
    let mut fleet = FleetSpec::new(format!("churn-{seed:x}"));
    let groups = 1 + pick(&mut st, 2);
    for g in 0..groups {
        let scenario = UsageScenario::ALL[pick(&mut st, UsageScenario::ALL.len())];
        let users = 1 + pick(&mut st, 3) as u32;
        let session = SessionSpec::uniform(
            format!("g{g}-{}", scenario.spec().name),
            scenario.spec(),
            users,
            0.002,
        );
        let replicas = 1 + pick(&mut st, 2) as u32;
        let faults = FaultProcess {
            failure_rate_per_s: unit(&mut st) * 3.0,
            mean_downtime_s: 0.01 + unit(&mut st) * 0.1,
            preemption_rate_per_s: unit(&mut st) * 5.0,
            mean_preemption_s: 0.005 + unit(&mut st) * 0.05,
            throttle: if pick(&mut st, 2) == 0 {
                None
            } else {
                Some(ThrottleSpec {
                    period_s: 0.2 + unit(&mut st),
                    duty: 0.3,
                    factor: 0.5,
                })
            },
        };
        fleet = if g % 2 == 0 {
            fleet.group_faulted(format!("group-{g}"), session, replicas, faults)
        } else {
            fleet.group(format!("group-{g}"), session, replicas)
        };
    }
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn faulted_fleets_stay_worker_count_invariant(seed in any::<u64>()) {
        // Fault timelines derive from replica seeds, so the report
        // must stay byte-identical for any worker count under every
        // recovery policy.
        let fleet = random_faulted_fleet(seed);
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new().with_seed(seed ^ 0xFA017);
        for policy in RecoveryPolicy::ALL {
            let one = h.run_fleet_with_recovery(&fleet, &p, 1, policy).to_json();
            for workers in [2usize, 8] {
                let other = h.run_fleet_with_recovery(&fleet, &p, workers, policy).to_json();
                prop_assert_eq!(&one, &other, "workers = {}, policy = {}", workers, policy);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn worker_count_never_changes_the_report(seed in any::<u64>()) {
        // 1-, 2-, and 8-worker runs of the same fleet must serialize
        // to byte-identical JSON.
        let fleet = random_fleet(seed);
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new().with_seed(seed ^ 0xF1EE7);
        let one = h.run_fleet(&fleet, &p, 1).to_json();
        for workers in [2usize, 8] {
            let other = h.run_fleet(&fleet, &p, workers).to_json();
            prop_assert_eq!(&one, &other, "workers = {}", workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_session_fleet_matches_run_session(
        seed in any::<u64>(),
        users in 1u32..5,
        engines in 1usize..4,
        latency in 0.0005f64..0.006,
    ) {
        let mut st = seed;
        let scenario = UsageScenario::ALL[pick(&mut st, UsageScenario::ALL.len())];
        let session = SessionSpec::uniform("solo", scenario.spec(), users, 0.003);
        let p = UniformProvider::new(engines, latency, 0.001);

        // The fleet derives session seeds from its base seed; run the
        // reference session under exactly the derived seed.
        let fleet_report = Harness::new()
            .with_seed(seed)
            .run_fleet(&FleetSpec::uniform("one", session.clone(), 1), &p, 2);
        let session_report = Harness::new()
            .with_seed(replica_seed(seed, 0, 0))
            .run_session(&session, &p, &mut LatencyGreedy::new());

        // Integer accounting matches exactly.
        prop_assert_eq!(fleet_report.num_sessions, 1);
        prop_assert_eq!(fleet_report.num_users as usize, session_report.num_users);
        let total: u64 = session_report
            .users
            .iter()
            .flat_map(|u| u.report.models.iter())
            .map(|m| m.total_frames)
            .sum();
        let executed: u64 = session_report
            .users
            .iter()
            .flat_map(|u| u.report.models.iter())
            .map(|m| m.executed_frames)
            .sum();
        let missed: u64 = session_report
            .users
            .iter()
            .flat_map(|u| u.report.models.iter())
            .map(|m| m.missed_deadlines)
            .sum();
        prop_assert_eq!(fleet_report.total_requests, total);
        prop_assert_eq!(fleet_report.executed_inferences, executed);
        prop_assert_eq!(fleet_report.missed_deadlines, missed);
        prop_assert_eq!(fleet_report.drops.superseded, session_report.drops.superseded);
        prop_assert_eq!(
            fleet_report.drops.upstream_dropped,
            session_report.drops.upstream_dropped
        );
        prop_assert_eq!(fleet_report.drops.starved, session_report.drops.starved);

        // Per-model counts match exactly.
        for u in &session_report.users {
            for m in &u.report.models {
                let fm = fleet_report.model(&m.model).expect("fleet lists the model");
                prop_assert!(fm.total_frames >= m.total_frames);
            }
        }

        // Score aggregates match up to the accumulator's fixed-point
        // quantization (2^-62 per value — far below 1e-9).
        prop_assert!(
            (fleet_report.fleet_score - session_report.session_score).abs() < 1e-9,
            "fleet {} vs session {}",
            fleet_report.fleet_score,
            session_report.session_score
        );
        let fs = &fleet_report.scenarios[0];
        let agg = &session_report.aggregate;
        prop_assert!((fs.overall_score - agg.overall_score).abs() < 1e-9);
        prop_assert!((fs.realtime_score - agg.realtime_score).abs() < 1e-9);
        prop_assert!((fs.energy_score - agg.energy_score).abs() < 1e-9);
        prop_assert!((fs.accuracy_score - agg.accuracy_score).abs() < 1e-9);
        prop_assert!((fs.qoe_score - agg.qoe_score).abs() < 1e-9);

        // The fairness extremes bracket every user's overall score.
        for u in &session_report.users {
            let o = u.report.overall();
            prop_assert!(o >= fs.min_overall - 1e-9 && o <= fs.max_overall + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_shard_cut_merges_byte_identically_to_the_unsharded_run(
        seed in any::<u64>(),
        num_shards in 1u32..8,
    ) {
        // The shard-plan layer must be invisible: for any shard count
        // — including shards that end up empty — running each shard
        // independently, round-tripping its partial state through the
        // JSON wire format (as the multi-process coordinator does),
        // and merging must reproduce the unsharded report byte for
        // byte. Odd seeds exercise fault-injected fleets so outage
        // schedules cross the cut too.
        let fleet = if seed % 2 == 1 {
            random_faulted_fleet(seed)
        } else {
            random_fleet(seed)
        };
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new().with_seed(seed ^ 0x54A8D);
        let reference = h.run_fleet(&fleet, &p, 2).to_json();

        let states: Vec<ShardState> = (0..num_shards)
            .map(|k| {
                let wire = h
                    .run_fleet_shard(&fleet, &p, 2, RecoveryPolicy::default(), k, num_shards)
                    .to_json();
                ShardState::from_json(&wire).expect("shard state survives the wire format")
            })
            .collect();
        let merged = merge_fleet_shards(
            &fleet,
            &p.label(),
            LatencyGreedy::new().name(),
            &states,
        )
        .expect("a complete shard set merges");
        prop_assert_eq!(&merged.to_json(), &reference, "num_shards = {}", num_shards);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shard_plans_cover_every_session_exactly_once(
        seed in any::<u64>(),
        num_shards in 1u32..20,
    ) {
        // Every (group, replica) coordinate appears in exactly one
        // shard, with global indices preserved — the invariant that
        // keeps replica_seed (and thus fault timelines) independent
        // of the cut.
        let fleet = random_fleet(seed);
        let plan = plan_shards(&fleet, num_shards);
        prop_assert_eq!(plan.num_shards(), num_shards);
        let mut seen = std::collections::BTreeSet::new();
        for shard in &plan.shards {
            for piece in shard {
                for r in piece.replica_start..piece.replica_start + piece.replica_count {
                    prop_assert!(
                        seen.insert((piece.group, r)),
                        "session covered twice: group {} replica {}",
                        piece.group,
                        r
                    );
                }
            }
        }
        let expected: usize = fleet.groups.iter().map(|g| g.replicas as usize).sum();
        prop_assert_eq!(seen.len(), expected);
    }
}

#[test]
fn replica_seeds_decorrelate_sessions_from_the_base_seed() {
    // A fleet's sessions must not accidentally reuse the raw base
    // seed (replica 0 of group 0 included), and distinct groups and
    // replicas must get distinct seeds.
    let base = 0xC0FF_EE00u64;
    assert_ne!(replica_seed(base, 0, 0), base);
    let mut seen = std::collections::BTreeSet::new();
    for g in 0..8u32 {
        for r in 0..8u32 {
            assert!(seen.insert(replica_seed(base, g, r)));
        }
    }
}
