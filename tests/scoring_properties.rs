//! Property-based tests over the scoring stack and cross-crate
//! invariants, using randomly generated workload outcomes.

use proptest::prelude::*;

use xrbench::score::{
    accuracy_score, benchmark_score, energy_score, qoe_score, rt_score, scenario_score,
    AccuracyParams, EnergyParams, InferenceScore, MetricKind, ModelOutcome, RtParams,
};

proptest! {
    #[test]
    fn rt_score_always_in_unit_interval(
        latency in 0.0_f64..100.0,
        slack in -1.0_f64..1.0,
        k in 0.0_f64..100.0,
    ) {
        let s = rt_score(latency, slack, RtParams { k_per_ms: k });
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
        prop_assert!(s.is_finite());
    }

    #[test]
    fn rt_score_monotone_in_latency(
        l1 in 0.0_f64..10.0,
        dl in 0.0_f64..10.0,
        slack in 0.0_f64..0.1,
    ) {
        let p = RtParams::default();
        let a = rt_score(l1, slack, p);
        let b = rt_score(l1 + dl, slack, p);
        prop_assert!(b <= a + 1e-12);
    }

    #[test]
    fn rt_score_monotone_in_slack(
        latency in 0.0_f64..1.0,
        s1 in 0.0_f64..1.0,
        ds in 0.0_f64..1.0,
    ) {
        let p = RtParams::default();
        prop_assert!(rt_score(latency, s1 + ds, p) >= rt_score(latency, s1, p) - 1e-12);
    }

    #[test]
    fn energy_score_in_unit_interval_and_antitone(
        e1 in 0.0_f64..10.0,
        de in 0.0_f64..10.0,
    ) {
        let p = EnergyParams::default();
        let a = energy_score(e1, p);
        let b = energy_score(e1 + de, p);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b <= a + 1e-12);
    }

    #[test]
    fn accuracy_score_in_unit_interval(
        measured in 0.0_f64..1000.0,
        target in 0.001_f64..1000.0,
        hib in any::<bool>(),
    ) {
        let kind = if hib { MetricKind::HigherIsBetter } else { MetricKind::LowerIsBetter };
        let s = accuracy_score(measured, target, kind, AccuracyParams::default());
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn qoe_is_exact_ratio(total in 1u64..10_000, frac in 0.0_f64..=1.0) {
        let executed = ((total as f64) * frac).floor() as u64;
        let q = qoe_score(executed, total);
        prop_assert!((q - executed as f64 / total as f64).abs() < 1e-12);
    }

    #[test]
    fn scenario_score_bounded_by_min_component_product_bound(
        scores in prop::collection::vec(
            (0.0_f64..=1.0, 0.0_f64..=1.0, 0.0_f64..=1.0),
            1..40,
        ),
        total_extra in 0u64..20,
    ) {
        let inf: Vec<InferenceScore> = scores
            .iter()
            .map(|&(r, e, a)| InferenceScore::new(r, e, a))
            .collect();
        let outcome = ModelOutcome {
            total_frames: inf.len() as u64 + total_extra,
            inference_scores: inf,
        };
        let b = scenario_score(&[outcome]);
        prop_assert!((0.0..=1.0).contains(&b.overall));
        // Overall = per-model * qoe <= qoe, and <= each mean component
        // since the product of [0,1] factors is <= each factor.
        prop_assert!(b.overall <= b.qoe + 1e-12);
        prop_assert!(b.overall <= b.realtime + 1e-12);
        prop_assert!(b.overall <= b.energy + 1e-12);
        prop_assert!(b.overall <= b.accuracy + 1e-12);
    }

    #[test]
    fn benchmark_score_between_min_and_max(
        scores in prop::collection::vec(0.0_f64..=1.0, 1..10)
    ) {
        let b = benchmark_score(&scores);
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(b >= min - 1e-12 && b <= max + 1e-12);
    }
}
