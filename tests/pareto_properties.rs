//! Property-based tests for `core::pareto` frontier analysis: the
//! frontier must be mutually non-dominated, must cover every
//! dominated point with a dominating member, and must be invariant
//! (as a set of designs) under input permutation.

use proptest::prelude::*;

use xrbench::core::pareto::{pareto_frontier, ParetoPoint};

/// Builds labeled points from raw objective tuples. Objectives are
/// quantized to a coarse grid so random inputs actually produce ties
/// and duplicates — the edge cases where frontier bugs hide.
fn points_from(raw: &[(f64, f64, f64)], quantize: bool) -> Vec<ParetoPoint> {
    raw.iter()
        .enumerate()
        .map(|(i, &(a, b, c))| {
            let q = |v: f64| {
                if quantize {
                    (v * 4.0).round() / 4.0
                } else {
                    v
                }
            };
            ParetoPoint::new(format!("p{i}"), vec![q(a), q(b), q(c)])
        })
        .collect()
}

/// A deterministic seeded Fisher–Yates shuffle (no global RNG in
/// tests either: the permutation must be reproducible from the seed).
fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed | 1;
    for i in (1..len).rev() {
        // SplitMix64 step: plenty for a test permutation.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        order.swap(i, (z % (i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    /// No frontier member dominates another frontier member.
    #[test]
    fn frontier_members_are_mutually_non_dominated(
        raw in prop::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 1..24),
    ) {
        let points = points_from(&raw, true);
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty(), "a non-empty set has a frontier");
        for &i in &frontier {
            for &j in &frontier {
                if i != j {
                    prop_assert!(
                        !points[i].dominates(&points[j]),
                        "frontier member {i} dominates frontier member {j}"
                    );
                }
            }
        }
    }

    /// Every point left off the frontier is dominated by at least one
    /// frontier member (dominance is a strict partial order, so every
    /// dominated point sits below some maximal element).
    #[test]
    fn every_dominated_point_is_dominated_by_a_frontier_member(
        raw in prop::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 1..24),
    ) {
        let points = points_from(&raw, true);
        let frontier = pareto_frontier(&points);
        for i in 0..points.len() {
            if frontier.contains(&i) {
                continue;
            }
            prop_assert!(
                frontier.iter().any(|&f| points[f].dominates(&points[i])),
                "off-frontier point {i} is not dominated by any frontier member"
            );
        }
    }

    /// The frontier — as a set of designs — does not depend on input
    /// order, and the returned indices are always in input order.
    #[test]
    fn frontier_is_invariant_under_permutation(
        raw in prop::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 1..24),
        seed in proptest::any::<u64>(),
    ) {
        let points = points_from(&raw, true);
        let frontier = pareto_frontier(&points);
        prop_assert!(
            frontier.windows(2).all(|w| w[0] < w[1]),
            "frontier indices must come back sorted (input order)"
        );
        let order = shuffled(points.len(), seed);
        let permuted: Vec<ParetoPoint> = order.iter().map(|&i| points[i].clone()).collect();
        let permuted_frontier = pareto_frontier(&permuted);
        // Map both frontiers back to original indices and compare as
        // sorted sets.
        let mut expected: Vec<usize> = frontier.clone();
        let mut actual: Vec<usize> = permuted_frontier.iter().map(|&i| order[i]).collect();
        expected.sort_unstable();
        actual.sort_unstable();
        prop_assert_eq!(expected, actual, "frontier changed under permutation");
    }

    /// Un-quantized continuous objectives (almost surely no ties):
    /// the frontier covers the best value of every single objective.
    #[test]
    fn frontier_contains_each_objective_maximum(
        raw in prop::collection::vec((0.0_f64..1.0, 0.0_f64..1.0, 0.0_f64..1.0), 1..24),
    ) {
        let points = points_from(&raw, false);
        let frontier = pareto_frontier(&points);
        for axis in 0..3 {
            let best = points
                .iter()
                .map(|p| p.objectives[axis])
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                frontier.iter().any(|&f| points[f].objectives[axis] == best),
                "no frontier member attains the axis-{axis} maximum {best}"
            );
        }
    }
}
