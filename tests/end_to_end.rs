//! End-to-end integration tests spanning the whole stack: workload
//! generation → accelerator cost model → runtime → scoring.

use xrbench::prelude::*;

fn system(id: char, pes: u64) -> AcceleratorSystem {
    let cfg = table5()
        .into_iter()
        .find(|c| c.id == id)
        .expect("table 5 id");
    AcceleratorSystem::new(cfg, pes)
}

#[test]
fn every_accelerator_runs_every_scenario() {
    let harness = Harness::new();
    for cfg in table5() {
        let sys = AcceleratorSystem::new(cfg, 4096);
        for scenario in UsageScenario::ALL {
            let report = harness.run_scenario(scenario, &sys);
            assert!(
                (0.0..=1.0).contains(&report.overall()),
                "{}: {} out of range",
                sys.label(),
                scenario
            );
            assert!((0.0..=1.0).contains(&report.breakdown.realtime_score));
            assert!((0.0..=1.0).contains(&report.breakdown.energy_score));
            assert!((0.0..=1.0).contains(&report.breakdown.qoe_score));
        }
    }
}

#[test]
fn full_suite_produces_bounded_xrbench_score() {
    let bench = run_suite(&Harness::new(), &system('J', 8192), 3);
    assert_eq!(bench.scenarios.len(), 7);
    assert!(bench.xrbench_score > 0.0 && bench.xrbench_score <= 1.0);
}

#[test]
fn whole_benchmark_is_deterministic_for_a_seed() {
    let h = Harness::new().with_seed(1234);
    let a = run_suite(&h, &system('M', 4096), 2);
    let b = run_suite(&h, &system('M', 4096), 2);
    assert_eq!(a, b);
}

#[test]
fn more_pes_never_hurt_the_overall_score_much() {
    // 8K should beat or match 4K on every accelerator (small noise
    // from jitter/cascade draws allowed).
    let h = Harness::new();
    for cfg in table5() {
        let s4 = run_suite(&h, &AcceleratorSystem::new(cfg.clone(), 4096), 3).xrbench_score;
        let s8 = run_suite(&h, &AcceleratorSystem::new(cfg.clone(), 8192), 3).xrbench_score;
        assert!(
            s8 >= s4 - 0.05,
            "{}: 8K ({s8:.3}) much worse than 4K ({s4:.3})",
            cfg.id
        );
    }
}

#[test]
fn figure6_contrast_4k_vs_8k_on_accelerator_j() {
    // The Figure 6 qualitative claims, end to end.
    let h = Harness::new();
    let r4 = h.run_scenario(UsageScenario::ArGaming, &system('J', 4096));
    let r8 = h.run_scenario(UsageScenario::ArGaming, &system('J', 8192));
    // 4K drops a large fraction of frames, 8K almost none.
    assert!(r4.drop_rate > 0.2, "4K drop rate {:.2}", r4.drop_rate);
    assert!(r8.drop_rate < 0.1, "8K drop rate {:.2}", r8.drop_rate);
    // 4K is busier yet scores worse: the utilization fallacy.
    assert!(r4.mean_utilization > r8.mean_utilization);
    assert!(r4.overall() < r8.overall());
    // PD misses its 33 ms deadline even at 8K (realtime ≈ (1+1+0)/3).
    let pd8 = r8.model("PD").expect("PD active in AR gaming");
    assert!(pd8.missed_deadlines > 25);
    assert!(r8.breakdown.realtime_score < 0.8);
}

#[test]
fn dependency_and_occupancy_conditions_hold_on_real_systems() {
    // Appendix B.2 schedule-validity conditions on a full-stack run.
    use xrbench::models::ModelId;
    let sys = system('M', 4096);
    let h = Harness::new();
    let (_, result) = h.run_spec(
        &UsageScenario::SocialInteractionA.spec(),
        &sys,
        &mut LatencyGreedy::new(),
    );
    // Dependency: GE after same-frame ES.
    for ge in result.records_for(ModelId::GazeEstimation) {
        let es = result
            .records_for(ModelId::EyeSegmentation)
            .find(|e| e.sensor_frame == ge.sensor_frame)
            .expect("upstream ES record");
        assert!(ge.t_start >= es.t_end - 1e-12);
    }
    // Occupancy: no overlap per engine.
    for e in 0..result.num_engines {
        let mut recs: Vec<_> = result.records.iter().filter(|r| r.engine == e).collect();
        recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        for w in recs.windows(2) {
            assert!(w[1].t_start >= w[0].t_end - 1e-12);
        }
    }
}

#[test]
fn reports_serialize_to_json() {
    let report = Harness::new().run_scenario(UsageScenario::VrGaming, &system('A', 8192));
    let json = report.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert!(value["overall_score"].is_number());
    assert_eq!(value["scenario"], "VR Gaming");
    assert!(value["models"].as_array().expect("models").len() == 3);
}

#[test]
fn longer_runs_scale_frame_counts() {
    let sys = system('A', 8192);
    let h = Harness::new().with_duration(3.0);
    let report = h.run_scenario(UsageScenario::VrGaming, &sys);
    let ht = report.model("HT").expect("HT");
    assert_eq!(ht.total_frames, 135);
}

#[test]
fn accuracy_score_stays_one_with_default_quality() {
    // §4.1: deployed models satisfy the quality goals, so the
    // accuracy score is 1 and the overall score is driven by
    // real-time, energy, and QoE.
    let report = Harness::new().run_scenario(UsageScenario::OutdoorActivityB, &system('C', 8192));
    assert!((report.breakdown.accuracy_score - 1.0).abs() < 1e-6);
}
