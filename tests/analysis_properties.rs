//! Property tests tying the static analyzer to the simulator: the
//! analyzer's "no errors" verdict must be sound (an analyzer-clean
//! spec is never 100%-dropped at runtime), `feasible_only` sampling
//! must be deterministic and always deliver analyzer-clean specs, and
//! the analyzer itself must be a pure function of its inputs.

use proptest::prelude::*;

use xrbench::analysis::FeasibleSampling;
use xrbench::prelude::*;
use xrbench::sim::UniformProvider;

/// A deliberately tight uniform system: 2 engines at 8 ms means a
/// single 60 FPS model already claims 0.48 engine-s/s, so the default
/// scenario space (2–6 models) straddles the feasibility boundary and
/// both analyzer verdicts actually occur across seeds.
fn tight_system() -> UniformProvider {
    UniformProvider::new(2, 0.008, 0.001)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the XA001/XA002 utilization errors: when the
    /// analyzer reports no errors, the simulator must deliver at
    /// least one frame — a clean spec is never 100%-dropped.
    #[test]
    fn analyzer_clean_specs_are_never_fully_dropped(seed in any::<u64>()) {
        let system = tight_system();
        let spec = ScenarioSpace::default().sample(seed);
        let analysis = analyze_scenario(&spec, &system);
        if !analysis.has_errors() {
            let harness = Harness::new().with_seed(seed).with_duration(2.0);
            let (_, result) = harness.run_spec(&spec, &system, &mut LatencyGreedy::new());
            prop_assert!(
                result.drop_rate() < 1.0,
                "analyzer-clean spec fully dropped (seed {seed}):\n{}",
                analysis.to_text()
            );
        }
    }

    /// `feasible_only` resampling always lands on an analyzer-clean
    /// spec, and the whole search is a pure function of the seed.
    #[test]
    fn feasible_sampling_is_clean_and_deterministic(seed in any::<u64>()) {
        let system = tight_system();
        let space = ScenarioSpace::default();
        let feasible = space.feasible_only(&system);
        let spec = feasible
            .try_sample(seed)
            .expect("default space has feasible points on 2x8ms hardware");
        prop_assert!(
            !analyze_scenario(&spec, &system).has_errors(),
            "feasible_only returned a spec with analyzer errors (seed {seed})"
        );
        let again = feasible.try_sample(seed).expect("same seed, same outcome");
        prop_assert_eq!(spec, again);
    }

    /// The analyzer is a pure function: same spec + provider twice
    /// gives byte-identical JSON (no hidden iteration-order or clock
    /// dependence — exactly what the determinism lint enforces).
    #[test]
    fn analysis_is_deterministic(seed in any::<u64>()) {
        let system = tight_system();
        let spec = ScenarioSpace::default().sample(seed);
        let a = analyze_scenario(&spec, &system).to_json();
        let b = analyze_scenario(&spec, &system).to_json();
        prop_assert_eq!(a, b);
    }
}
