//! End-to-end multi-user session runs: the acceptance-criterion
//! 32-user mixed-scenario session through the session-aware suite
//! path, with per-user score breakdowns.

use xrbench::prelude::*;
use xrbench::sim::UniformProvider;
use xrbench::workload::ScenarioCatalog;

fn mixed_32_user_session() -> SessionSpec {
    let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
    SessionSpec::mixed("metaverse-pod-32", &specs, 32, 0.010)
}

#[test]
fn thirty_two_user_mixed_session_end_to_end() {
    let session = mixed_32_user_session();
    assert_eq!(session.num_users(), 32);

    // A reasonably beefy shared system so most users get served.
    let system = UniformProvider::new(8, 0.0005, 0.001);
    let reports = run_sessions(&Harness::new(), &system, std::slice::from_ref(&session));
    assert_eq!(reports.len(), 1);
    let report = &reports[0];

    // Per-user breakdowns: one report per user, cycling through the
    // whole built-in catalog.
    assert_eq!(report.num_users, 32);
    assert_eq!(report.users.len(), 32);
    let catalog = ScenarioCatalog::builtin();
    let names = catalog.names();
    for (k, u) in report.users.iter().enumerate() {
        assert_eq!(u.user, k as u32);
        assert!((u.start_offset_s - 0.010 * k as f64).abs() < 1e-12);
        // Each user is scored against exactly its round-robin-assigned
        // scenario.
        assert_eq!(
            u.report.scenario,
            names[k % names.len()],
            "user {k} scored against the wrong scenario"
        );
        let b = &u.report.breakdown;
        for (name, v) in [
            ("realtime", b.realtime_score),
            ("energy", b.energy_score),
            ("accuracy", b.accuracy_score),
            ("qoe", b.qoe_score),
            ("overall", b.overall_score),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "user {k} {name} score {v} out of range"
            );
        }
        assert!(!u.report.models.is_empty());
    }
    // Adjacent users run different scenarios (mixed population).
    assert_ne!(
        report.users[0].report.scenario,
        report.users[1].report.scenario
    );

    // The aggregate is the mean of the per-user breakdowns.
    let mean: f64 = report.users.iter().map(|u| u.report.overall()).sum::<f64>() / 32.0;
    assert!((report.session_score - mean).abs() < 1e-12);
    assert!((report.aggregate.overall_score - mean).abs() < 1e-12);

    // Session metadata.
    assert_eq!(report.session, "metaverse-pod-32");
    assert!((report.span_s - (31.0 * 0.010 + 1.0)).abs() < 1e-12);
    assert!(report.mean_utilization > 0.0);
    assert!(report.total_energy_mj > 0.0);

    // The worst user is a real member and no better than the mean.
    let worst = report.worst_user().expect("32 users");
    assert!(worst.report.overall() <= report.session_score + 1e-12);

    // JSON round-trips with per-user sections.
    let json = report.to_json();
    assert!(json.contains("\"session_score\""));
    assert!(json.contains("\"users\""));
}

#[test]
fn session_runs_are_reproducible_end_to_end() {
    let session = mixed_32_user_session();
    let system = UniformProvider::new(8, 0.0005, 0.001);
    let h = Harness::new();
    let a = h.run_session(&session, &system, &mut LatencyGreedy::new());
    let b = h.run_session(&session, &system, &mut LatencyGreedy::new());
    assert_eq!(a, b);
}

#[test]
fn contention_shows_up_in_per_user_scores() {
    // 32 users on a starved 1-engine system: the session score must
    // collapse relative to a single user, and drops must appear.
    let session = mixed_32_user_session();
    let starved = UniformProvider::new(1, 0.004, 0.001);
    let h = Harness::new();
    let crowded = h.run_session(&session, &starved, &mut LatencyGreedy::new());
    let solo = h.run_session(
        &SessionSpec::uniform("solo", UsageScenario::VrGaming.spec(), 1, 0.0),
        &starved,
        &mut LatencyGreedy::new(),
    );
    assert!(
        crowded.session_score < solo.session_score,
        "32-way contention should hurt: {} vs {}",
        crowded.session_score,
        solo.session_score
    );
    assert!(crowded.drop_rate > 0.0);
}

#[test]
fn schedulers_are_interchangeable_on_sessions() {
    let session = mixed_32_user_session();
    let system = UniformProvider::new(4, 0.001, 0.001);
    let h = Harness::new();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LatencyGreedy::new()),
        Box::new(RoundRobin::new()),
        Box::new(SlackAwareEdf::new()),
        Box::new(LeastLoaded::new()),
    ];
    for s in &mut schedulers {
        let name = s.name();
        let r = h.run_session(&session, &system, s.as_mut());
        assert_eq!(r.scheduler, name);
        assert_eq!(r.num_users, 32);
        assert!(r.session_score > 0.0, "{name} starved the whole session");
    }
}
