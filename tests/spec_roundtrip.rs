//! Round-trip property test for the declarative spec layer.
//!
//! The single-validation-path invariant promises that a scenario
//! serialized to a spec file and reloaded through the loader is the
//! *same workload*: not just an equal `ScenarioSpec`, but one whose
//! simulated and scored reports are byte-identical to the in-memory
//! builder path. This suite pins that for every builtin Table 2
//! scenario and for 64 procedurally sampled scenarios spanning the
//! generator's design space.

use xrbench::prelude::*;

/// Serialize → reload one scenario, asserting loader success.
fn reload(spec: &ScenarioSpec) -> ScenarioSpec {
    let json = scenario_to_json(spec);
    scenario_from_str(&json).unwrap_or_else(|e| panic!("{}: {e}", spec.name))
}

fn catalog_of(specs: &[ScenarioSpec]) -> ScenarioCatalog {
    let mut c = ScenarioCatalog::new();
    for s in specs {
        c.register(s.clone()).expect("unique names");
    }
    c
}

#[test]
fn builtin_scenarios_round_trip_to_byte_identical_suite_reports() {
    let originals: Vec<ScenarioSpec> = UsageScenario::ALL.iter().map(|s| s.spec()).collect();
    let reloaded: Vec<ScenarioSpec> = originals.iter().map(reload).collect();

    let system = xrbench::sim::UniformProvider::new(2, 0.002, 0.001);
    let harness = Harness::new();
    let direct = run_suite_catalog(&harness, &system, 2, &catalog_of(&originals));
    let via_spec = run_suite_catalog(&harness, &system, 2, &catalog_of(&reloaded));
    assert_eq!(direct, via_spec);
    assert_eq!(direct.to_json(), via_spec.to_json());
}

#[test]
fn sampled_scenarios_round_trip_to_byte_identical_reports() {
    let space = ScenarioSpace::default();
    let originals = space.sample_many(0xD1CE, 64);
    let reloaded: Vec<ScenarioSpec> = originals.iter().map(reload).collect();
    assert_eq!(originals, reloaded);

    // One suite over all 64 sampled scenarios: byte-identical reports.
    let system = xrbench::sim::UniformProvider::new(2, 0.002, 0.001);
    let harness = Harness::new();
    let direct = run_suite_catalog(&harness, &system, 2, &catalog_of(&originals));
    let via_spec = run_suite_catalog(&harness, &system, 2, &catalog_of(&reloaded));
    assert_eq!(direct.to_json(), via_spec.to_json());
}

#[test]
fn sampled_session_round_trips_through_the_session_loader() {
    // A mixed 16-user session drawing from 8 sampled scenarios,
    // exported as a session document (local scenario definitions
    // inline) and reloaded against the builtin catalog.
    let specs = ScenarioSpace::default().sample_many(0xBEEF, 8);
    let session = SessionSpec::mixed("sampled-mix", &specs, 16, 0.003);
    let json = session_to_json(&session);
    let reloaded =
        session_from_str(&json, &ScenarioCatalog::builtin()).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(reloaded, session);

    let system = xrbench::sim::UniformProvider::new(3, 0.002, 0.001);
    let harness = Harness::new().with_seed(11);
    let direct = harness.run_session(&session, &system, &mut LatencyGreedy::new());
    let via_spec = harness.run_session(&reloaded, &system, &mut LatencyGreedy::new());
    assert_eq!(direct, via_spec);
    assert_eq!(direct.to_json(), via_spec.to_json());
}

#[test]
fn builtin_session_and_fleet_documents_round_trip_via_fleet_loader() {
    let session = SessionSpec::mixed(
        "mix",
        &[
            UsageScenario::VrGaming.spec(),
            UsageScenario::OutdoorActivityA.spec(),
        ],
        6,
        0.004,
    );
    let fleet = FleetSpec::new("rt").group("g", session, 3);
    let json = xrbench::fleet::fleet_to_json(&fleet);
    let reloaded = xrbench::fleet::fleet_from_str(&json, &ScenarioCatalog::builtin()).unwrap();
    assert_eq!(reloaded, fleet);

    let system = xrbench::sim::UniformProvider::new(2, 0.002, 0.001);
    let harness = Harness::new();
    let direct = harness.run_fleet(&fleet, &system, 2);
    let via_spec = harness.run_fleet(&reloaded, &system, 2);
    assert_eq!(direct.to_json(), via_spec.to_json());
}
