//! Property tests for the load generator (Definitions 7 and 8),
//! exercised across *random* scenario specs from `ScenarioBuilder` —
//! not just the seven built-ins:
//!
//! * request-time jitter stays within `±Jt` of the nominal frame time;
//! * deadlines are un-jittered (they sit exactly on the sensor's
//!   frame grid) and monotone per model;
//! * frame ids are gapless per model (`0, 1, 2, ...`).

use proptest::prelude::*;

use xrbench::models::ModelId;
use xrbench::prelude::*;
use xrbench::workload::{source_spec, InferenceRequest};

/// A random valid scenario: a non-empty subset of the model zoo, each
/// at a random rate the driving sensor can actually deliver
/// (`fps = sensor_fps / divisor`).
fn random_spec(selector: u64, divisors: u64) -> ScenarioSpec {
    let mut b = ScenarioBuilder::new(format!("random-{selector:x}"));
    let mut any = false;
    for (i, model) in ModelId::ALL.into_iter().enumerate() {
        // Bit i of the selector decides membership.
        if selector >> i & 1 == 1 {
            let d = ((divisors >> (i * 5)) & 0x1F) % 6 + 1;
            let d = d as f64;
            let fps = source_spec(model.driving_source()).fps / d;
            b = b.model(model, fps);
            any = true;
        }
    }
    if !any {
        // Empty subset: fall back to a single-model scenario.
        b = b.model(ModelId::HandTracking, 30.0);
    }
    b.build().expect("random spec is valid by construction")
}

fn per_model(reqs: &[InferenceRequest]) -> Vec<(ModelId, Vec<&InferenceRequest>)> {
    ModelId::ALL
        .into_iter()
        .map(|m| (m, reqs.iter().filter(|r| r.model == m).collect::<Vec<_>>()))
        .filter(|(_, v)| !v.is_empty())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jitter_bounded_by_jt_for_any_builder_spec(
        selector in 1u64..(1 << 11),
        divisors in any::<u64>(),
        seed in 0u64..10_000,
        duration_ds in 1u32..30,
    ) {
        let spec = random_spec(selector, divisors);
        let duration = f64::from(duration_ds) / 10.0;
        let reqs = LoadGenerator::new(seed).generate(&spec, duration);
        for r in &reqs {
            let src = source_spec(r.model.driving_source());
            // Definition 7: Treq = Linit + frame/FPS + 2·Jt·(Dist−0.5),
            // with Dist ∈ [0, 1] ⇒ |Treq − nominal| ≤ Jt.
            let nominal = src.init_latency_ms / 1e3 + r.sensor_frame as f64 / src.fps;
            prop_assert!(
                (r.t_req - nominal).abs() <= src.jitter_ms / 1e3 + 1e-12,
                "{}: jitter {} exceeds Jt {}",
                r.model,
                (r.t_req - nominal).abs(),
                src.jitter_ms / 1e3
            );
        }
    }

    #[test]
    fn deadlines_unjittered_and_monotone(
        selector in 1u64..(1 << 11),
        divisors in any::<u64>(),
        seed in 0u64..10_000,
    ) {
        let spec = random_spec(selector, divisors);
        let reqs = LoadGenerator::new(seed).generate(&spec, 1.0);
        for (model, rs) in per_model(&reqs) {
            let src = source_spec(model.driving_source());
            let linit = src.init_latency_ms / 1e3;
            let mut sorted = rs.clone();
            sorted.sort_by_key(|r| r.frame_id);
            for w in sorted.windows(2) {
                // Definition 8: deadlines advance with consumed frames.
                prop_assert!(
                    w[1].t_deadline > w[0].t_deadline,
                    "{model}: deadline not monotone"
                );
            }
            for r in &sorted {
                // Un-jittered: Tdl sits exactly on the sensor grid.
                let frames = (r.t_deadline - linit) * src.fps;
                prop_assert!(
                    (frames - frames.round()).abs() < 1e-6,
                    "{model}: deadline {} off the frame grid",
                    r.t_deadline
                );
                // And it is the *next* consumed frame: strictly after
                // the un-jittered arrival.
                let nominal = linit + r.sensor_frame as f64 / src.fps;
                prop_assert!(r.t_deadline > nominal, "{model}: deadline not in the future");
            }
        }
    }

    #[test]
    fn frame_ids_gapless_per_model(
        selector in 1u64..(1 << 11),
        divisors in any::<u64>(),
        seed in 0u64..10_000,
        duration_ds in 1u32..25,
    ) {
        let spec = random_spec(selector, divisors);
        let duration = f64::from(duration_ds) / 10.0;
        let reqs = LoadGenerator::new(seed).generate(&spec, duration);
        for (model, rs) in per_model(&reqs) {
            let mut ids: Vec<u64> = rs.iter().map(|r| r.frame_id).collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..ids.len() as u64).collect();
            prop_assert_eq!(&ids, &expect, "{} has frame-id gaps", model);
            // And the count honors the target rate over the duration.
            let target = spec.model(model).unwrap().target_fps;
            prop_assert_eq!(
                ids.len() as u64,
                (target * duration).ceil() as u64,
                "{} emitted the wrong number of requests",
                model
            );
        }
    }

    #[test]
    fn sensor_frames_monotone_per_model(
        selector in 1u64..(1 << 11),
        divisors in any::<u64>(),
        seed in 0u64..10_000,
    ) {
        // Consumed sensor frames never repeat or regress: the skip
        // pattern is strictly increasing.
        let spec = random_spec(selector, divisors);
        let reqs = LoadGenerator::new(seed).generate(&spec, 1.0);
        for (model, rs) in per_model(&reqs) {
            let mut sorted = rs.clone();
            sorted.sort_by_key(|r| r.frame_id);
            for w in sorted.windows(2) {
                prop_assert!(
                    w[1].sensor_frame > w[0].sensor_frame,
                    "{model}: sensor frames not strictly increasing"
                );
            }
        }
    }

    #[test]
    fn session_streams_inherit_loadgen_properties(
        users in 1u32..6,
        stagger_ms in 0u32..100,
        seed in 0u64..10_000,
    ) {
        // The merged multi-user stream preserves per-user jitter
        // bounds and gapless frame ids after the offset shift.
        let spec = UsageScenario::VrGaming.spec();
        let stagger = f64::from(stagger_ms) / 1e3;
        let session = SessionSpec::uniform("prop", spec, users, stagger);
        let merged = session.generate(seed, 1.0);
        for u in 0..users {
            let offset = f64::from(u) * stagger;
            for sr in merged.iter().filter(|r| r.user == u) {
                let src = source_spec(sr.req.model.driving_source());
                let nominal =
                    offset + src.init_latency_ms / 1e3 + sr.req.sensor_frame as f64 / src.fps;
                prop_assert!((sr.req.t_req - nominal).abs() <= src.jitter_ms / 1e3 + 1e-12);
            }
            let mut ht: Vec<u64> = merged
                .iter()
                .filter(|r| r.user == u && r.req.model == ModelId::HandTracking)
                .map(|r| r.req.frame_id)
                .collect();
            ht.sort_unstable();
            let expect: Vec<u64> = (0..ht.len() as u64).collect();
            prop_assert_eq!(ht, expect);
        }
    }
}
