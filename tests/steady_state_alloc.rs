//! Proves the production engine's steady-state loop is allocation-free
//! (PR 8 acceptance): a counting global allocator wraps the system
//! allocator, and a folded session run asserts that **zero** heap
//! allocations happen between a post-warm-up checkpoint and a
//! pre-teardown checkpoint taken inside the record sink.
//!
//! The engine pre-sizes its state from spec-derived bounds (calendar
//! buckets and free set from the engine count, queues and dispatch
//! tables from the dense `users × models` key space) and `Vec` growth
//! retains capacity, so any transient growth happens in the warm-up
//! prefix; after that every event is served from pre-sized storage.
//!
//! This file deliberately holds a single `#[test]` so no concurrent
//! test can allocate on another thread inside the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xrbench::sim::{LatencyGreedy, SimConfig, Simulator, UniformProvider};
use xrbench::workload::{ScenarioCatalog, ScenarioSpec, SessionSpec};

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static TRACE: AtomicU64 = AtomicU64::new(0);
static TRACE_SIZES: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if TRACE.load(Ordering::Relaxed) == 1 {
            TRACE_SIZES[(n % 16) as usize].store(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if TRACE.load(Ordering::Relaxed) == 1 {
            TRACE_SIZES[(n % 16) as usize].store(1_000_000 + new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_loop_does_not_allocate() {
    // A mixed multi-user session over every built-in scenario:
    // dependencies, cascades, supersession, and the kernel dispatch
    // fast path (LatencyGreedy) are all on the measured path.
    let users = 64u32;
    let provider = UniformProvider::new(8, 0.001, 0.001);
    let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
    let session = SessionSpec::mixed("alloc-probe", &specs, users, 0.002);
    let config = SimConfig::default();
    let sim = Simulator::new(config);

    // Sizing pass: learn the record count so the checkpoints can sit
    // at fixed fractions of the run.
    let mut total = 0u64;
    sim.run_session_folded(
        &session,
        &provider,
        &mut LatencyGreedy::new(),
        &mut |_, _| total += 1,
    );
    assert!(
        total > 1000,
        "alloc probe needs a substantial run, got {total} records"
    );

    // Measured pass: warm-up ends at half the run (transient Vec
    // growth retains capacity, so it is confined to the prefix), and
    // the window closes just before teardown.
    let warmup_end = total / 2;
    let window_end = total * 9 / 10;
    let mut seen = 0u64;
    let mut at_warmup = 0u64;
    let mut at_end = 0u64;
    sim.run_session_folded(
        &session,
        &provider,
        &mut LatencyGreedy::new(),
        &mut |_, _| {
            seen += 1;
            if seen == warmup_end {
                at_warmup = ALLOCATIONS.load(Ordering::Relaxed);
                TRACE.store(1, Ordering::Relaxed);
            } else if seen == window_end {
                at_end = ALLOCATIONS.load(Ordering::Relaxed);
                TRACE.store(0, Ordering::Relaxed);
            }
        },
    );
    assert!(seen == total, "replay diverged: {seen} != {total}");
    let sizes: Vec<u64> = TRACE_SIZES
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .filter(|&s| s != 0)
        .collect();
    eprintln!("window alloc sizes (realloc = 1e6 + size): {sizes:?}");
    assert!(at_warmup > 0 && at_end > 0, "checkpoints never fired");
    assert_eq!(
        at_end - at_warmup,
        0,
        "steady-state loop allocated {} times between {}% and {}% of the run",
        at_end - at_warmup,
        100 * warmup_end / total,
        100 * window_end / total,
    );
}
