//! Workspace smoke test for the parallel suite runner: the parallel
//! path must be a drop-in for the serial one — identical scores for
//! every Table 5 accelerator — while actually fanning work across
//! more than one worker thread.
//!
//! The per-strategy entry points are deprecated in favour of
//! `run_suite` / `Runner`, but they are the *subject* of this
//! equivalence test, so it calls them deliberately.
#![allow(deprecated)]

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};
use std::thread::ThreadId;
use std::time::Duration;

use xrbench::core::{run_suite_parallel, run_suite_serial};
use xrbench::prelude::*;
use xrbench::sim::UniformProvider;

/// Wraps a provider and makes the first cost query of each worker
/// *rendezvous*: it blocks until `quorum` distinct threads have
/// arrived (or a timeout expires). This makes "the parallel runner
/// really uses multiple workers" a deterministic observation instead
/// of a scheduling race — a single worker could otherwise drain the
/// whole job queue before a second one is ever scheduled.
struct ThreadRendezvous<P> {
    inner: P,
    quorum: usize,
    seen: Mutex<HashSet<ThreadId>>,
    arrived: Condvar,
}

impl<P> ThreadRendezvous<P> {
    fn new(inner: P, quorum: usize) -> Self {
        Self {
            inner,
            quorum,
            seen: Mutex::new(HashSet::new()),
            arrived: Condvar::new(),
        }
    }

    fn distinct_threads(&self) -> usize {
        self.seen.lock().expect("probe lock").len()
    }
}

impl<P: CostProvider> CostProvider for ThreadRendezvous<P> {
    fn num_engines(&self) -> usize {
        self.inner.num_engines()
    }

    fn label(&self) -> String {
        self.inner.label()
    }

    fn cost(&self, model: xrbench::models::ModelId, engine: usize) -> InferenceCost {
        let mut seen = self.seen.lock().expect("probe lock");
        let newly_arrived = seen.insert(std::thread::current().id());
        if newly_arrived {
            self.arrived.notify_all();
            // Hold each newly-arrived worker (once) until the quorum
            // shows up, so the first worker cannot race through every
            // job alone. The one-shot timeout keeps the suite bounded
            // if the runner ever regresses to a single worker — the
            // assertion below then reports it.
            let deadline = Duration::from_secs(10);
            while seen.len() < self.quorum {
                let (guard, timeout) = self
                    .arrived
                    .wait_timeout(seen, deadline)
                    .expect("probe lock");
                seen = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        drop(seen);
        self.inner.cost(model, engine)
    }
}

#[test]
fn parallel_suite_matches_serial_for_all_13_accelerators() {
    let harness = Harness::new();
    for cfg in table5() {
        let system = AcceleratorSystem::new(cfg, 4096);
        let serial = run_suite_serial(&harness, &system, 2);
        let parallel = run_suite_parallel(&harness, &system, 2);
        assert_eq!(
            serial,
            parallel,
            "parallel suite diverged from serial on {}",
            system.label()
        );
        assert_eq!(serial.scenarios.len(), 7);
    }
}

#[test]
fn run_suite_defaults_to_the_parallel_path_bit_for_bit() {
    let system =
        AcceleratorSystem::new(table5().into_iter().find(|c| c.id == 'J').expect("J"), 8192);
    let harness = Harness::new().with_seed(7);
    let via_default = run_suite(&harness, &system, 3);
    let via_serial = run_suite_serial(&harness, &system, 3);
    assert_eq!(via_default, via_serial);
}

#[test]
fn parallel_suite_uses_more_than_one_worker_thread() {
    let probe = ThreadRendezvous::new(UniformProvider::new(2, 0.001, 0.001), 2);
    let report = run_suite_parallel(&Harness::new(), &probe, 3);
    assert_eq!(report.scenarios.len(), 7);
    assert!(
        probe.distinct_threads() > 1,
        "expected >1 worker thread, saw {}",
        probe.distinct_threads()
    );
}
