//! Property-based tests over the runtime: frame conservation,
//! schedule validity, cost-model monotonicity under randomized
//! configurations, and the differential proofs that the production
//! calendar-queue engine is bit-identical to both retained reference
//! loops — the original (naive) event loop and the PR 3 heap engine —
//! across every shipped scheduler, record mode, and recovery policy.

use proptest::prelude::*;

use xrbench::costmodel::{evaluate_layers, Dataflow, HardwareConfig, Layer};
use xrbench::models::{zoo, InputSource, ModelId};
use xrbench::prelude::*;
use xrbench::sim::{ExecRecord, FailoverAware, FaultProcess, RecoveryPolicy, UniformProvider};
use xrbench::workload::DependencyKind;

fn scenario_strategy() -> impl Strategy<Value = UsageScenario> {
    prop::sample::select(UsageScenario::ALL.to_vec())
}

/// Splitmix64 step — a tiny local generator so randomized *structure*
/// (model sets, dependency edges, rates) is derived deterministically
/// from one proptest-drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: usize) -> usize {
    (mix(state) % n as u64) as usize
}

/// A randomized, builder-validated scenario: 2–6 models with random
/// rates and random (acyclic, sometimes probabilistic) dependency
/// edges onto earlier models.
fn random_spec(state: &mut u64, name: &str) -> ScenarioSpec {
    let mut pool: Vec<ModelId> = ModelId::ALL.to_vec();
    let count = 2 + pick(state, 5);
    let mut chosen: Vec<ModelId> = Vec::with_capacity(count);
    for _ in 0..count {
        chosen.push(pool.swap_remove(pick(state, pool.len())));
    }
    let mut b = ScenarioBuilder::new(name);
    for (i, &m) in chosen.iter().enumerate() {
        let max_fps = match m.driving_source() {
            InputSource::Microphone => 3.0,
            InputSource::Camera | InputSource::Lidar => 60.0,
        };
        let fps = [1.0_f64, 3.0, 15.0, 30.0, 45.0, 60.0][pick(state, 6)].min(max_fps);
        b = b.model(m, fps);
        // Maybe depend on one earlier model (keeps the graph acyclic).
        if i > 0 && pick(state, 10) < 6 {
            let up = chosen[pick(state, i)];
            let probability = [0.2, 0.5, 1.0][pick(state, 3)];
            let kind = if probability < 1.0 {
                DependencyKind::Control
            } else {
                DependencyKind::Data
            };
            b = b.dependency(m, up, kind, probability);
        }
    }
    b.build().expect("randomized spec is builder-valid")
}

/// All five shipped schedulers — the differential suites must cover
/// every one, kernel-declaring (LatencyGreedy, RoundRobin, LeastLoaded,
/// FailoverAware) and opaque (SlackAwareEdf) alike.
const NUM_SCHEDULERS: usize = 5;

fn scheduler_for(idx: usize) -> Box<dyn Scheduler> {
    match idx % NUM_SCHEDULERS {
        0 => Box::new(LatencyGreedy::new()),
        1 => Box::new(RoundRobin::new()),
        2 => Box::new(SlackAwareEdf::new()),
        3 => Box::new(LeastLoaded::new()),
        _ => Box::new(FailoverAware::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frame_conservation_holds(
        scenario in scenario_strategy(),
        engines in 1usize..5,
        latency_ms in 0.05_f64..80.0,
        seed in 0u64..5000,
    ) {
        let provider = UniformProvider::new(engines, latency_ms / 1e3, 0.001);
        let sim = Simulator::new(SimConfig { duration_s: 1.0, seed });
        let result = sim.run(&scenario.spec(), &provider, &mut LatencyGreedy::new());
        for (model, st) in &result.stats {
            // Every triggered frame either executed or dropped.
            prop_assert_eq!(
                st.total_frames,
                st.executed_frames + st.dropped_frames,
                "{} violates conservation",
                model
            );
            prop_assert!(st.missed_deadlines <= st.executed_frames);
        }
        // Executed records match the stats.
        for (model, st) in &result.stats {
            let recs = result.records_for(*model).count() as u64;
            prop_assert_eq!(recs, st.executed_frames);
        }
    }

    #[test]
    fn occupancy_condition_holds_for_any_scheduler_load(
        scenario in scenario_strategy(),
        engines in 1usize..5,
        latency_ms in 0.05_f64..60.0,
        seed in 0u64..5000,
        round_robin in any::<bool>(),
    ) {
        let provider = UniformProvider::new(engines, latency_ms / 1e3, 0.001);
        let sim = Simulator::new(SimConfig { duration_s: 1.0, seed });
        let spec = scenario.spec();
        let result = if round_robin {
            sim.run(&spec, &provider, &mut RoundRobin::new())
        } else {
            sim.run(&spec, &provider, &mut LatencyGreedy::new())
        };
        for e in 0..engines {
            let mut recs: Vec<_> = result.records.iter().filter(|r| r.engine == e).collect();
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
            for w in recs.windows(2) {
                prop_assert!(w[1].t_start >= w[0].t_end - 1e-12, "overlap on engine {}", e);
            }
        }
    }

    #[test]
    fn faster_engines_never_reduce_scores(
        scenario in scenario_strategy(),
        latency_ms in 0.5_f64..40.0,
        speedup in 1.1_f64..4.0,
    ) {
        let h = Harness::new();
        let slow = UniformProvider::new(2, latency_ms / 1e3, 0.001);
        let fast = UniformProvider::new(2, latency_ms / speedup / 1e3, 0.001);
        let rs = h.run_scenario(scenario, &slow);
        let rf = h.run_scenario(scenario, &fast);
        // Faster hardware can shuffle which frames drop under jitter,
        // so allow small noise; the trend must hold.
        prop_assert!(
            rf.overall() >= rs.overall() - 0.05,
            "speedup {:.2} lowered score {:.3} -> {:.3}",
            speedup, rs.overall(), rf.overall()
        );
    }

    #[test]
    fn cost_model_latency_monotone_in_pes(
        model in prop::sample::select(ModelId::ALL.to_vec()),
        df in prop::sample::select(Dataflow::ALL.to_vec()),
        shift in 0u32..3,
    ) {
        let layers = zoo::build(model);
        let small = HardwareConfig::with_pes(1024 << shift);
        let large = HardwareConfig::with_pes(2048 << shift);
        let ls = evaluate_layers(&layers, df, &small).latency_s();
        let ll = evaluate_layers(&layers, df, &large).latency_s();
        prop_assert!(ll <= ls * 1.001, "{model}/{df}: {ll} > {ls}");
    }

    #[test]
    fn cost_model_energy_insensitive_to_pes_scale(
        model in prop::sample::select(ModelId::ALL.to_vec()),
        df in prop::sample::select(Dataflow::ALL.to_vec()),
    ) {
        // Energy is dominated by work, not array size: doubling PEs
        // must not change energy by more than ~2x in either direction.
        let layers = zoo::build(model);
        let e4 = evaluate_layers(&layers, df, &HardwareConfig::with_pes(4096)).energy_j();
        let e8 = evaluate_layers(&layers, df, &HardwareConfig::with_pes(8192)).energy_j();
        prop_assert!(e8 / e4 < 2.0 && e4 / e8 < 2.0, "{model}/{df}: {e4} vs {e8}");
    }

    #[test]
    fn single_layer_monotone_in_work(
        k in 1u64..256,
        c in 1u64..256,
        y in 1u64..64,
        scale in 2u64..4,
    ) {
        let hw = HardwareConfig::with_pes(4096);
        let small = Layer::conv2d("s", k, c, y, y, 3, 3);
        let big = Layer::conv2d("b", k * scale, c, y, y, 3, 3);
        let small = [small];
        let big = [big];
        for df in Dataflow::ALL {
            let cs = evaluate_layers(&small, df, &hw);
            let cb = evaluate_layers(&big, df, &hw);
            prop_assert!(cb.latency_s() >= cs.latency_s() - 1e-12);
            prop_assert!(cb.energy_j() > cs.energy_j());
        }
    }
}

proptest! {
    // The differential suite runs more cases than the structural
    // properties above: the acceptance bar is ≥ 100 randomized
    // sessions proving new-engine ≡ naive-loop.
    #![proptest_config(ProptestConfig::with_cases(112))]

    #[test]
    fn heap_engine_is_bit_identical_to_naive_loop(structure in 0u64..u64::MAX, seed in 0u64..5000) {
        // The differential proof behind the PR-3 rewrite: on randomized
        // builder-generated multi-user sessions — mixed scenarios,
        // random rates, probabilistic cascades, every shipped
        // scheduler, under- and over-provisioned systems — the
        // heap-driven engine must reproduce the original event loop's
        // output exactly (records, stats, drop causes, everything
        // `SessionSimResult: PartialEq` sees).
        let mut st = structure;
        let spec_count = 1 + pick(&mut st, 3);
        let specs: Vec<ScenarioSpec> = (0..spec_count)
            .map(|i| random_spec(&mut st, &format!("rand-{i}")))
            .collect();
        let users = 1 + pick(&mut st, 6) as u32;
        let stagger = [0.0, 0.003, 0.017, 0.25][pick(&mut st, 4)];
        let session = SessionSpec::mixed("differential", &specs, users, stagger);
        let engines = 1 + pick(&mut st, 4);
        let latency = [0.0003, 0.002, 0.009, 0.035][pick(&mut st, 4)];
        let provider = UniformProvider::new(engines, latency, 0.001);
        let sched_idx = pick(&mut st, NUM_SCHEDULERS);
        let sim = Simulator::new(SimConfig { duration_s: 1.0, seed });
        let fast = sim.run_session(&session, &provider, scheduler_for(sched_idx).as_mut());
        let slow = sim.run_session_reference(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
        );
        prop_assert_eq!(
            fast,
            slow,
            "engines diverge: {} users, {} engines, {}s latency, scheduler {}",
            users,
            engines,
            latency,
            sched_idx % NUM_SCHEDULERS
        );
        // The retained heap engine must agree too (it is the reference
        // the faulted differential below leans on), in both record
        // modes — and Fold must stream the same records Collect keeps,
        // in the same order.
        let heap = sim.run_session_heap_reference(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
        );
        prop_assert_eq!(&fast, &heap, "calendar engine diverges from heap engine");
        let mut folded: Vec<(u32, ExecRecord)> = Vec::new();
        let fold = sim.run_session_folded(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
            &mut |user, rec| folded.push((user, rec.clone())),
        );
        let collected: Vec<(u32, ExecRecord)> = fast
            .per_user
            .iter()
            .flat_map(|(u, r)| r.records.iter().map(move |rec| (*u, rec.clone())))
            .collect();
        let mut by_user = folded.clone();
        by_user.sort_by_key(|&(u, _)| u);
        prop_assert_eq!(by_user, collected, "folded records diverge from collected");
        for ((u, r), (uf, rf)) in fast.per_user.iter().zip(fold.per_user.iter()) {
            prop_assert_eq!(u, uf);
            prop_assert_eq!(&r.stats, &rf.stats, "fold mode changed stats");
        }
    }

    #[test]
    fn calendar_engine_matches_heap_engine_under_faults(
        structure in 0u64..u64::MAX,
        seed in 0u64..5000,
    ) {
        // The faulted differential: on randomized sessions with engine
        // churn, preemption, and throttling, the production engine must
        // reproduce the heap engine exactly under every recovery policy
        // and every shipped scheduler, in both record modes. (The naive
        // loop predates fault injection, so the heap engine is the
        // reference here.)
        let mut st = structure;
        let spec_count = 1 + pick(&mut st, 2);
        let specs: Vec<ScenarioSpec> = (0..spec_count)
            .map(|i| random_spec(&mut st, &format!("frand-{i}")))
            .collect();
        let users = 1 + pick(&mut st, 4) as u32;
        let session = SessionSpec::mixed("faulted-differential", &specs, users, 0.003);
        let engines = 2 + pick(&mut st, 3);
        let latency = [0.0008, 0.004, 0.02][pick(&mut st, 3)];
        let provider = UniformProvider::new(engines, latency, 0.001);
        let faults = FaultProcess {
            failure_rate_per_s: 1.0 + (pick(&mut st, 4) as f64),
            mean_downtime_s: 0.01 + 0.02 * pick(&mut st, 4) as f64,
            preemption_rate_per_s: pick(&mut st, 3) as f64 * 2.0,
            mean_preemption_s: 0.01,
            throttle: if pick(&mut st, 2) == 0 {
                None
            } else {
                Some(xrbench::sim::ThrottleSpec { period_s: 0.3, duty: 0.4, factor: 0.5 })
            },
        };
        let sched_idx = pick(&mut st, NUM_SCHEDULERS);
        let policy = RecoveryPolicy::ALL[pick(&mut st, RecoveryPolicy::ALL.len())];
        let sim = Simulator::new(SimConfig { duration_s: 1.0, seed });
        let fast = sim.run_session_faulted(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
            &faults,
            policy,
        );
        let heap = sim.run_session_faulted_heap_reference(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
            &faults,
            policy,
        );
        prop_assert_eq!(
            &fast,
            &heap,
            "faulted engines diverge: {} users, {} engines, {}s latency, \
             scheduler {}, policy {}",
            users,
            engines,
            latency,
            sched_idx % NUM_SCHEDULERS,
            policy
        );
        // Fold-mode parity under faults, against the heap engine's fold.
        let mut fast_folded: Vec<(u32, ExecRecord)> = Vec::new();
        sim.run_session_folded_faulted(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
            &faults,
            policy,
            &mut |user, rec| fast_folded.push((user, rec.clone())),
        );
        let mut heap_folded: Vec<(u32, ExecRecord)> = Vec::new();
        sim.run_session_folded_faulted_heap_reference(
            &session,
            &provider,
            scheduler_for(sched_idx).as_mut(),
            &faults,
            policy,
            &mut |user, rec| heap_folded.push((user, rec.clone())),
        );
        prop_assert_eq!(fast_folded, heap_folded, "faulted fold streams diverge");
    }
}
