//! Golden snapshot tests for whole-suite reports.
//!
//! One `run_suite` report per built-in scenario is serialized to a
//! committed JSON fixture and compared byte-for-byte, so any scoring
//! regression — in the load generator, simulator, schedulers, or score
//! aggregation — is caught immediately. The fixtures were generated
//! from the pre-`ScenarioBuilder` enum path, which pins the builder /
//! catalog re-expression of the Table 2 scenarios to bit-identical
//! scores.
//!
//! To regenerate after an *intentional* scoring change:
//!
//! ```sh
//! XRBENCH_BLESS=1 cargo test --test suite_golden
//! ```

use std::fs;
use std::path::PathBuf;

use xrbench::prelude::*;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("suite")
}

fn fixture_name(scenario: &str) -> String {
    format!("{}.json", scenario.to_ascii_lowercase().replace(' ', "_"))
}

/// The reference configuration the fixtures pin down: accelerator J
/// (WS + OS HDA) at 4096 PEs, default harness, 2 repeats for dynamic
/// scenarios.
fn reference_report() -> BenchmarkReport {
    let cfg = table5().into_iter().find(|c| c.id == 'J').expect("J");
    let system = AcceleratorSystem::new(cfg, 4096);
    run_suite(&Harness::new(), &system, 2)
}

#[test]
fn suite_reports_match_golden_fixtures() {
    // Only the documented value blesses; XRBENCH_BLESS=0 (or any
    // other value) still compares, so fixtures are never silently
    // rewritten by a stray environment variable.
    let bless = std::env::var("XRBENCH_BLESS").is_ok_and(|v| v == "1");
    let dir = fixture_dir();
    let bench = reference_report();
    assert_eq!(bench.scenarios.len(), 7, "suite must cover all scenarios");

    if bless {
        fs::create_dir_all(&dir).expect("create fixture dir");
    }
    let mut mismatches = Vec::new();
    for scenario in &bench.scenarios {
        let path = dir.join(fixture_name(&scenario.scenario));
        let actual = scenario.to_json() + "\n";
        if bless {
            fs::write(&path, &actual).expect("write fixture");
            continue;
        }
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        if expected != actual {
            mismatches.push(scenario.scenario.clone());
        }
    }
    assert!(
        mismatches.is_empty(),
        "scenario reports diverge from golden fixtures: {mismatches:?} \
         (run with XRBENCH_BLESS=1 to re-bless after an intentional change)"
    );

    // The overall score is pinned too.
    let score_path = dir.join("xrbench_score.json");
    let actual = format!(
        "{{\n  \"system\": {},\n  \"xrbench_score\": {}\n}}\n",
        serde_json::to_string(&bench.system).expect("string"),
        serde_json::to_string(&bench.xrbench_score).expect("f64"),
    );
    if bless {
        fs::write(&score_path, &actual).expect("write score fixture");
    } else {
        let expected = fs::read_to_string(&score_path).expect("missing score fixture");
        assert_eq!(expected, actual, "overall XRBench Score diverged");
    }
}

#[test]
fn golden_run_is_deterministic() {
    // The fixture comparison is only meaningful if the reference run
    // itself is reproducible.
    let a = reference_report();
    let b = reference_report();
    assert_eq!(a, b);
}
