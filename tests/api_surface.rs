//! Pins the `xrbench::prelude` surface: the flat re-export list is
//! the crate's public face, so additions and removals must be
//! deliberate (update `EXPECTED` alongside `src/lib.rs`).

use std::path::PathBuf;

/// Every name `xrbench::prelude` re-exports, sorted.
const EXPECTED: &[&str] = &[
    "AcceleratorConfig",
    "AcceleratorStyle",
    "AcceleratorSystem",
    "Analysis",
    "BenchmarkReport",
    "BreakdownReport",
    "CostProvider",
    "Dataflow",
    "DenseCostCache",
    "DeviceGroup",
    "Diagnostic",
    "ErrorCode",
    "FeasibleSampling",
    "FleetReport",
    "FleetRun",
    "FleetRunConfig",
    "FleetSpec",
    "HardwareConfig",
    "Harness",
    "InferenceCost",
    "InferenceScore",
    "LatencyGreedy",
    "Layer",
    "LayerKind",
    "LeastLoaded",
    "LoadGenerator",
    "MappingStrategy",
    "ModelId",
    "ModelOutcome",
    "ModelReport",
    "RoundRobin",
    "RunDocument",
    "RunReport",
    "Runner",
    "ScenarioBuilder",
    "ScenarioCatalog",
    "ScenarioReport",
    "ScenarioSpace",
    "ScenarioSpec",
    "Scheduler",
    "SchedulerSpec",
    "SessionReport",
    "SessionRun",
    "SessionSimResult",
    "SessionSpec",
    "Severity",
    "SimConfig",
    "Simulator",
    "SlackAwareEdf",
    "SpecError",
    "SuiteRun",
    "SweepDocument",
    "SweepReport",
    "SystemSpec",
    "TableProvider",
    "TaskCategory",
    "TensorDims",
    "UsageScenario",
    "UserReport",
    "XrError",
    "analyze_fleet",
    "analyze_run_document",
    "analyze_scenario",
    "analyze_session",
    "benchmark_score",
    "config_by_id",
    "evaluate_layer",
    "evaluate_layers",
    "model_info",
    "run_fleet",
    "run_sessions",
    "run_suite",
    "run_suite_catalog",
    "scenario_from_str",
    "scenario_to_json",
    "session_from_str",
    "session_to_json",
    "table5",
];

/// Extracts the re-exported names from the `pub mod prelude { ... }`
/// block of `src/lib.rs` (the facade has no nested braces inside the
/// prelude besides `pub use` groups, so a brace-depth scan suffices).
fn prelude_names() -> Vec<String> {
    let lib = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("src")
        .join("lib.rs");
    let text = std::fs::read_to_string(&lib).expect("read src/lib.rs");
    let start = text
        .find("pub mod prelude {")
        .expect("src/lib.rs declares `pub mod prelude`");
    let body = &text[start..];
    let mut names = Vec::new();
    for stmt in body.split(';') {
        let Some(use_pos) = stmt.find("pub use ") else {
            continue;
        };
        let path = stmt[use_pos + "pub use ".len()..].trim();
        let list = match (path.find('{'), path.rfind('}')) {
            (Some(open), Some(close)) => &path[open + 1..close],
            // `pub use a::b::Name` without a brace group.
            _ => path.rsplit("::").next().unwrap_or(path),
        };
        for name in list.split(',') {
            let name = name.trim();
            if !name.is_empty() {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    names
}

#[test]
fn prelude_surface_matches_the_snapshot() {
    let actual = prelude_names();
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    assert!(
        expected.windows(2).all(|w| w[0] < w[1]),
        "EXPECTED must be sorted and duplicate-free"
    );
    assert_eq!(
        actual, expected,
        "xrbench::prelude drifted from the snapshot — update EXPECTED in \
         tests/api_surface.rs if the change is deliberate"
    );
}

/// The headline additions of the unified entry-point redesign must be
/// importable from the prelude (a compile-time check the snapshot
/// alone cannot give).
#[test]
fn runner_types_are_reachable_from_the_prelude() {
    use xrbench::prelude::{RunDocument, RunReport, Runner};

    let runner = Runner::new();
    let doc = RunDocument::from_json_str(
        r#"{ "kind": "suite",
             "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
             "repeats": 1,
             "duration_s": 0.02 }"#,
    )
    .expect("valid document");
    let report: RunReport = runner.run(&doc).expect("suite runs");
    assert_eq!(report.kind(), "suite");
}
