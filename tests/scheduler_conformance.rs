//! Scheduler conformance harness.
//!
//! A reusable, generic suite asserting that every [`Scheduler`]
//! implementation honors the trait contract the simulator relies on:
//!
//! 1. **Determinism** — two fresh instances fed the same call
//!    sequence produce the same dispatch decisions (reproducible
//!    benchmark runs depend on it).
//! 2. **In-range picks** — the returned request index is always
//!    within the ready queue and the returned engine is always one of
//!    the free engines (only ready requests go to free engines).
//! 3. **Starvation honesty** — with no ready requests or no free
//!    engines, the scheduler returns `None`.
//! 4. **Whole-run invariants** — driven through the real simulator on
//!    every built-in scenario and a mixed multi-user session: engine
//!    occupancy, frame conservation, and run-to-run determinism hold.
//!
//! To conformance-test a new scheduler, add a factory to
//! [`all_schedulers`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrbench::models::ModelId;
use xrbench::prelude::*;
use xrbench::sim::{PendingView, UniformProvider};
use xrbench::workload::ScenarioCatalog;

/// A named factory producing fresh scheduler instances.
type SchedulerFactory = (&'static str, Box<dyn Fn() -> Box<dyn Scheduler>>);

/// Every shipped scheduler, by fresh-instance factory.
fn all_schedulers() -> Vec<SchedulerFactory> {
    vec![
        (
            "latency-greedy",
            Box::new(|| Box::new(LatencyGreedy::new())),
        ),
        ("round-robin", Box::new(|| Box::new(RoundRobin::new()))),
        ("slack-edf", Box::new(|| Box::new(SlackAwareEdf::new()))),
        ("least-loaded", Box::new(|| Box::new(LeastLoaded::new()))),
        (
            "failover-aware",
            Box::new(|| Box::new(xrbench::sim::FailoverAware::new())),
        ),
    ]
}

/// One randomized `select` call: a ready queue, a free-engine subset,
/// and the current time.
fn random_call(rng: &mut StdRng, num_engines: usize) -> (Vec<PendingView>, Vec<usize>, f64) {
    let now = rng.gen_range(0.0..1.0);
    let n_ready = rng.gen_range(0usize..8);
    let ready: Vec<PendingView> = (0..n_ready)
        .map(|_| {
            let t_req = now - rng.gen_range(0.0..0.05);
            PendingView {
                user: rng.gen_range(0u32..4),
                model: ModelId::ALL[rng.gen_range(0usize..ModelId::ALL.len())],
                frame_id: rng.gen_range(0u64..120),
                t_req,
                t_deadline: t_req + rng.gen_range(0.0001..0.05),
            }
        })
        .collect();
    // A sorted subset of engines, as the simulator provides.
    let free: Vec<usize> = (0..num_engines)
        .filter(|_| rng.gen_range(0u32..3) > 0)
        .collect();
    (ready, free, now)
}

#[test]
fn conformance_in_range_and_only_free_engines() {
    let num_engines = 5;
    let provider = UniformProvider::new(num_engines, 0.002, 0.001);
    for (name, factory) in all_schedulers() {
        let mut s = factory();
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for call in 0..500 {
            let (ready, free, now) = random_call(&mut rng, num_engines);
            match s.select(&ready, &free, &provider, now) {
                None => {}
                Some((ri, engine)) => {
                    assert!(
                        ri < ready.len(),
                        "{name} call {call}: request index {ri} out of range ({} ready)",
                        ready.len()
                    );
                    assert!(
                        free.contains(&engine),
                        "{name} call {call}: dispatched to busy engine {engine} (free: {free:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn conformance_starved_schedulers_return_none() {
    let provider = UniformProvider::new(3, 0.002, 0.001);
    let view = PendingView {
        user: 0,
        model: ModelId::HandTracking,
        frame_id: 0,
        t_req: 0.0,
        t_deadline: 0.033,
    };
    for (name, factory) in all_schedulers() {
        let mut s = factory();
        assert!(
            s.select(&[], &[0, 1, 2], &provider, 0.0).is_none(),
            "{name} dispatched without ready requests"
        );
        assert!(
            s.select(&[view], &[], &provider, 0.0).is_none(),
            "{name} dispatched without free engines"
        );
    }
}

#[test]
fn conformance_deterministic_replay() {
    // Two fresh instances fed the identical call sequence must make
    // identical decisions — including stateful schedulers (rotation
    // pointers, load accumulators).
    let num_engines = 4;
    let provider = UniformProvider::new(num_engines, 0.003, 0.001);
    for (name, factory) in all_schedulers() {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let calls: Vec<(Vec<PendingView>, Vec<usize>, f64)> = (0..300)
            .map(|_| random_call(&mut rng, num_engines))
            .collect();
        let mut a = factory();
        let mut b = factory();
        for (i, (ready, free, now)) in calls.iter().enumerate() {
            let da = a.select(ready, free, &provider, *now);
            let db = b.select(ready, free, &provider, *now);
            assert_eq!(da, db, "{name} diverged on call {i}");
        }
    }
}

#[test]
fn conformance_whole_run_invariants_per_scenario() {
    // Drive each scheduler through the real simulator on every
    // built-in scenario; the simulator panics on out-of-range or
    // busy-engine picks, and we assert occupancy + conservation +
    // determinism on top.
    let provider = UniformProvider::new(3, 0.004, 0.001);
    for (name, factory) in all_schedulers() {
        for spec in &ScenarioCatalog::builtin() {
            let sim = Simulator::new(SimConfig {
                duration_s: 1.0,
                seed: 41,
            });
            let a = sim.run(spec, &provider, factory().as_mut());
            let b = sim.run(spec, &provider, factory().as_mut());
            assert_eq!(a, b, "{name} not reproducible on {}", spec.name);
            for e in 0..3 {
                let mut recs: Vec<_> = a.records.iter().filter(|r| r.engine == e).collect();
                recs.sort_by(|x, y| x.t_start.total_cmp(&y.t_start));
                for w in recs.windows(2) {
                    assert!(
                        w[1].t_start >= w[0].t_end - 1e-12,
                        "{name}/{}: overlap on engine {e}",
                        spec.name
                    );
                }
            }
            for (m, st) in &a.stats {
                assert_eq!(
                    st.total_frames,
                    st.executed_frames + st.dropped_frames,
                    "{name}/{}/{m}: frame conservation violated",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn conformance_whole_run_invariants_multi_user() {
    // The same invariants must hold when users share the engines.
    let provider = UniformProvider::new(2, 0.003, 0.001);
    let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
    let session = SessionSpec::mixed("conformance", &specs, 6, 0.015);
    for (name, factory) in all_schedulers() {
        let sim = Simulator::new(SimConfig::default());
        let a = sim.run_session(&session, &provider, factory().as_mut());
        let b = sim.run_session(&session, &provider, factory().as_mut());
        assert_eq!(a, b, "{name} session run not reproducible");
        // Occupancy across *all* users' records.
        let mut all: Vec<_> = a
            .per_user
            .iter()
            .flat_map(|(_, r)| r.records.iter())
            .collect();
        all.sort_by(|x, y| x.t_start.total_cmp(&y.t_start));
        for e in 0..2 {
            let recs: Vec<_> = all.iter().filter(|r| r.engine == e).collect();
            for w in recs.windows(2) {
                assert!(
                    w[1].t_start >= w[0].t_end - 1e-12,
                    "{name}: cross-user overlap on engine {e}"
                );
            }
        }
    }
}

/// A scenario and hand-crafted request stream engineered for event
/// ties: every sensor frame emits three requests (HT, ES, and the
/// ES-dependent GE) with *exactly* equal `t_req` and equal deadlines,
/// on engines with exactly equal latencies — so arrival ingestion,
/// dispatch picks, engine choice, and completion processing all face
/// same-timestamp ties that only the deterministic tie-break orders.
fn tie_fixture() -> (
    xrbench::workload::ScenarioSpec,
    Vec<xrbench::workload::InferenceRequest>,
    xrbench::sim::TableProvider,
) {
    use xrbench::sim::{InferenceCost, TableProvider};
    use xrbench::workload::{DependencyKind, InferenceRequest, ScenarioBuilder};

    let spec = ScenarioBuilder::new("tie-break")
        .model(ModelId::HandTracking, 30.0)
        .model(ModelId::EyeSegmentation, 30.0)
        .dependent(
            ModelId::GazeEstimation,
            30.0,
            ModelId::EyeSegmentation,
            DependencyKind::Data,
            1.0,
        )
        .build()
        .expect("valid tie scenario");

    let mut requests = Vec::new();
    for k in 0..12u64 {
        let t = k as f64 * 0.01;
        for model in [
            ModelId::GazeEstimation, // deliberately not in model order
            ModelId::HandTracking,
            ModelId::EyeSegmentation,
        ] {
            requests.push(InferenceRequest {
                model,
                frame_id: k,
                sensor_frame: k,
                t_req: t,
                t_deadline: t + 0.015,
            });
        }
    }

    // Two engines with identical costs: engine choice is a pure tie.
    let mut provider = TableProvider::new(2);
    for m in ModelId::ALL {
        for e in 0..2 {
            provider.set(
                m,
                e,
                InferenceCost {
                    latency_s: 0.004,
                    energy_j: 0.001,
                },
            );
        }
    }
    (spec, requests, provider)
}

#[test]
fn conformance_same_timestamp_ties_are_deterministic() {
    // Same-timestamp arrival/dispatch/completion orderings must be
    // reproducible across runs for every scheduler.
    let (spec, requests, provider) = tie_fixture();
    for (name, factory) in all_schedulers() {
        let sim = Simulator::new(SimConfig {
            duration_s: 0.4,
            seed: 5,
        });
        let a = sim.run_requests(&spec, requests.clone(), &provider, factory().as_mut());
        let b = sim.run_requests(&spec, requests.clone(), &provider, factory().as_mut());
        assert_eq!(a, b, "{name} tie-break order not reproducible");
        assert!(!a.records.is_empty(), "{name} dispatched nothing");
    }
}

#[test]
fn conformance_same_timestamp_ties_match_reference_loop() {
    // The heap calendar's (t, user, model, sensor_frame, token)
    // tie-break must reproduce the pre-refactor loop's insertion-order
    // behavior bit-for-bit, including under exact event-time ties.
    let (spec, requests, provider) = tie_fixture();
    for (name, factory) in all_schedulers() {
        let sim = Simulator::new(SimConfig {
            duration_s: 0.4,
            seed: 5,
        });
        let fast = sim.run_requests(&spec, requests.clone(), &provider, factory().as_mut());
        let slow =
            sim.run_requests_reference(&spec, requests.clone(), &provider, factory().as_mut());
        assert_eq!(fast, slow, "{name} diverges from reference under ties");
    }
}

#[test]
fn conformance_multi_user_zero_stagger_matches_reference_loop() {
    // Zero stagger maximizes cross-user timestamp collisions; the
    // engines must still agree for every scheduler.
    let provider = UniformProvider::new(2, 0.003, 0.001);
    let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
    let session = SessionSpec::mixed("tied-users", &specs, 5, 0.0);
    for (name, factory) in all_schedulers() {
        let sim = Simulator::new(SimConfig::default());
        let fast = sim.run_session(&session, &provider, factory().as_mut());
        let slow = sim.run_session_reference(&session, &provider, factory().as_mut());
        assert_eq!(fast, slow, "{name} session diverges from reference");
    }
}

#[test]
fn conformance_all_shipped_schedulers_are_registered() {
    let names: Vec<&str> = all_schedulers()
        .iter()
        .map(|(_, f)| {
            let s = f();
            s.name()
        })
        .collect();
    assert_eq!(
        names,
        vec![
            "latency-greedy",
            "round-robin",
            "slack-edf",
            "least-loaded",
            "failover-aware"
        ]
    );
}

#[test]
fn conformance_faulted_runs_stay_deterministic_per_scheduler() {
    // Every shipped scheduler must stay reproducible when engines
    // churn, throttle, and revoke in-flight work under every recovery
    // policy — including stateful ones fed on_engine_down events.
    use xrbench::sim::{FaultProcess, RecoveryPolicy, ThrottleSpec};
    let provider = UniformProvider::new(3, 0.004, 0.001);
    let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
    let session = SessionSpec::mixed("faulted-conformance", &specs, 4, 0.01);
    let faults = FaultProcess {
        failure_rate_per_s: 2.0,
        mean_downtime_s: 0.05,
        preemption_rate_per_s: 4.0,
        mean_preemption_s: 0.02,
        throttle: Some(ThrottleSpec {
            period_s: 0.25,
            duty: 0.4,
            factor: 0.5,
        }),
    };
    for (name, factory) in all_schedulers() {
        for policy in RecoveryPolicy::ALL {
            let sim = Simulator::new(SimConfig::default());
            let a =
                sim.run_session_faulted(&session, &provider, factory().as_mut(), &faults, policy);
            let b =
                sim.run_session_faulted(&session, &provider, factory().as_mut(), &faults, policy);
            assert_eq!(a, b, "{name}/{policy} faulted run not reproducible");
            for (_, r) in &a.per_user {
                for (m, st) in &r.stats {
                    assert_eq!(
                        st.total_frames,
                        st.executed_frames + st.dropped_frames,
                        "{name}/{policy}/{m}: frame conservation violated under faults"
                    );
                }
            }
        }
    }
}
