//! Instantiated accelerator systems: Table 5 configuration × PE count,
//! with every unit model pre-evaluated through the analytical cost
//! model.

use xrbench_costmodel::{evaluate_layers, HardwareConfig, ModelCost};
use xrbench_models::{registry, ModelId};
use xrbench_sim::{CostProvider, InferenceCost};

use crate::styles::AcceleratorConfig;

/// A concrete accelerator system the runtime can dispatch onto.
///
/// Construction evaluates all eleven unit models on every
/// sub-accelerator once; the runtime then reads costs from the table.
#[derive(Debug, Clone)]
pub struct AcceleratorSystem {
    config: AcceleratorConfig,
    total_pes: u64,
    subs_hw: Vec<HardwareConfig>,
    /// Dense cost table indexed `model as usize * num_engines + engine`
    /// (every pair is filled at construction).
    costs: Vec<InferenceCost>,
}

impl AcceleratorSystem {
    /// Instantiates `config` on a chip with `total_pes` PEs using the
    /// paper's default platform parameters (256 GB/s NoC, 8 MiB SRAM,
    /// 1 GHz).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (fractions don't sum
    /// to 1).
    pub fn new(config: AcceleratorConfig, total_pes: u64) -> Self {
        Self::with_base_hw(config, HardwareConfig::with_pes(total_pes))
    }

    /// Instantiates `config` by partitioning an explicit base
    /// platform — the hook for bandwidth/SRAM ablations.
    pub fn with_base_hw(config: AcceleratorConfig, base: HardwareConfig) -> Self {
        assert!(config.is_valid(), "invalid accelerator config {config}");
        let subs_hw: Vec<HardwareConfig> = config
            .subs
            .iter()
            .map(|s| base.partition_shared_bw(s.fraction))
            .collect();
        let engines = config.subs.len();
        let fill = InferenceCost {
            latency_s: 0.0,
            energy_j: 0.0,
        };
        let mut costs = vec![fill; ModelId::ALL.len() * engines];
        for info in registry::all_models() {
            for (e, (sub, hw)) in config.subs.iter().zip(&subs_hw).enumerate() {
                let mc: ModelCost = evaluate_layers(&info.layers, sub.dataflow, hw);
                costs[info.id as usize * engines + e] = InferenceCost {
                    latency_s: mc.latency_s(),
                    energy_j: mc.energy_j(),
                };
            }
        }
        Self {
            config,
            total_pes: base.pes,
            subs_hw,
            costs,
        }
    }

    /// The Table 5 configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Total PEs across sub-accelerators.
    pub fn total_pes(&self) -> u64 {
        self.total_pes
    }

    /// The hardware parameters of one sub-accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `engine` is out of range.
    pub fn sub_hw(&self, engine: usize) -> &HardwareConfig {
        &self.subs_hw[engine]
    }

    /// The fastest latency any engine achieves for `model`.
    pub fn best_latency_s(&self, model: ModelId) -> f64 {
        (0..self.num_engines())
            .map(|e| self.cost(model, e).latency_s)
            .fold(f64::INFINITY, f64::min)
    }
}

impl CostProvider for AcceleratorSystem {
    fn num_engines(&self) -> usize {
        self.config.subs.len()
    }

    fn label(&self) -> String {
        format!("{} @ {} PEs", self.config, self.total_pes)
    }

    fn engine_label(&self, engine: usize) -> String {
        format!(
            "{}@{}",
            self.config.subs[engine].dataflow.abbrev(),
            self.subs_hw[engine].pes
        )
    }

    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
        let engines = self.num_engines();
        assert!(engine < engines, "engine {engine} out of range for {model}");
        self.costs[model as usize * engines + engine]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::styles::table5;

    fn system(id: char, pes: u64) -> AcceleratorSystem {
        let cfg = table5().into_iter().find(|c| c.id == id).unwrap();
        AcceleratorSystem::new(cfg, pes)
    }

    #[test]
    fn engine_counts_match_style() {
        assert_eq!(system('A', 4096).num_engines(), 1);
        assert_eq!(system('D', 4096).num_engines(), 2);
        assert_eq!(system('G', 4096).num_engines(), 4);
        assert_eq!(system('J', 4096).num_engines(), 2);
        assert_eq!(system('M', 4096).num_engines(), 4);
    }

    #[test]
    fn partition_splits_pes() {
        let s = system('J', 4096);
        assert_eq!(s.sub_hw(0).pes, 2048);
        assert_eq!(s.sub_hw(1).pes, 2048);
        let k = system('K', 8192);
        assert_eq!(k.sub_hw(0).pes, 6144);
        assert_eq!(k.sub_hw(1).pes, 2048);
    }

    #[test]
    fn every_model_costed_on_every_engine() {
        let s = system('M', 8192);
        for m in ModelId::ALL {
            for e in 0..s.num_engines() {
                let c = s.cost(m, e);
                assert!(c.latency_s > 0.0, "{m} on engine {e}");
                assert!(c.energy_j > 0.0, "{m} on engine {e}");
            }
        }
    }

    #[test]
    fn more_pes_never_slower_per_model() {
        let a4 = system('A', 4096);
        let a8 = system('A', 8192);
        for m in ModelId::ALL {
            assert!(
                a8.cost(m, 0).latency_s <= a4.cost(m, 0).latency_s * 1.001,
                "{m}: 8K slower than 4K"
            );
        }
    }

    #[test]
    fn plane_detection_misses_30fps_on_small_subaccelerators() {
        // The Figure 6 driver. On J/4K (2K-PE sub-accelerators) PD
        // exceeds even the two-engine sustainable budget (2 × 33 ms),
        // clogging the system and dropping frames. On J/8K it still
        // misses the 33 ms deadline (real-time score ~0 for PD, as in
        // the paper's 0.68 = (1 + 1 + 0)/3 scenario breakdown) but
        // fits within the two-engine budget, so nothing drops.
        let budget = 2.0 / 30.0;
        let deadline = 1.0 / 30.0;
        let j4 = system('J', 4096).best_latency_s(ModelId::PlaneDetection);
        let j8 = system('J', 8192).best_latency_s(ModelId::PlaneDetection);
        // 1.5× the deadline suffices for congestion: HT and DE must
        // share the same two engines, so PD at ~50+ ms per frame on
        // the faster engine (and ~2× that on the OS engine)
        // oversubscribes the system.
        assert!(
            j4 > 1.5 * deadline,
            "PD should oversubscribe J/4K (need > 50 ms), got {:.1} ms",
            j4 * 1e3
        );
        assert!(
            j8 > deadline && j8 < budget,
            "PD on J/8K should miss 33 ms but fit 66 ms, got {:.1} ms",
            j8 * 1e3
        );
    }

    #[test]
    fn light_models_run_fast_everywhere() {
        for id in ['A', 'B', 'C', 'J'] {
            let s = system(id, 4096);
            for e in 0..s.num_engines() {
                let c = s.cost(ModelId::KeywordDetection, e);
                assert!(
                    c.latency_s < 0.005,
                    "{id}: KD too slow on engine {e}: {:.2} ms",
                    c.latency_s * 1e3
                );
            }
        }
    }

    #[test]
    fn engine_labels_show_dataflow_and_pes() {
        let s = system('J', 4096);
        assert_eq!(s.engine_label(0), "WS@2048");
        assert_eq!(s.engine_label(1), "OS@2048");
    }

    #[test]
    fn energy_per_inference_below_emax_for_most_models() {
        // The score Emax is 1.5 J; typical models should be well under.
        let s = system('A', 4096);
        for m in [
            ModelId::HandTracking,
            ModelId::EyeSegmentation,
            ModelId::DepthEstimation,
        ] {
            let c = s.cost(m, 0);
            assert!(c.energy_j < 0.5, "{m}: {:.3} J too high", c.energy_j);
        }
    }

    #[test]
    fn dataflow_changes_cost() {
        let a = system('A', 4096); // WS
        let b = system('B', 4096); // OS
        let mut any_diff = false;
        for m in ModelId::ALL {
            if (a.cost(m, 0).latency_s - b.cost(m, 0).latency_s).abs() > 1e-9 {
                any_diff = true;
            }
        }
        assert!(any_diff, "WS and OS produced identical latencies");
    }
}
