//! # xrbench-accel
//!
//! The simulated DNN-accelerator systems XRBench evaluates (paper
//! §4.1, Table 5): thirteen configurations `A`–`M` across three
//! styles —
//!
//! * **FDA** — a single fixed-dataflow accelerator using all PEs;
//! * **SFDA** — a scaled-out system of 2 or 4 identical-dataflow
//!   sub-accelerators partitioning the PEs;
//! * **HDA** — a heterogeneous-dataflow system (Herald-style) mixing
//!   WS and OS sub-accelerators with 1:1, 3:1, or 1:3 partitioning.
//!
//! [`AcceleratorSystem`] instantiates a configuration at a total PE
//! count (the paper uses 4K and 8K), evaluates every XRBench unit
//! model on every sub-accelerator with the analytical cost model, and
//! exposes the result to the runtime as a [`xrbench_sim::CostProvider`].
//!
//! ## Example
//!
//! ```
//! use xrbench_accel::{table5, AcceleratorSystem};
//! use xrbench_sim::CostProvider;
//! use xrbench_models::ModelId;
//!
//! let configs = table5();
//! let j = configs.iter().find(|c| c.id == 'J').unwrap();
//! let system = AcceleratorSystem::new(j.clone(), 4096);
//! assert_eq!(system.num_engines(), 2);
//! let cost = system.cost(ModelId::HandTracking, 0);
//! assert!(cost.latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod styles;
mod system;

pub use styles::{config_by_id, table5, AcceleratorConfig, AcceleratorStyle, SubAccelSpec};
pub use system::AcceleratorSystem;
