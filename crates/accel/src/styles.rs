//! The Table 5 accelerator configurations.

use std::fmt;

use xrbench_costmodel::Dataflow;

/// The three accelerator organization styles of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorStyle {
    /// Fixed-dataflow accelerator: one monolithic engine.
    Fda,
    /// Scaled-out multi-FDA: 2 or 4 identical-dataflow engines
    /// (motivated by Baek et al. 2020).
    Sfda,
    /// Heterogeneous-dataflow accelerator (Kwon et al. 2021).
    Hda,
}

impl fmt::Display for AcceleratorStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AcceleratorStyle::Fda => "FDA",
            AcceleratorStyle::Sfda => "SFDA",
            AcceleratorStyle::Hda => "HDA",
        })
    }
}

/// One sub-accelerator: a dataflow and the fraction of the chip's
/// PEs/bandwidth/SRAM it owns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubAccelSpec {
    /// The fixed dataflow of this engine.
    pub dataflow: Dataflow,
    /// Fraction of total resources in `(0, 1]`.
    pub fraction: f64,
}

/// A named accelerator configuration (one row of Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// The Table 5 identifier, `'A'..='M'`.
    pub id: char,
    /// Organization style.
    pub style: AcceleratorStyle,
    /// The sub-accelerators (one entry for FDA).
    pub subs: Vec<SubAccelSpec>,
}

impl AcceleratorConfig {
    /// The Table 5 "Dataflow" column, e.g. `"WS + OS (1:3 partitioning)"`.
    pub fn dataflow_description(&self) -> String {
        let flows: Vec<&str> = self.subs.iter().map(|s| s.dataflow.abbrev()).collect();
        if self.subs.len() == 1 {
            return flows[0].to_string();
        }
        let ratio: Vec<String> = self
            .subs
            .iter()
            .map(|s| {
                let unit = self
                    .subs
                    .iter()
                    .map(|x| x.fraction)
                    .fold(f64::MAX, f64::min);
                format!("{}", (s.fraction / unit).round() as u64)
            })
            .collect();
        format!("{} ({} partitioning)", flows.join(" + "), ratio.join(":"))
    }

    /// Validates that sub-accelerator fractions sum to 1.
    pub fn is_valid(&self) -> bool {
        !self.subs.is_empty()
            && (self.subs.iter().map(|s| s.fraction).sum::<f64>() - 1.0).abs() < 1e-9
            && self.subs.iter().all(|s| s.fraction > 0.0)
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.id,
            self.style,
            self.dataflow_description()
        )
    }
}

fn uniform(style: AcceleratorStyle, id: char, dataflow: Dataflow, n: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        id,
        style,
        subs: vec![
            SubAccelSpec {
                dataflow,
                fraction: 1.0 / n as f64,
            };
            n
        ],
    }
}

/// A heterogeneous (HDA) configuration from `(dataflow, fraction)`
/// pairs.
fn hda(id: char, subs: &[(Dataflow, f64)]) -> AcceleratorConfig {
    AcceleratorConfig {
        id,
        style: AcceleratorStyle::Hda,
        subs: subs
            .iter()
            .map(|&(dataflow, fraction)| SubAccelSpec { dataflow, fraction })
            .collect(),
    }
}

/// Builds the thirteen Table 5 accelerator configurations `A`–`M`.
pub fn table5() -> Vec<AcceleratorConfig> {
    use AcceleratorStyle::*;
    use Dataflow::*;
    vec![
        // FDA: single accelerator per dataflow.
        uniform(Fda, 'A', WeightStationary, 1),
        uniform(Fda, 'B', OutputStationary, 1),
        uniform(Fda, 'C', RowStationary, 1),
        // SFDA: 2-way (1:1) per dataflow.
        uniform(Sfda, 'D', WeightStationary, 2),
        uniform(Sfda, 'E', OutputStationary, 2),
        uniform(Sfda, 'F', RowStationary, 2),
        // SFDA: 4-way (1:1:1:1) per dataflow.
        uniform(Sfda, 'G', WeightStationary, 4),
        uniform(Sfda, 'H', OutputStationary, 4),
        uniform(Sfda, 'I', RowStationary, 4),
        // HDA: WS + OS mixes.
        hda('J', &[(WeightStationary, 0.5), (OutputStationary, 0.5)]),
        hda('K', &[(WeightStationary, 0.75), (OutputStationary, 0.25)]),
        hda('L', &[(WeightStationary, 0.25), (OutputStationary, 0.75)]),
        hda(
            'M',
            &[
                (WeightStationary, 0.25),
                (OutputStationary, 0.25),
                (WeightStationary, 0.25),
                (OutputStationary, 0.25),
            ],
        ),
    ]
}

/// Looks up one Table 5 configuration by its identifier,
/// case-insensitively (`'a'` and `'A'` both name the WS FDA).
///
/// The by-name entry point spec files and the CLI resolve accelerator
/// references through.
pub fn config_by_id(id: char) -> Option<AcceleratorConfig> {
    let id = id.to_ascii_uppercase();
    table5().into_iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_by_id_finds_every_row_case_insensitively() {
        for id in 'A'..='M' {
            assert_eq!(config_by_id(id).unwrap().id, id);
            assert_eq!(config_by_id(id.to_ascii_lowercase()).unwrap().id, id);
        }
        assert_eq!(config_by_id('N'), None);
        assert_eq!(config_by_id('1'), None);
    }

    #[test]
    fn thirteen_configs_a_through_m() {
        let cfgs = table5();
        assert_eq!(cfgs.len(), 13);
        let ids: Vec<char> = cfgs.iter().map(|c| c.id).collect();
        assert_eq!(ids, ('A'..='M').collect::<Vec<_>>());
    }

    #[test]
    fn all_configs_valid() {
        for c in table5() {
            assert!(c.is_valid(), "{c}");
        }
    }

    #[test]
    fn style_counts_match_table5() {
        let cfgs = table5();
        let fda = cfgs
            .iter()
            .filter(|c| c.style == AcceleratorStyle::Fda)
            .count();
        let sfda = cfgs
            .iter()
            .filter(|c| c.style == AcceleratorStyle::Sfda)
            .count();
        let hda = cfgs
            .iter()
            .filter(|c| c.style == AcceleratorStyle::Hda)
            .count();
        assert_eq!((fda, sfda, hda), (3, 6, 4));
    }

    #[test]
    fn partitioning_descriptions() {
        let cfgs = table5();
        let get = |id: char| cfgs.iter().find(|c| c.id == id).unwrap();
        assert_eq!(get('A').dataflow_description(), "WS");
        assert_eq!(
            get('D').dataflow_description(),
            "WS + WS (1:1 partitioning)"
        );
        assert_eq!(
            get('G').dataflow_description(),
            "WS + WS + WS + WS (1:1:1:1 partitioning)"
        );
        assert_eq!(
            get('K').dataflow_description(),
            "WS + OS (3:1 partitioning)"
        );
        assert_eq!(
            get('L').dataflow_description(),
            "WS + OS (1:3 partitioning)"
        );
        assert_eq!(
            get('M').dataflow_description(),
            "WS + OS + WS + OS (1:1:1:1 partitioning)"
        );
    }

    #[test]
    fn hda_configs_mix_dataflows() {
        for c in table5().iter().filter(|c| c.style == AcceleratorStyle::Hda) {
            let mut flows: Vec<_> = c.subs.iter().map(|s| s.dataflow).collect();
            flows.sort();
            flows.dedup();
            assert!(flows.len() > 1, "{c} is not heterogeneous");
        }
    }
}
