//! Static analysis for XRBench: spec schedulability diagnostics and
//! a source-level determinism lint.
//!
//! Both halves are pure static passes — no simulation:
//!
//! - [`analyze_scenario`] / [`analyze_session`] / [`analyze_fleet`] /
//!   [`analyze_run_document`] check a spec against a
//!   [`CostProvider`](xrbench_sim::CostProvider) and emit
//!   [`Diagnostic`]s with stable `XA###` codes.
//! - [`lint`] scans the deterministic crates' sources for constructs
//!   that break byte-identical reproducibility (the `lint_determinism`
//!   binary drives it).
//! - [`FeasibleSampling`] filters procedural scenario sampling to
//!   analyzer-clean draws.
//!
//! # Diagnostic codes
//!
//! Errors are statically-proven infeasibility (drops guaranteed under
//! any scheduler); deadline violations are *warnings* because XRBench
//! deadlines are soft — a miss zeroes the real-time score but drops
//! nothing (the paper's own flagship configuration ships Plane
//! Detection in exactly this state). See `DESIGN.md` for derivations.
//!
//! | code | severity | scope | meaning |
//! |------|----------|-------|---------|
//! | XA001 | error | model | unsustainable throughput: best-case expected demand exceeds total engine capacity |
//! | XA002 | error | scenario | aggregate expected demand exceeds engine capacity (EDF necessary condition) |
//! | XA003 | warning | scenario | worst-case demand (all cascades firing) exceeds capacity while expected fits |
//! | XA004 | warning | model | critical path exceeds every deadline window — no scheduler can meet the deadline |
//! | XA005 | warning | model | critical path exceeds the tightest deadline window — some frames must miss |
//! | XA006 | warning | model | dead model: cascade reach probability is exactly 0 |
//! | XA007 | info | model | near-dead cascade: reach probability below 0.01 |
//! | XA008 | warning | model | degenerate cascade fan-out: ≥ 4 downstream dependents |
//! | XA009 | info | model | non-integral sensor ratio: deadline windows alternate in length |
//! | XA010 | error | session | session aggregate expected demand exceeds the shared device's capacity |
//! | XA011 | warning | session | session worst-case demand exceeds capacity while expected fits |
//! | XA012 | info | fleet | oversubscription estimate: devices, groups, peak and aggregate demand vs capacity |
//! | XA013 | info | scenario | utilization summary with best-pin per-engine demand breakdown |
//! | XA014 | error | group | fault-derated capacity (availability × throttle) below expected demand: the fault process makes the group statically hopeless |
//! | XA015 | error | fleet/group | degenerate fleet: no groups, a zero-replica group, or a zero-user session |
//! | XA016 | warning | group | worst-case demand exceeds fault-derated capacity while expected demand fits |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod diag;
mod feasible;
pub mod lint;

pub use analyze::{analyze_fleet, analyze_run_document, analyze_scenario, analyze_session};
pub use diag::{Analysis, Diagnostic, Severity};
pub use feasible::{FeasibleSampling, FeasibleSpace, InfeasibleSpaceError, DEFAULT_MAX_ATTEMPTS};
