//! The spec schedulability analyzer: pure static passes over
//! scenario / session / fleet specs against a cost provider.
//!
//! Every check here is a *lower bound* argument: costs are taken at
//! each model's best engine, dependency latency at the critical path,
//! and trigger mass at its expectation. When a lower bound already
//! exceeds capacity, no scheduler on the analyzed hardware can do
//! better — that is what makes an error-severity diagnostic sound
//! without running the simulator. See `DESIGN.md` ("Static analysis")
//! for the derivations, including why deadline violations are
//! warnings (XRBench deadlines are soft: a missed deadline zeroes the
//! real-time score but drops nothing) while capacity violations are
//! errors (backlog growth forces drops under any scheduler).

use xrbench_core::spec::RunDocument;
use xrbench_fleet::FleetSpec;
use xrbench_models::ModelId;
use xrbench_sim::CostProvider;
use xrbench_workload::{source_spec, ScenarioSpec, SessionSpec};

use crate::diag::{Analysis, Diagnostic, Severity};

/// Guard band on floating-point capacity comparisons, so a demand of
/// exactly 1.0 engine-s/s per engine analyzes as schedulable.
const EPS: f64 = 1e-9;

/// Reach probability below which a cascade is flagged near-dead.
const NEAR_DEAD_P: f64 = 0.01;

/// Downstream-dependent count at which fan-out is flagged degenerate.
const FAN_OUT_LIMIT: usize = 4;

/// Static facts derived for one model of a scenario.
struct ModelFacts {
    /// Best-engine inference latency (s) — the latency lower bound.
    min_lat: f64,
    /// The engine achieving `min_lat` (first engine wins ties).
    best_engine: usize,
    /// Expected cascade-trigger probability mass reaching this model.
    reach_p: f64,
    /// Dependency critical-path latency (s): `min_lat` plus the
    /// longest chain of upstream best-engine latencies.
    critical_path: f64,
    /// Tightest arrival-to-deadline window (s), jitter included.
    window_min: f64,
    /// Loosest arrival-to-deadline window (s), jitter included.
    window_max: f64,
    /// Sensor-frames-per-request ratio (`sensor fps / target fps`).
    ratio: f64,
    /// Whether `ratio` is integral (regular deadline windows).
    integral_ratio: bool,
}

/// All per-model facts for one scenario, in spec order.
struct ScenarioFacts {
    facts: Vec<ModelFacts>,
    /// Downstream dependents (dependency edges in) per spec index.
    fan_out: Vec<usize>,
    engines: usize,
}

impl ScenarioFacts {
    fn compute(spec: &ScenarioSpec, provider: &dyn CostProvider) -> Self {
        let engines = provider.num_engines();
        assert!(engines > 0, "cost provider exposes no engines");

        // Dense spec-index lookup; the builder guarantees every
        // dependency's upstream is an active model of the scenario.
        let mut index = [usize::MAX; ModelId::ALL.len()];
        for (i, m) in spec.models.iter().enumerate() {
            index[m.model as usize] = i;
        }

        let mut min_lat = Vec::with_capacity(spec.models.len());
        let mut best_engine = Vec::with_capacity(spec.models.len());
        for m in &spec.models {
            let mut best = f64::INFINITY;
            let mut best_e = 0;
            for e in 0..engines {
                let lat = provider.cost(m.model, e).latency_s;
                if lat < best {
                    best = lat;
                    best_e = e;
                }
            }
            min_lat.push(best);
            best_engine.push(best_e);
        }

        // Memoized recursions over the (acyclic, builder-validated)
        // dependency graph.
        let mut reach_p = vec![f64::NAN; spec.models.len()];
        let mut critical = vec![f64::NAN; spec.models.len()];
        for i in 0..spec.models.len() {
            Self::reach(spec, &index, &mut reach_p, i);
            Self::cp(spec, &index, &min_lat, &mut critical, i);
        }

        let mut fan_out = vec![0usize; spec.models.len()];
        for m in &spec.models {
            for dep in &m.deps {
                fan_out[index[dep.upstream as usize]] += 1;
            }
        }

        let facts = spec
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let src = source_spec(m.model.driving_source());
                let ratio = src.fps / m.target_fps;
                let jitter_s = src.jitter_ms / 1_000.0;
                let integral = (ratio - ratio.round()).abs() < 1e-9;
                let (gap_min, gap_max) = if integral {
                    (ratio.round(), ratio.round())
                } else {
                    (ratio.floor(), ratio.ceil())
                };
                ModelFacts {
                    min_lat: min_lat[i],
                    best_engine: best_engine[i],
                    reach_p: reach_p[i],
                    critical_path: critical[i],
                    window_min: gap_min / src.fps - jitter_s,
                    window_max: gap_max / src.fps + jitter_s,
                    ratio,
                    integral_ratio: integral,
                }
            })
            .collect();

        Self {
            facts,
            fan_out,
            engines,
        }
    }

    fn reach(spec: &ScenarioSpec, index: &[usize], memo: &mut [f64], i: usize) -> f64 {
        if !memo[i].is_nan() {
            return memo[i];
        }
        let mut p = 1.0;
        for dep in &spec.models[i].deps {
            let up = Self::reach(spec, index, memo, index[dep.upstream as usize]);
            p *= up * dep.trigger_probability;
        }
        memo[i] = p;
        p
    }

    fn cp(
        spec: &ScenarioSpec,
        index: &[usize],
        min_lat: &[f64],
        memo: &mut [f64],
        i: usize,
    ) -> f64 {
        if !memo[i].is_nan() {
            return memo[i];
        }
        let mut upstream = 0.0f64;
        for dep in &spec.models[i].deps {
            let up = Self::cp(spec, index, min_lat, memo, index[dep.upstream as usize]);
            upstream = upstream.max(up);
        }
        let v = min_lat[i] + upstream;
        memo[i] = v;
        v
    }

    /// Expected aggregate demand in engine-seconds per second.
    fn expected_demand(&self, spec: &ScenarioSpec) -> f64 {
        spec.models
            .iter()
            .zip(&self.facts)
            .map(|(m, f)| f.reach_p * m.target_fps * f.min_lat)
            .sum()
    }

    /// Worst-case demand: every cascade with non-zero reach treated
    /// as always triggering.
    fn worst_case_demand(&self, spec: &ScenarioSpec) -> f64 {
        spec.models
            .iter()
            .zip(&self.facts)
            .map(|(m, f)| {
                if f.reach_p > 0.0 {
                    m.target_fps * f.min_lat
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Expected demand routed to each engine under the best-pin
    /// assignment (every model on its `best_engine`).
    fn best_pin_demand(&self, spec: &ScenarioSpec) -> Vec<f64> {
        let mut per_engine = vec![0.0f64; self.engines];
        for (m, f) in spec.models.iter().zip(&self.facts) {
            per_engine[f.best_engine] += f.reach_p * m.target_fps * f.min_lat;
        }
        per_engine
    }
}

/// Emits every scenario-scoped diagnostic for `spec`, with scopes
/// prefixed by `prefix` (empty for a stand-alone scenario; a group /
/// user-count tag inside sessions and fleets).
fn scenario_diags(
    spec: &ScenarioSpec,
    provider: &dyn CostProvider,
    scope: &str,
) -> Vec<Diagnostic> {
    let facts = ScenarioFacts::compute(spec, provider);
    let engines = facts.engines;
    let mut out = Vec::new();

    let model_diag = |code, severity, model: ModelId, message: String| Diagnostic {
        code,
        severity,
        scope: scope.to_string(),
        model: Some(model),
        message,
    };

    for ((m, f), &fan_out) in spec.models.iter().zip(&facts.facts).zip(&facts.fan_out) {
        let demand = f.reach_p * m.target_fps * f.min_lat;
        if demand > engines as f64 + EPS {
            out.push(model_diag(
                "XA001",
                Severity::Error,
                m.model,
                format!(
                    "unsustainable throughput: expected demand {:.3} engine-s/s > {} engine capacity \
                     (min latency {:.2} ms × {:.1} FPS × reach p {:.3}) — backlog grows without bound",
                    demand,
                    engines,
                    f.min_lat * 1_000.0,
                    m.target_fps,
                    f.reach_p
                ),
            ));
        }
        if f.critical_path > f.window_max + EPS {
            out.push(model_diag(
                "XA004",
                Severity::Warning,
                m.model,
                format!(
                    "critical path {:.2} ms exceeds every deadline window (≤ {:.2} ms): \
                     no scheduler on this hardware can meet the deadline",
                    f.critical_path * 1_000.0,
                    f.window_max * 1_000.0
                ),
            ));
        } else if f.critical_path > f.window_min + EPS {
            out.push(model_diag(
                "XA005",
                Severity::Warning,
                m.model,
                format!(
                    "critical path {:.2} ms exceeds the tightest deadline window {:.2} ms: \
                     some frames must miss their deadline",
                    f.critical_path * 1_000.0,
                    f.window_min * 1_000.0
                ),
            ));
        }
        if f.reach_p == 0.0 {
            out.push(model_diag(
                "XA006",
                Severity::Warning,
                m.model,
                "dead model: cascade reach probability is 0, it can never trigger".to_string(),
            ));
        } else if f.reach_p < NEAR_DEAD_P {
            out.push(model_diag(
                "XA007",
                Severity::Info,
                m.model,
                format!(
                    "near-dead cascade: reach probability {:.4} < {NEAR_DEAD_P}",
                    f.reach_p
                ),
            ));
        }
        if fan_out >= FAN_OUT_LIMIT {
            out.push(model_diag(
                "XA008",
                Severity::Warning,
                m.model,
                format!(
                    "degenerate cascade fan-out: {fan_out} downstream dependents hang off this model"
                ),
            ));
        }
        if !f.integral_ratio {
            out.push(model_diag(
                "XA009",
                Severity::Info,
                m.model,
                format!(
                    "non-integral sensor ratio {:.3} ({:.0} FPS sensor / {:.1} FPS target): \
                     deadline windows alternate between {:.0} and {:.0} sensor frames",
                    f.ratio,
                    source_spec(m.model.driving_source()).fps,
                    m.target_fps,
                    f.ratio.floor(),
                    f.ratio.ceil()
                ),
            ));
        }
    }

    let expected = facts.expected_demand(spec);
    let worst = facts.worst_case_demand(spec);
    let scenario_diag = |code, severity, message| Diagnostic {
        code,
        severity,
        scope: scope.to_string(),
        model: None,
        message,
    };
    if expected > engines as f64 + EPS {
        out.push(scenario_diag(
            "XA002",
            Severity::Error,
            format!(
                "aggregate expected demand {expected:.3} engine-s/s > {engines} engine capacity: \
                 drops are guaranteed under any scheduler"
            ),
        ));
    } else if worst > engines as f64 + EPS {
        out.push(scenario_diag(
            "XA003",
            Severity::Warning,
            format!(
                "worst-case demand {worst:.3} engine-s/s > {engines} engine capacity \
                 (expected {expected:.3} fits): cascade bursts can transiently overload"
            ),
        ));
    }
    let per_engine = facts.best_pin_demand(spec);
    let breakdown = per_engine
        .iter()
        .enumerate()
        .map(|(e, d)| format!("{} {:.3}", provider.engine_label(e), d))
        .collect::<Vec<_>>()
        .join(", ");
    out.push(scenario_diag(
        "XA013",
        Severity::Info,
        format!(
            "expected demand {expected:.3} engine-s/s on {engines} engine(s); \
             best-pin per-engine demand: {breakdown}"
        ),
    ));

    out
}

/// Per-session checks: scenario diagnostics for each distinct
/// scenario, then the session-level aggregate capacity tests (XA010 /
/// XA011), all with scopes prefixed by `prefix`.
fn session_diags(
    session: &SessionSpec,
    provider: &dyn CostProvider,
    prefix: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Distinct scenarios in first-appearance order, with user counts.
    let mut seen: Vec<(&ScenarioSpec, usize)> = Vec::new();
    for user in &session.users {
        match seen.iter_mut().find(|(s, _)| s.name == user.spec.name) {
            Some(entry) => entry.1 += 1,
            None => seen.push((&user.spec, 1)),
        }
    }
    for &(spec, users) in &seen {
        let scope = format!("{prefix}scenario `{}` ({users} users)", spec.name);
        out.extend(scenario_diags(spec, provider, &scope));
    }

    let engines = provider.num_engines();
    let mut expected = 0.0f64;
    let mut worst = 0.0f64;
    for user in &session.users {
        let facts = ScenarioFacts::compute(&user.spec, provider);
        expected += facts.expected_demand(&user.spec);
        worst += facts.worst_case_demand(&user.spec);
    }
    let scope = format!("{prefix}session `{}`", session.name);
    if expected > engines as f64 + EPS {
        out.push(Diagnostic {
            code: "XA010",
            severity: Severity::Error,
            scope,
            model: None,
            message: format!(
                "session aggregate expected demand {expected:.3} engine-s/s from {} user(s) > \
                 {engines} engine capacity: concurrent users oversubscribe the device",
                session.num_users()
            ),
        });
    } else if worst > engines as f64 + EPS {
        out.push(Diagnostic {
            code: "XA011",
            severity: Severity::Warning,
            scope,
            model: None,
            message: format!(
                "session worst-case demand {worst:.3} engine-s/s from {} user(s) > \
                 {engines} engine capacity (expected {expected:.3} fits)",
                session.num_users()
            ),
        });
    }

    out
}

/// Analyzes one scenario against a cost provider.
pub fn analyze_scenario(spec: &ScenarioSpec, provider: &dyn CostProvider) -> Analysis {
    let scope = format!("scenario `{}`", spec.name);
    Analysis {
        subject: scope.clone(),
        system: provider.label(),
        diagnostics: scenario_diags(spec, provider, &scope),
    }
}

/// Analyzes a multi-user session (all users share one device's
/// engines) against a cost provider.
pub fn analyze_session(session: &SessionSpec, provider: &dyn CostProvider) -> Analysis {
    Analysis {
        subject: format!("session `{}`", session.name),
        system: provider.label(),
        diagnostics: session_diags(session, provider, ""),
    }
}

/// Analyzes a fleet: each device group's session on its own device,
/// plus the fleet-level oversubscription estimate (XA012).
pub fn analyze_fleet(fleet: &FleetSpec, provider: &dyn CostProvider) -> Analysis {
    let engines = provider.num_engines();
    let mut diagnostics = Vec::new();
    // Degenerate shapes (XA015): the spec-file loader rejects these,
    // but programmatically-built fleets reach the analyzer directly.
    if fleet.groups.is_empty() {
        diagnostics.push(Diagnostic {
            code: "XA015",
            severity: Severity::Error,
            scope: format!("fleet `{}`", fleet.name),
            model: None,
            message: "degenerate fleet: no device groups — nothing to execute".to_string(),
        });
    }
    let mut peak = 0.0f64;
    let mut aggregate = 0.0f64;
    for group in &fleet.groups {
        let scope = format!("group `{}`", group.name);
        if group.replicas == 0 {
            diagnostics.push(Diagnostic {
                code: "XA015",
                severity: Severity::Error,
                scope: scope.clone(),
                model: None,
                message: "degenerate device group: zero replicas — nothing to execute".to_string(),
            });
        }
        if group.session.num_users() == 0 {
            diagnostics.push(Diagnostic {
                code: "XA015",
                severity: Severity::Error,
                scope: scope.clone(),
                model: None,
                message: format!(
                    "degenerate device group: session `{}` has zero users",
                    group.session.name
                ),
            });
        }
        let prefix = format!("group `{}` · ", group.name);
        diagnostics.extend(session_diags(&group.session, provider, &prefix));
        let mut demand = 0.0f64;
        let mut worst = 0.0f64;
        for user in &group.session.users {
            let facts = ScenarioFacts::compute(&user.spec, provider);
            demand += facts.expected_demand(&user.spec);
            worst += facts.worst_case_demand(&user.spec);
        }
        // Fault derating (XA014 / XA016): a churny group's long-run
        // capacity is engines × availability × mean throttle factor.
        // XA010/XA011 already cover raw-capacity overload, so these
        // fire only when the *fault process* is what sinks the group.
        if let Some(faults) = &group.faults {
            let derate = faults.mean_availability() * faults.mean_capacity();
            let capacity = engines as f64 * derate;
            if demand > capacity + EPS && demand <= engines as f64 + EPS {
                diagnostics.push(Diagnostic {
                    code: "XA014",
                    severity: Severity::Error,
                    scope: scope.clone(),
                    model: None,
                    message: format!(
                        "fault-derated capacity {capacity:.3} engine-s/s (availability {:.3} × \
                         throttle factor {:.3} on {engines} engine(s)) < expected demand \
                         {demand:.3}: the fault process alone forces drops under any scheduler \
                         and recovery policy",
                        faults.mean_availability(),
                        faults.mean_capacity()
                    ),
                });
            } else if worst > capacity + EPS && demand <= capacity + EPS {
                diagnostics.push(Diagnostic {
                    code: "XA016",
                    severity: Severity::Warning,
                    scope: scope.clone(),
                    model: None,
                    message: format!(
                        "worst-case demand {worst:.3} engine-s/s > fault-derated capacity \
                         {capacity:.3} (expected {demand:.3} fits): cascade bursts can outrun \
                         the derated device",
                    ),
                });
            }
        }
        peak = peak.max(demand);
        aggregate += demand * f64::from(group.replicas);
    }
    let devices = fleet.total_sessions();
    diagnostics.push(Diagnostic {
        code: "XA012",
        severity: Severity::Info,
        scope: format!("fleet `{}`", fleet.name),
        model: None,
        message: format!(
            "oversubscription estimate: {devices} device(s) across {} group(s); peak per-device \
             expected demand {peak:.3} engine-s/s, fleet aggregate {aggregate:.3} vs capacity \
             {:.3} engine-s/s",
            fleet.groups.len(),
            devices as f64 * engines as f64
        ),
    });
    Analysis {
        subject: format!("fleet `{}`", fleet.name),
        system: provider.label(),
        diagnostics,
    }
}

/// Analyzes a full run document: builds the document's cost provider
/// and dispatches on the run kind. Suite documents analyze every
/// catalog scenario in registration order.
pub fn analyze_run_document(doc: &RunDocument) -> Analysis {
    match doc {
        RunDocument::Suite(run) => {
            let provider = run.system.build();
            let mut diagnostics = Vec::new();
            for spec in run.catalog.iter() {
                let scope = format!("scenario `{}`", spec.name);
                diagnostics.extend(scenario_diags(spec, provider.as_ref(), &scope));
            }
            Analysis {
                subject: format!("suite run ({} scenarios)", run.catalog.len()),
                system: provider.label(),
                diagnostics,
            }
        }
        RunDocument::Session(run) => analyze_session(&run.session, run.system.build().as_ref()),
        RunDocument::Fleet(run) => analyze_fleet(&run.fleet, run.system.build().as_ref()),
        RunDocument::Sweep(run) => analyze_sweep(run),
    }
}

/// Analyzes every (hardware point × workload) cell of a sweep
/// document: the whole design space is vetted before any point
/// simulates, so an infeasible corner fails as early as a plain run
/// document would.
fn analyze_sweep(run: &xrbench_core::SweepDocument) -> Analysis {
    use xrbench_core::SweepWorkloadKind;

    let hardware = run.hardware_points();
    let mut diagnostics = Vec::new();
    let mut labels = Vec::new();
    for (id, pes) in &hardware {
        let provider = xrbench_core::SystemSpec::Accelerator { id: *id, pes: *pes }.build();
        let hw = format!("{id}@{pes}");
        labels.push(hw.clone());
        for workload in &run.workloads {
            let sub = match &workload.kind {
                SweepWorkloadKind::Scenario(spec) => analyze_scenario(spec, provider.as_ref()),
                SweepWorkloadKind::Session(spec) => analyze_session(spec, provider.as_ref()),
                SweepWorkloadKind::Fleet(spec) => analyze_fleet(spec, provider.as_ref()),
            };
            for mut diagnostic in sub.diagnostics {
                diagnostic.scope = format!("{hw} · {}", diagnostic.scope);
                diagnostics.push(diagnostic);
            }
        }
    }
    Analysis {
        subject: format!(
            "sweep `{}` ({} workloads × {} hardware points)",
            run.name,
            run.workloads.len(),
            hardware.len()
        ),
        system: labels.join(", "),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;
    use xrbench_workload::{DependencyKind, ScenarioBuilder, UsageScenario};

    /// 2 engines × 1 ms: every builtin scenario fits with slack.
    fn fast_provider() -> UniformProvider {
        UniformProvider::new(2, 0.001, 0.001)
    }

    #[test]
    fn builtin_scenarios_are_clean_on_fast_hardware() {
        for scenario in UsageScenario::ALL {
            let spec = scenario.spec();
            let analysis = analyze_scenario(&spec, &fast_provider());
            assert!(
                !analysis.has_errors(),
                "{}: {}",
                spec.name,
                analysis.to_text()
            );
            // XA013 is always present.
            assert!(analysis.diagnostics.iter().any(|d| d.code == "XA013"));
        }
    }

    #[test]
    fn slow_hardware_trips_unsustainable_and_aggregate_checks() {
        // 100 ms best-case at 60 FPS is 6 engine-s/s on 2 engines.
        let spec = ScenarioBuilder::new("hot")
            .model(ModelId::HandTracking, 60.0)
            .build()
            .unwrap();
        let analysis = analyze_scenario(&spec, &UniformProvider::new(2, 0.1, 0.001));
        let codes: Vec<_> = analysis.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"XA001"), "{codes:?}");
        assert!(codes.contains(&"XA002"), "{codes:?}");
        assert!(analysis.has_errors());
    }

    #[test]
    fn critical_path_past_window_warns_not_errors() {
        // Chain of three 8 ms models at 30 FPS: cp 24 ms > 33.4 ms?
        // No — use 12 ms each: cp 36 ms > 33.38 ms loosest window,
        // while demand 3 × 30 × 0.012 = 1.08 < 2 engines.
        let spec = ScenarioBuilder::new("chain")
            .model(ModelId::DepthEstimation, 30.0)
            .model(ModelId::DepthRefinement, 30.0)
            .model(ModelId::PlaneDetection, 30.0)
            .dependency(
                ModelId::DepthRefinement,
                ModelId::DepthEstimation,
                DependencyKind::Data,
                1.0,
            )
            .dependency(
                ModelId::PlaneDetection,
                ModelId::DepthRefinement,
                DependencyKind::Data,
                1.0,
            )
            .build()
            .unwrap();
        let analysis = analyze_scenario(&spec, &UniformProvider::new(2, 0.012, 0.001));
        let pd_diags: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.model == Some(ModelId::PlaneDetection))
            .collect();
        assert!(pd_diags.iter().any(|d| d.code == "XA004"), "{analysis:?}");
        assert!(!analysis.has_errors(), "deadline misses are soft");
    }

    #[test]
    fn dead_and_near_dead_cascades_are_flagged() {
        let spec = ScenarioBuilder::new("dead")
            .model(ModelId::HandTracking, 30.0)
            .model(ModelId::GazeEstimation, 30.0)
            .model(ModelId::ObjectDetection, 30.0)
            .dependency(
                ModelId::GazeEstimation,
                ModelId::HandTracking,
                DependencyKind::Control,
                0.0,
            )
            .dependency(
                ModelId::ObjectDetection,
                ModelId::HandTracking,
                DependencyKind::Control,
                0.005,
            )
            .build()
            .unwrap();
        let analysis = analyze_scenario(&spec, &fast_provider());
        let code_for = |m: ModelId| {
            analysis
                .diagnostics
                .iter()
                .find(|d| d.model == Some(m) && d.code != "XA009")
                .map(|d| d.code)
        };
        assert_eq!(code_for(ModelId::GazeEstimation), Some("XA006"));
        assert_eq!(code_for(ModelId::ObjectDetection), Some("XA007"));
    }

    #[test]
    fn degenerate_fan_out_flagged_on_the_upstream_model() {
        let mut builder = ScenarioBuilder::new("fan").model(ModelId::HandTracking, 30.0);
        for m in [
            ModelId::GazeEstimation,
            ModelId::ObjectDetection,
            ModelId::SemanticSegmentation,
            ModelId::ActionSegmentation,
        ] {
            builder = builder.model(m, 10.0).dependency(
                m,
                ModelId::HandTracking,
                DependencyKind::Data,
                1.0,
            );
        }
        let analysis = analyze_scenario(&builder.build().unwrap(), &fast_provider());
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "XA008" && d.model == Some(ModelId::HandTracking)));
    }

    #[test]
    fn non_integral_ratio_is_informational() {
        // HT at 45 FPS on the 60 FPS camera: ratio 4/3.
        let spec = ScenarioBuilder::new("ratio")
            .model(ModelId::HandTracking, 45.0)
            .build()
            .unwrap();
        let analysis = analyze_scenario(&spec, &fast_provider());
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "XA009")
            .expect("XA009 emitted");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn session_aggregate_oversubscription_is_an_error() {
        // One user fits (demand 0.96), four do not (3.84 > 2).
        let spec = ScenarioBuilder::new("user")
            .model(ModelId::HandTracking, 60.0)
            .model(ModelId::DepthEstimation, 60.0)
            .build()
            .unwrap();
        let one = SessionSpec::uniform("solo", spec.clone(), 1, 0.0);
        let four = SessionSpec::uniform("party", spec, 4, 0.0);
        let provider = UniformProvider::new(2, 0.008, 0.001);
        assert!(!analyze_session(&one, &provider).has_errors());
        let analysis = analyze_session(&four, &provider);
        assert!(analysis.diagnostics.iter().any(|d| d.code == "XA010"));
        assert!(analysis.has_errors());
    }

    #[test]
    fn degenerate_fleets_error_with_xa015() {
        let provider = fast_provider();
        let empty = FleetSpec {
            name: "empty".into(),
            groups: Vec::new(),
        };
        let analysis = analyze_fleet(&empty, &provider);
        assert!(analysis.diagnostics.iter().any(|d| d.code == "XA015"));
        assert!(analysis.has_errors());

        let session =
            SessionSpec::uniform("pair", UsageScenario::SocialInteractionA.spec(), 2, 0.25);
        let mut fleet = FleetSpec::new("f").group("g", session.clone(), 2);
        fleet.groups[0].replicas = 0;
        let analysis = analyze_fleet(&fleet, &provider);
        assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.code == "XA015" && d.message.contains("zero replicas")),
            "{}",
            analysis.to_text()
        );

        let mut fleet = FleetSpec::new("f").group("g", session, 2);
        fleet.groups[0].session.users.clear();
        let analysis = analyze_fleet(&fleet, &provider);
        assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.code == "XA015" && d.message.contains("zero users")),
            "{}",
            analysis.to_text()
        );
    }

    #[test]
    fn fault_derated_capacity_shortfall_is_an_error() {
        use xrbench_sim::FaultProcess;
        // 60 FPS × 12 ms = 0.72 engine-s/s fits one raw engine, but
        // availability 1/(1 + 2.0 × 1.0) = 1/3 derates capacity to
        // 0.333: the fault process alone sinks the group.
        let spec = ScenarioBuilder::new("hot")
            .model(ModelId::HandTracking, 60.0)
            .build()
            .unwrap();
        let session = SessionSpec::uniform("solo", spec, 1, 0.0);
        let faults = FaultProcess {
            failure_rate_per_s: 2.0,
            mean_downtime_s: 1.0,
            ..FaultProcess::default()
        };
        let fleet = FleetSpec::new("churny").group_faulted("g", session.clone(), 2, faults);
        let provider = UniformProvider::new(1, 0.012, 0.001);
        let analysis = analyze_fleet(&fleet, &provider);
        assert!(
            analysis.diagnostics.iter().any(|d| d.code == "XA014"),
            "{}",
            analysis.to_text()
        );
        assert!(analysis.has_errors());
        // The identical workload without the fault process is clean.
        let calm = FleetSpec::new("calm").group("g", session, 2);
        assert!(!analyze_fleet(&calm, &provider).has_errors());
    }

    #[test]
    fn worst_case_fault_derating_warns_not_errors() {
        use xrbench_sim::FaultProcess;
        // Expected demand 0.396 fits the derated capacity 0.5, but the
        // all-cascades-firing worst case 0.72 does not: XA016 warning.
        let spec = ScenarioBuilder::new("burst")
            .model(ModelId::HandTracking, 60.0)
            .model(ModelId::GazeEstimation, 60.0)
            .dependency(
                ModelId::GazeEstimation,
                ModelId::HandTracking,
                DependencyKind::Control,
                0.1,
            )
            .build()
            .unwrap();
        let session = SessionSpec::uniform("solo", spec, 1, 0.0);
        let faults = FaultProcess {
            failure_rate_per_s: 1.0,
            mean_downtime_s: 1.0,
            ..FaultProcess::default()
        };
        let fleet = FleetSpec::new("churny").group_faulted("g", session, 1, faults);
        let analysis = analyze_fleet(&fleet, &UniformProvider::new(1, 0.006, 0.001));
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "XA016")
            .unwrap_or_else(|| panic!("XA016 expected:\n{}", analysis.to_text()));
        assert_eq!(d.severity, Severity::Warning);
        assert!(!analysis.has_errors());
    }

    #[test]
    fn fleet_analysis_emits_oversubscription_estimate() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let session = SessionSpec::uniform("pair", spec, 2, 0.25);
        let fleet = FleetSpec::uniform("f", session, 3);
        let analysis = analyze_fleet(&fleet, &fast_provider());
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "XA012")
            .expect("XA012 emitted");
        assert!(d.message.contains("3 device(s)"), "{}", d.message);
    }
}
