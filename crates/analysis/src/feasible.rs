//! Feasibility-filtered scenario sampling: re-draw from a
//! [`ScenarioSpace`] until the analyzer reports no errors, so
//! procedural sweeps never spend simulation time on statically-dead
//! workloads.
//!
//! Filtering is still a pure function of `(space, provider, seed)`:
//! rejected attempts re-seed deterministically (splitmix64 over the
//! original seed and the attempt index), so the same inputs always
//! converge on the same accepted scenario.

use std::fmt;

use xrbench_sim::CostProvider;
use xrbench_workload::{ScenarioSpace, ScenarioSpec};

use crate::analyze::analyze_scenario;

/// Default cap on re-draws before [`FeasibleSpace::try_sample`] gives
/// up. Generous: on any hardware where the space is not wholly
/// infeasible, acceptance typically takes a handful of attempts.
pub const DEFAULT_MAX_ATTEMPTS: usize = 4096;

/// Extension trait adding analyzer-filtered sampling to
/// [`ScenarioSpace`].
pub trait FeasibleSampling {
    /// Wraps this space so every sample is re-drawn until the
    /// analyzer reports zero error-severity diagnostics against
    /// `provider`.
    fn feasible_only<'a>(&'a self, provider: &'a dyn CostProvider) -> FeasibleSpace<'a>;
}

impl FeasibleSampling for ScenarioSpace {
    fn feasible_only<'a>(&'a self, provider: &'a dyn CostProvider) -> FeasibleSpace<'a> {
        FeasibleSpace {
            space: self,
            provider,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }
}

/// A [`ScenarioSpace`] view whose samples are guaranteed
/// analyzer-clean (no error diagnostics) on a specific cost provider.
pub struct FeasibleSpace<'a> {
    space: &'a ScenarioSpace,
    provider: &'a dyn CostProvider,
    max_attempts: usize,
}

/// Returned when every re-draw within the attempt budget analyzed
/// infeasible — the space is (practically) dead on this hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleSpaceError {
    /// The requested sampling seed.
    pub seed: u64,
    /// How many draws were rejected.
    pub attempts: usize,
}

impl fmt::Display for InfeasibleSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no feasible scenario found for seed {} after {} attempts: \
             every sample analyzed with errors on this system",
            self.seed, self.attempts
        )
    }
}

impl std::error::Error for InfeasibleSpaceError {}

/// The splitmix64 finalizer, the same mixer the fleet layer uses for
/// replica seeds: decorrelates the retry stream from the seed stream
/// so `try_sample(seed)` and `try_sample(seed + 1)` don't walk the
/// same rejection chain.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<'a> FeasibleSpace<'a> {
    /// Overrides the re-draw budget (default
    /// [`DEFAULT_MAX_ATTEMPTS`]).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Draws one analyzer-clean scenario, deterministically from
    /// `seed`. Attempt 0 samples the space at `seed` itself (so a
    /// seed that is already feasible yields the identical scenario as
    /// unfiltered sampling); rejected attempts re-seed through a
    /// splitmix64 avalanche of `(seed, attempt)`.
    pub fn try_sample(&self, seed: u64) -> Result<ScenarioSpec, InfeasibleSpaceError> {
        let mut draw = seed;
        for attempt in 0..self.max_attempts {
            let spec = self.space.sample(draw);
            if !analyze_scenario(&spec, self.provider).has_errors() {
                return Ok(spec);
            }
            draw = mix64(seed ^ mix64(attempt as u64 + 1));
        }
        Err(InfeasibleSpaceError {
            seed,
            attempts: self.max_attempts,
        })
    }

    /// Panicking convenience wrapper around [`Self::try_sample`].
    pub fn sample(&self, seed: u64) -> ScenarioSpec {
        self.try_sample(seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Draws `count` feasible scenarios from consecutive seeds
    /// starting at `base_seed` (mirrors
    /// [`ScenarioSpace::sample_many`]).
    pub fn try_sample_many(
        &self,
        base_seed: u64,
        count: u32,
    ) -> Result<Vec<ScenarioSpec>, InfeasibleSpaceError> {
        (0..u64::from(count))
            .map(|i| self.try_sample(base_seed.wrapping_add(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_scenario;
    use xrbench_sim::UniformProvider;

    #[test]
    fn feasible_sampling_is_deterministic_and_clean() {
        // 5 ms × 2 engines: heavy multi-model 60 FPS samples overload
        // (e.g. 4 models at 60 FPS = 1.2 engine-s/s each), so the
        // filter has real work to do.
        let provider = UniformProvider::new(2, 0.005, 0.001);
        let space = ScenarioSpace::default();
        let feasible = space.feasible_only(&provider);
        for seed in 0..64u64 {
            let spec = feasible.try_sample(seed).expect("space is not dead");
            assert_eq!(spec, feasible.try_sample(seed).unwrap(), "seed {seed}");
            assert!(
                !analyze_scenario(&spec, &provider).has_errors(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn already_feasible_seeds_pass_through_unchanged() {
        let provider = UniformProvider::new(2, 0.000_1, 0.001);
        let space = ScenarioSpace::default();
        let feasible = space.feasible_only(&provider);
        for seed in 0..32u64 {
            assert_eq!(feasible.sample(seed), space.sample(seed), "seed {seed}");
        }
    }

    #[test]
    fn dead_space_reports_instead_of_spinning() {
        // 1 s per inference: nothing at ≥ 3 FPS can ever fit.
        let provider = UniformProvider::new(1, 1.0, 0.001);
        let space = ScenarioSpace::default();
        let err = space
            .feasible_only(&provider)
            .with_max_attempts(16)
            .try_sample(0)
            .unwrap_err();
        assert_eq!(err.attempts, 16);
        assert!(err.to_string().contains("after 16 attempts"));
    }

    #[test]
    fn sample_many_matches_per_seed_sampling() {
        let provider = UniformProvider::new(2, 0.005, 0.001);
        let space = ScenarioSpace::default();
        let feasible = space.feasible_only(&provider);
        let many = feasible.try_sample_many(10, 8).unwrap();
        for (i, spec) in many.iter().enumerate() {
            assert_eq!(*spec, feasible.try_sample(10 + i as u64).unwrap());
        }
    }
}
