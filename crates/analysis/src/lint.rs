//! The determinism lint: a source-level scan for constructs that
//! break the workspace's byte-identical-reports invariant.
//!
//! The simulator, fleet executor, scoring, and workload layers all
//! promise bit-reproducible output for a given seed — across runs,
//! platforms, and worker counts. A single unordered-map iteration or
//! wall-clock read silently breaks every golden fixture and the fleet
//! merge proof, so those constructs are banned at the token level in
//! deterministic crates:
//!
//! | rule | banned tokens | why |
//! |------|---------------|-----|
//! | `hash-map` / `hash-set` | std unordered collections | iteration order is unspecified (`RandomState`) |
//! | `system-time` / `instant` | wall-clock reads | timing must come from the simulated clock |
//! | `thread-rng` | OS-entropy RNGs | randomness must flow from the run seed |
//! | `unordered-par-fold` | rayon-style parallel iteration | reduction order must be the committed merge order |
//!
//! Escapes: an inline `lint:allow(rule-name)` comment on the same or
//! the previous line, or an entry (with a justification) in the
//! committed `lint_determinism.allow` file at the workspace root.
//! Unused allowlist entries are themselves findings, so the allowlist
//! can only shrink.
//!
//! The scan is intentionally lexical (token with non-identifier
//! neighbors, comment lines skipped): it cannot be fooled by
//! renaming-by-`use`, and the few legitimate uses are cheap to
//! allowlist explicitly. The `bench` crate is out of scope — its
//! whole job is wall-clock measurement.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule: a name, the banned tokens, and the invariant the
/// ban protects.
pub struct Rule {
    /// The rule name used in `lint:allow(...)` and the allowlist.
    pub name: &'static str,
    /// Tokens that trigger the rule (matched with non-identifier
    /// neighbors on both sides).
    pub tokens: &'static [&'static str],
    /// Why the construct is banned.
    pub rationale: &'static str,
}

// Token literals are assembled with `concat!` so this file does not
// itself contain the contiguous banned spellings it scans for.
/// The committed ban list.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-map",
        tokens: &[concat!("Hash", "Map")],
        rationale: "iteration order is unspecified; use a dense Vec, BTreeMap, or sorted keys",
    },
    Rule {
        name: "hash-set",
        tokens: &[concat!("Hash", "Set")],
        rationale: "iteration order is unspecified; use a dense bitmap, BTreeSet, or sorted Vec",
    },
    Rule {
        name: "system-time",
        tokens: &[concat!("System", "Time")],
        rationale: "wall-clock reads make results non-reproducible; use the simulated clock",
    },
    Rule {
        name: "instant",
        tokens: &[concat!("Ins", "tant")],
        rationale: "monotonic-clock reads make results non-reproducible; use the simulated clock",
    },
    Rule {
        name: "thread-rng",
        tokens: &[
            concat!("thread", "_rng"),
            concat!("from_", "entropy"),
            concat!("Os", "Rng"),
        ],
        rationale:
            "OS-entropy randomness breaks seed reproducibility; derive RNGs from the run seed",
    },
    Rule {
        name: "unordered-par-fold",
        tokens: &[
            concat!("par_", "iter"),
            concat!("into_", "par_", "iter"),
            concat!("par_", "bridge"),
            concat!("par_", "chunks"),
        ],
        rationale:
            "parallel folds reduce in nondeterministic order; merge shard results in index order",
    },
];

/// The crates the determinism contract covers (every source crate
/// except `bench`, whose job is wall-clock measurement).
pub const SCANNED_CRATES: &[&str] = &[
    "accel",
    "analysis",
    "cli",
    "core",
    "costmodel",
    "fleet",
    "models",
    "score",
    "sim",
    "workload",
];

/// One banned-token occurrence that no inline escape covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, relative to the scan root.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// The specific token that matched.
    pub token: &'static str,
    /// The rule's rationale.
    pub rationale: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: banned token `{}` (rule {}): {}",
            self.path, self.line, self.token, self.rule, self.rationale
        )
    }
}

/// One `lint_determinism.allow` entry: `<path-suffix> <rule> <justification>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Path suffix the entry covers (matched against the finding's
    /// relative path).
    pub path_suffix: String,
    /// The rule the entry silences.
    pub rule: String,
    /// Required free-text justification.
    pub justification: String,
}

/// The parsed committed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line
    /// (`<path-suffix> <rule> <justification…>`), `#` comments and
    /// blank lines ignored. A missing justification is a parse error
    /// — every exception must say why it is safe.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let path_suffix = parts.next().unwrap_or_default().to_string();
            let rule = parts.next().unwrap_or_default().to_string();
            let justification = parts.next().unwrap_or_default().trim().to_string();
            if rule.is_empty() || justification.is_empty() {
                return Err(format!(
                    "allowlist line {}: expected `<path-suffix> <rule> <justification>`, got `{line}`",
                    i + 1
                ));
            }
            if !RULES.iter().any(|r| r.name == rule) {
                return Err(format!("allowlist line {}: unknown rule `{rule}`", i + 1));
            }
            entries.push(AllowEntry {
                path_suffix,
                rule,
                justification,
            });
        }
        Ok(Self { entries })
    }
}

/// The result of a full workspace scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Findings not covered by any inline escape or allowlist entry.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale exceptions —
    /// also a failure, so the allowlist can only shrink).
    pub unused_allow_entries: Vec<AllowEntry>,
    /// Findings suppressed by the allowlist (inline escapes are not
    /// counted — they never reach a finding).
    pub allowlisted: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the scan is clean (no findings, no stale entries).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allow_entries.is_empty()
    }
}

/// True when `hay[start..start + needle_len]` is delimited by
/// non-identifier characters (so `Ins``tant` does not fire inside
/// `Ins``tantiates`).
fn is_token_boundary(hay: &str, start: usize, needle_len: usize) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let before_ok = hay[..start].chars().next_back().is_none_or(|c| !ident(c));
    let after_ok = hay[start + needle_len..]
        .chars()
        .next()
        .is_none_or(|c| !ident(c));
    before_ok && after_ok
}

/// Finds `needle` in `hay` with identifier boundaries on both sides.
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        if is_token_boundary(hay, start, needle.len()) {
            return true;
        }
        from = start + needle.len();
    }
    false
}

/// Whether `line` carries an inline escape for `rule`.
fn has_inline_allow(line: &str, rule: &str) -> bool {
    line.contains(&format!("lint:allow({rule})"))
}

/// Scans one file's source text. `rel_path` is used for reporting and
/// allowlist matching.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Whole-line comments (incl. doc comments) are prose, not
        // code: `Ins``tant` in documentation is fine.
        if trimmed.starts_with("//") {
            continue;
        }
        // A trailing comment is prose too; the escape marker is still
        // read from the full raw line below.
        let code = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        for rule in RULES {
            for token in rule.tokens {
                if !contains_token(code, token) {
                    continue;
                }
                let prev = if i > 0 { lines[i - 1] } else { "" };
                if has_inline_allow(raw, rule.name) || has_inline_allow(prev, rule.name) {
                    continue;
                }
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: i + 1,
                    rule: rule.name,
                    token,
                    rationale: rule.rationale,
                });
            }
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full lint from a workspace root: scans every deterministic
/// crate's `src/`, applies `<root>/lint_determinism.allow` (missing
/// file means an empty allowlist), and reports what survives.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("lint_determinism.allow");
    let allowlist = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };

    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(format!(
                "expected source directory {} is missing",
                src.display()
            ));
        }
        rust_files(&src, &mut files)?;
    }

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let mut used = vec![false; allowlist.entries.len()];
    for path in &files {
        let source =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        for finding in scan_source(&rel, &source) {
            let entry = allowlist
                .entries
                .iter()
                .position(|a| finding.rule == a.rule && rel.ends_with(&a.path_suffix));
            match entry {
                Some(idx) => {
                    used[idx] = true;
                    report.allowlisted += 1;
                }
                None => report.findings.push(finding),
            }
        }
    }
    report.unused_allow_entries = allowlist
        .entries
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e)
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Assembled so this test file stays clean under its own scan.
    fn hash_map_tok() -> String {
        format!("{}{}", "Hash", "Map")
    }

    #[test]
    fn token_boundaries_respect_identifiers() {
        let tok = concat!("Ins", "tant");
        assert!(contains_token(&format!("use std::time::{tok};"), tok));
        assert!(
            !contains_token(&format!("{tok}iates a provider"), tok),
            "prefix of a longer identifier must not fire"
        );
        assert!(!contains_token(&format!("My{tok}"), tok));
        let par = concat!("par_", "iter");
        assert!(!contains_token(&format!("into_{par}()"), par));
        assert!(contains_token(&format!("x.{par}()"), par));
    }

    #[test]
    fn comment_lines_and_trailing_comments_are_skipped() {
        let tok = hash_map_tok();
        let src = format!(
            "//! docs mention {tok} freely\n// so do comments: {tok}\nlet x = 1; // {tok} here too\n"
        );
        assert!(scan_source("f.rs", &src).is_empty());
    }

    #[test]
    fn findings_carry_position_and_rule() {
        let tok = hash_map_tok();
        let src = format!("fn f() {{\n    let m = {tok}::new();\n}}\n");
        let findings = scan_source("crates/x/src/f.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].rule, "hash-map");
        assert!(findings[0].to_string().contains("crates/x/src/f.rs:2"));
    }

    #[test]
    fn inline_allow_on_same_or_previous_line() {
        let tok = hash_map_tok();
        let same = format!("let m = {tok}::new(); // lint:allow(hash-map): local scratch\n");
        assert!(scan_source("f.rs", &same).is_empty());
        let prev = format!("// lint:allow(hash-map): local scratch\nlet m = {tok}::new();\n");
        assert!(scan_source("f.rs", &prev).is_empty());
        let wrong_rule = format!("let m = {tok}::new(); // lint:allow(instant)\n");
        assert_eq!(scan_source("f.rs", &wrong_rule).len(), 1);
    }

    #[test]
    fn allowlist_requires_justification_and_known_rules() {
        let ok = Allowlist::parse(
            "# comment\ncrates/x/src/f.rs hash-map scratch map, drained in sorted order\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 1);
        assert!(Allowlist::parse("crates/x/src/f.rs hash-map\n").is_err());
        assert!(Allowlist::parse("crates/x/src/f.rs no-such-rule why\n").is_err());
    }

    #[test]
    fn workspace_scan_is_clean() {
        // Self-hosting check from the unit suite too: the committed
        // tree must lint clean (the dedicated integration test and CI
        // gate enforce the same).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_lint(&root).expect("lint runs");
        assert!(
            report.is_clean(),
            "determinism lint found:\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 30, "scan saw the whole workspace");
    }
}
