//! Workspace determinism lint driver.
//!
//! Scans the deterministic crates for banned constructs (see
//! `xrbench_analysis::lint`) and exits non-zero when any finding is
//! not covered by an inline `lint:allow(...)` escape or the committed
//! `lint_determinism.allow` file — or when an allowlist entry no
//! longer matches anything.
//!
//! ```text
//! lint_determinism [--root <workspace-root>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use xrbench_analysis::lint::run_lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("lint_determinism: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
                i += 2;
            }
            "--help" | "-h" => {
                println!("USAGE: lint_determinism [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint_determinism: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match run_lint(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint_determinism: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    for entry in &report.unused_allow_entries {
        println!(
            "lint_determinism.allow: stale entry `{} {}` matches nothing — remove it",
            entry.path_suffix, entry.rule
        );
    }
    eprintln!(
        "lint_determinism: {} file(s) scanned, {} finding(s), {} allowlisted, {} stale allow entr(y/ies)",
        report.files_scanned,
        report.findings.len(),
        report.allowlisted,
        report.unused_allow_entries.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
