//! Structured diagnostics: stable `XA###` codes with severity, scope,
//! and both JSON and human-readable rendering.
//!
//! Diagnostics are pure data — the analyzer emits them in a
//! deterministic order (spec order, then aggregate checks), so the
//! JSON form is byte-stable and can be pinned as a golden fixture.

use std::fmt;

use serde::json::JsonValue;
use serde::Serialize;

use xrbench_models::ModelId;

/// How bad a diagnostic is.
///
/// *Errors* are statically-proven infeasibility: no scheduler on the
/// analyzed hardware can avoid dropping frames. *Warnings* are
/// conditions that cap the achievable score (e.g. a deadline no
/// scheduler can meet — the run still completes, at real-time score
/// ~0 for that model). *Infos* are structural observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Statically infeasible; `xrbench analyze` exits non-zero.
    Error,
    /// Feasible but score-capping or suspicious.
    Warning,
    /// Structural observation.
    Info,
}

impl Severity {
    /// The lowercase wire name (`error` / `warning` / `info`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding, tagged with a stable `XA###` code.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`"XA001"` …) — see the crate docs for
    /// the full table.
    pub code: &'static str,
    /// Error / warning / info.
    pub severity: Severity,
    /// What the finding is about (e.g. ``scenario `VR Gaming` `` or
    /// ``group `vr` · session `party` ``).
    pub scope: String,
    /// The model the finding pins, if model-scoped.
    pub model: Option<ModelId>,
    /// Human-readable explanation with the numbers that triggered it.
    pub message: String,
}

impl Diagnostic {
    /// Renders the one-line human form:
    /// `error[XA001] scenario `X` · HT: message`.
    pub fn render(&self) -> String {
        match self.model {
            Some(m) => format!(
                "{}[{}] {} · {}: {}",
                self.severity, self.code, self.scope, m, self.message
            ),
            None => format!(
                "{}[{}] {}: {}",
                self.severity, self.code, self.scope, self.message
            ),
        }
    }
}

impl Serialize for Diagnostic {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("code".to_string(), JsonValue::Str(self.code.to_string())),
            (
                "severity".to_string(),
                JsonValue::Str(self.severity.as_str().to_string()),
            ),
            ("scope".to_string(), JsonValue::Str(self.scope.clone())),
            (
                "model".to_string(),
                match self.model {
                    Some(m) => JsonValue::Str(m.abbrev().to_string()),
                    None => JsonValue::Null,
                },
            ),
            ("message".to_string(), JsonValue::Str(self.message.clone())),
        ])
    }
}

/// The result of one static analysis: the analyzed subject, the
/// hardware it was analyzed against, and the findings in emission
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// What was analyzed (``scenario `VR Gaming` ``, ``suite run
    /// document``, …).
    pub subject: String,
    /// The cost provider's label.
    pub system: String,
    /// The findings, in deterministic emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether any finding is an error (the spec is statically
    /// infeasible on this hardware).
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The error-severity findings, in order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Stable pretty-printed JSON (the golden-fixture form).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis serialization cannot fail")
    }

    /// The multi-line human rendering: header, one line per finding,
    /// and a summary line.
    pub fn to_text(&self) -> String {
        let mut out = format!("analysis of {} on {}\n", self.subject, self.system);
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.error_count(),
            self.warning_count(),
            self.info_count()
        ));
        out
    }
}

impl Serialize for Analysis {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("subject".to_string(), JsonValue::Str(self.subject.clone())),
            ("system".to_string(), JsonValue::Str(self.system.clone())),
            (
                "summary".to_string(),
                JsonValue::Object(vec![
                    (
                        "errors".to_string(),
                        JsonValue::Num(self.error_count() as f64),
                    ),
                    (
                        "warnings".to_string(),
                        JsonValue::Num(self.warning_count() as f64),
                    ),
                    (
                        "infos".to_string(),
                        JsonValue::Num(self.info_count() as f64),
                    ),
                ]),
            ),
            (
                "diagnostics".to_string(),
                JsonValue::Array(self.diagnostics.iter().map(|d| d.to_json_value()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, severity: Severity, model: Option<ModelId>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            scope: "scenario `T`".to_string(),
            model,
            message: "m".to_string(),
        }
    }

    #[test]
    fn counts_and_errors_filter_by_severity() {
        let a = Analysis {
            subject: "s".into(),
            system: "sys".into(),
            diagnostics: vec![
                diag("XA001", Severity::Error, Some(ModelId::HandTracking)),
                diag("XA004", Severity::Warning, None),
                diag("XA013", Severity::Info, None),
                diag("XA002", Severity::Error, None),
            ],
        };
        assert_eq!(a.error_count(), 2);
        assert_eq!(a.warning_count(), 1);
        assert_eq!(a.info_count(), 1);
        assert!(a.has_errors());
        assert_eq!(a.errors().count(), 2);
    }

    #[test]
    fn render_includes_model_when_present() {
        let d = diag("XA001", Severity::Error, Some(ModelId::PlaneDetection));
        assert!(d.render().starts_with("error[XA001] scenario `T` · PD:"));
        let d = diag("XA002", Severity::Error, None);
        assert!(d.render().starts_with("error[XA002] scenario `T`:"));
    }

    #[test]
    fn json_is_stable_and_parsable() {
        let a = Analysis {
            subject: "s".into(),
            system: "sys".into(),
            diagnostics: vec![diag("XA001", Severity::Error, Some(ModelId::HandTracking))],
        };
        let json = a.to_json();
        assert_eq!(json, a.to_json(), "serialization is deterministic");
        let v = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v.get("subject").as_str(), Some("s"));
        assert_eq!(v.get("summary").get("errors").as_f64(), Some(1.0));
    }

    #[test]
    fn text_has_header_and_summary() {
        let a = Analysis {
            subject: "s".into(),
            system: "sys".into(),
            diagnostics: vec![],
        };
        let text = a.to_text();
        assert!(text.starts_with("analysis of s on sys\n"));
        assert!(text.ends_with("0 error(s), 0 warning(s), 0 info(s)\n"));
    }
}
