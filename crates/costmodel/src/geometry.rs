//! Fixed PE-array geometries.
//!
//! A *fixed-dataflow accelerator* does not retile its array per layer:
//! the spatial dimensions each loop maps to are baked into the
//! hardware (NVDLA's atomic-K × atomic-C grid, Eyeriss's row grid,
//! an output-stationary pixel grid). Layers whose dimensions don't
//! fill the fixed tiles simply leave PEs idle — the under-utilization
//! that makes MTMM workloads hard to serve with one specialized
//! design (paper §1, "the heterogeneous workload makes it difficult
//! to employ traditional DNN specialization").
//!
//! [`crate::spatial_map`] remains available as the *adaptive* mapping
//! strategy (a per-layer reconfigurable accelerator), selectable via
//! [`MappingStrategy::Adaptive`] for ablation studies.

/// How a (sub-)accelerator maps loop dimensions onto its PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingStrategy {
    /// Fixed array geometry per dataflow (the default; models real
    /// fixed-dataflow accelerators like those in Table 5).
    #[default]
    Fixed,
    /// Per-layer optimal tiling search (models a fully reconfigurable
    /// spatial array; upper bound used in ablations).
    Adaptive,
}

/// The fixed weight-stationary (NVDLA-style) grid: `t_k × t_c` with
/// the input-channel dimension held at 128 lanes.
pub fn ws_grid(pes: u64) -> (u64, u64) {
    let t_c = 128.min(pes.max(1));
    let t_k = (pes / t_c).max(1);
    (t_k, t_c)
}

/// The fixed output-stationary grid: `t_y × t_x` output positions,
/// each backed by a 16-way adder tree; the column dimension is held
/// at 16 positions.
pub fn os_grid(pes: u64) -> (u64, u64) {
    let positions = (pes / 16).max(1);
    let t_x = 16.min(positions);
    let t_y = (positions / t_x).max(1);
    (t_y, t_x)
}

/// The fixed row-stationary (Eyeriss-style) grid: `t_k × t_y × t_r`
/// with 16 output rows and 4 kernel rows.
pub fn rs_grid(pes: u64) -> (u64, u64, u64) {
    let t_r = 4.min(pes.max(1));
    let t_y = 16.min((pes / t_r).max(1));
    let t_k = (pes / (t_r * t_y)).max(1);
    (t_k, t_y, t_r)
}

/// Temporal steps to cover `dims` with fixed `tiles`:
/// `∏ ceil(dim_i / tile_i)`.
pub(crate) fn steps(dims: &[u64], tiles: &[u64]) -> u64 {
    dims.iter()
        .zip(tiles)
        .map(|(&d, &t)| d.div_ceil(t.max(1)))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_grid_paper_platforms() {
        assert_eq!(ws_grid(4096), (32, 128));
        assert_eq!(ws_grid(8192), (64, 128));
        assert_eq!(ws_grid(2048), (16, 128));
        assert_eq!(ws_grid(1024), (8, 128));
    }

    #[test]
    fn os_grid_paper_platforms() {
        assert_eq!(os_grid(4096), (16, 16)); // 256 positions
        assert_eq!(os_grid(8192), (32, 16)); // 512 positions
        assert_eq!(os_grid(1024), (4, 16));
    }

    #[test]
    fn rs_grid_paper_platforms() {
        assert_eq!(rs_grid(4096), (64, 16, 4));
        assert_eq!(rs_grid(8192), (128, 16, 4));
        assert_eq!(rs_grid(1024), (16, 16, 4));
    }

    #[test]
    fn grids_never_exceed_pe_budget() {
        for pes in [1u64, 16, 100, 1024, 2048, 4096, 6144, 8192] {
            let (k, c) = ws_grid(pes);
            assert!(k * c <= pes.max(128), "ws {pes}");
            let (y, x) = os_grid(pes);
            assert!(y * x * 16 <= pes.max(256), "os {pes}");
            let (k, y, r) = rs_grid(pes);
            assert!(k * y * r <= pes, "rs {pes}");
        }
    }

    #[test]
    fn steps_cover_dimensions() {
        assert_eq!(steps(&[256, 256], &[32, 128]), 8 * 2);
        assert_eq!(steps(&[16, 1], &[32, 128]), 1);
        assert_eq!(steps(&[100], &[16]), 7);
    }

    #[test]
    fn degenerate_pe_counts_survive() {
        assert_eq!(ws_grid(1), (1, 1));
        assert_eq!(os_grid(1), (1, 1));
        assert_eq!(rs_grid(1), (1, 1, 1));
    }
}
