//! Hardware configuration for a (sub-)accelerator.

use crate::error::CostModelError;
use crate::geometry::MappingStrategy;

/// Per-operation energy parameters, in joules.
///
/// The defaults are calibrated so that the per-inference energies of
/// the XRBench model zoo land in the range the paper's energy scores
/// imply (tens to hundreds of millijoules against the paper's default
/// `Emax = 1500 mJ`). The *ratios* between the parameters follow the
/// usual memory-hierarchy rules of thumb (DRAM ≫ SRAM ≫ MAC), so the
/// dataflow-dependent reuse differences remain the first-order effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per 8-bit MAC, in joules.
    pub mac_j: f64,
    /// Energy per byte read/written from the shared on-chip SRAM.
    pub sram_byte_j: f64,
    /// Energy per byte transferred to/from off-chip memory.
    pub dram_byte_j: f64,
    /// Energy per vector (non-MAC) operation.
    pub vector_op_j: f64,
    /// Energy per operand delivery inside the PE array (register /
    /// inter-PE hop / adder-tree input). Multiplied by reuse-discounted
    /// access counts, this is what makes dataflow choice matter for
    /// energy: a dataflow that cannot reuse an operand pays one
    /// delivery per MAC for it.
    pub delivery_access_j: f64,
}

impl EnergyParams {
    /// Calibrated defaults (see type-level docs).
    pub fn calibrated() -> Self {
        Self {
            mac_j: 10e-12,
            sram_byte_j: 4e-12,
            dram_byte_j: 250e-12,
            vector_op_j: 4e-12,
            delivery_access_j: 2e-12,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// The hardware parameters of one accelerator (or sub-accelerator)
/// instance.
///
/// Paper defaults (§4.1): 4K/8K PEs, 256 GB/s on-chip bandwidth, 8 MiB
/// shared on-chip memory, 1 GHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareConfig {
    /// Number of processing elements (MAC units).
    pub pes: u64,
    /// On-chip NoC bandwidth in bytes per second.
    pub noc_bw_bytes_per_s: f64,
    /// Off-chip (DRAM) bandwidth in bytes per second. The paper lists
    /// off-chip bandwidth as a system parameter; we default it to one
    /// quarter of the NoC bandwidth.
    pub offchip_bw_bytes_per_s: f64,
    /// Shared on-chip SRAM capacity in bytes.
    pub sram_bytes: u64,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Width of the vector unit handling non-MAC ops, in lanes.
    pub vector_lanes: u64,
    /// Fixed per-layer launch overhead in cycles (descriptor fetch,
    /// pipeline fill/drain).
    pub layer_overhead_cycles: u64,
    /// How loop dimensions map onto the PE array (fixed geometry by
    /// default; adaptive per-layer tiling for ablations).
    pub mapping: MappingStrategy,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl HardwareConfig {
    /// The paper's default platform with the given PE count
    /// (256 GB/s NoC, 8 MiB SRAM, 1 GHz).
    pub fn with_pes(pes: u64) -> Self {
        Self {
            pes,
            noc_bw_bytes_per_s: 256e9,
            offchip_bw_bytes_per_s: 64e9,
            sram_bytes: 8 * 1024 * 1024,
            clock_hz: 1e9,
            vector_lanes: 256,
            layer_overhead_cycles: 500,
            mapping: MappingStrategy::default(),
            energy: EnergyParams::calibrated(),
        }
    }

    /// Returns a copy scaled to a fraction of the PEs, bandwidth, and
    /// SRAM — a fully private partition of the chip. The clock is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn partition(&self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "partition fraction must be in (0, 1], got {fraction}"
        );
        Self {
            noc_bw_bytes_per_s: self.noc_bw_bytes_per_s * fraction,
            offchip_bw_bytes_per_s: self.offchip_bw_bytes_per_s * fraction,
            ..self.partition_shared_bw(fraction)
        }
    }

    /// Returns a copy with a fraction of the PEs, SRAM, and vector
    /// lanes but the **full** NoC and off-chip bandwidth — the
    /// Herald-style organization where sub-accelerators share the
    /// chip's memory system. This is what [`partition`] of the paper's
    /// Table 5 systems uses: partitioning trades array size for
    /// concurrency, not for memory bandwidth.
    ///
    /// [`partition`]: HardwareConfig::partition
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn partition_shared_bw(&self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "partition fraction must be in (0, 1], got {fraction}"
        );
        Self {
            pes: ((self.pes as f64) * fraction).round().max(1.0) as u64,
            sram_bytes: ((self.sram_bytes as f64) * fraction).round().max(1.0) as u64,
            vector_lanes: ((self.vector_lanes as f64) * fraction).round().max(1.0) as u64,
            ..*self
        }
    }

    /// Validates the configuration, returning an error describing the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns [`CostModelError::InvalidHardware`] if any parameter is
    /// non-positive.
    pub fn validate(&self) -> Result<(), CostModelError> {
        if self.pes == 0 {
            return Err(CostModelError::InvalidHardware("pes must be > 0".into()));
        }
        if self.noc_bw_bytes_per_s <= 0.0 {
            return Err(CostModelError::InvalidHardware(
                "noc bandwidth must be > 0".into(),
            ));
        }
        if self.offchip_bw_bytes_per_s <= 0.0 {
            return Err(CostModelError::InvalidHardware(
                "off-chip bandwidth must be > 0".into(),
            ));
        }
        if self.sram_bytes == 0 {
            return Err(CostModelError::InvalidHardware(
                "sram capacity must be > 0".into(),
            ));
        }
        if self.clock_hz <= 0.0 {
            return Err(CostModelError::InvalidHardware("clock must be > 0".into()));
        }
        if self.vector_lanes == 0 {
            return Err(CostModelError::InvalidHardware(
                "vector lanes must be > 0".into(),
            ));
        }
        Ok(())
    }

    /// NoC bandwidth in bytes per clock cycle.
    pub fn noc_bytes_per_cycle(&self) -> f64 {
        self.noc_bw_bytes_per_s / self.clock_hz
    }

    /// Off-chip bandwidth in bytes per clock cycle.
    pub fn offchip_bytes_per_cycle(&self) -> f64 {
        self.offchip_bw_bytes_per_s / self.clock_hz
    }
}

impl Default for HardwareConfig {
    /// The paper's 4K-PE default platform.
    fn default() -> Self {
        Self::with_pes(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let hw = HardwareConfig::default();
        assert_eq!(hw.pes, 4096);
        assert_eq!(hw.sram_bytes, 8 * 1024 * 1024);
        assert!((hw.noc_bw_bytes_per_s - 256e9).abs() < 1.0);
        assert!((hw.clock_hz - 1e9).abs() < 1.0);
        hw.validate().unwrap();
    }

    #[test]
    fn partition_halves_resources() {
        let hw = HardwareConfig::with_pes(8192);
        let half = hw.partition(0.5);
        assert_eq!(half.pes, 4096);
        assert_eq!(half.sram_bytes, 4 * 1024 * 1024);
        assert!((half.noc_bw_bytes_per_s - 128e9).abs() < 1.0);
        // Clock is not partitioned.
        assert!((half.clock_hz - hw.clock_hz).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn partition_rejects_zero_fraction() {
        let _ = HardwareConfig::default().partition(0.0);
    }

    #[test]
    fn validate_rejects_zero_pes() {
        let hw = HardwareConfig {
            pes: 0,
            ..HardwareConfig::default()
        };
        assert!(hw.validate().is_err());
    }

    #[test]
    fn bandwidth_per_cycle_is_consistent() {
        let hw = HardwareConfig::default();
        // 256 GB/s at 1 GHz = 256 B/cycle.
        assert!((hw.noc_bytes_per_cycle() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn energy_hierarchy_ordering_holds() {
        let e = EnergyParams::calibrated();
        assert!(e.dram_byte_j > e.sram_byte_j);
        assert!(e.sram_byte_j > 0.0);
        assert!(e.mac_j > 0.0);
    }
}
