//! Accelerator dataflow styles.

use std::fmt;
use std::str::FromStr;

use crate::error::CostModelError;

/// A fixed accelerator dataflow (loop-ordering / spatial-mapping style).
///
/// These mirror the three styles evaluated in the paper's Table 5:
///
/// * [`Dataflow::WeightStationary`] — NVDLA-inspired; parallelizes
///   output channels × input channels. Weights stay pinned in PEs and
///   are reused across all output pixels.
/// * [`Dataflow::OutputStationary`] — hand-optimized; parallelizes
///   output rows × columns with a 16-way adder tree reducing
///   input-channel partial sums. Partial sums never leave the PE.
/// * [`Dataflow::RowStationary`] — Eyeriss-inspired; parallelizes
///   output channels, output rows, and kernel rows, balancing reuse of
///   all three operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataflow {
    /// Weight-stationary (NVDLA style).
    WeightStationary,
    /// Output-stationary with a 16-way input-channel adder tree.
    OutputStationary,
    /// Row-stationary (Eyeriss style).
    RowStationary,
}

impl Dataflow {
    /// All dataflows, in the paper's (WS, OS, RS) order.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::RowStationary,
    ];

    /// The conventional two-letter abbreviation ("WS", "OS", "RS").
    pub fn abbrev(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::RowStationary => "RS",
        }
    }

    /// The reduction-tree width used by the OS dataflow; 1 for others.
    pub(crate) fn adder_tree_width(&self) -> u64 {
        match self {
            Dataflow::OutputStationary => 16,
            _ => 1,
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl FromStr for Dataflow {
    type Err = CostModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "WS" => Ok(Dataflow::WeightStationary),
            "OS" => Ok(Dataflow::OutputStationary),
            "RS" => Ok(Dataflow::RowStationary),
            other => Err(CostModelError::UnknownDataflow(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrev_round_trips_through_from_str() {
        for df in Dataflow::ALL {
            let parsed: Dataflow = df.abbrev().parse().unwrap();
            assert_eq!(parsed, df);
        }
    }

    #[test]
    fn from_str_is_case_insensitive() {
        assert_eq!(
            "ws".parse::<Dataflow>().unwrap(),
            Dataflow::WeightStationary
        );
    }

    #[test]
    fn unknown_dataflow_is_an_error() {
        assert!("XY".parse::<Dataflow>().is_err());
    }

    #[test]
    fn only_os_has_adder_tree() {
        assert_eq!(Dataflow::OutputStationary.adder_tree_width(), 16);
        assert_eq!(Dataflow::WeightStationary.adder_tree_width(), 1);
        assert_eq!(Dataflow::RowStationary.adder_tree_width(), 1);
    }
}
