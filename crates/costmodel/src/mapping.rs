//! Spatial mapping search: how a dataflow's parallel loop dimensions
//! are tiled onto a finite PE array.

/// The result of mapping a set of loop dimensions onto `pes` PEs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialMapping {
    /// Chosen tile size per mapped dimension (same order as the input).
    pub tiles: Vec<u64>,
    /// Number of temporal steps over the mapped dimensions:
    /// `∏ ceil(dim_i / tile_i)`.
    pub steps: u64,
    /// PEs actually occupied by a full tile: `∏ tile_i`.
    pub pes_used: u64,
    /// Average utilization of the occupied PEs in `[0, 1]`, accounting
    /// for edge (remainder) tiles.
    pub utilization: f64,
}

/// Searches for the tiling of `dims` onto `pes` PEs that minimizes the
/// number of temporal steps (ties broken toward higher utilization).
///
/// Candidate tile sizes per dimension are powers of two plus the
/// dimension itself, which keeps the search cheap (< ~20³ combinations)
/// while covering the mappings real accelerators use.
///
/// # Panics
///
/// Panics if `dims` is empty, any dimension is zero, or `pes == 0`.
pub fn spatial_map(dims: &[u64], pes: u64) -> SpatialMapping {
    assert!(!dims.is_empty(), "at least one dimension required");
    assert!(pes > 0, "pes must be > 0");
    assert!(dims.iter().all(|&d| d > 0), "dimensions must be non-zero");

    let candidates: Vec<Vec<u64>> = dims
        .iter()
        .map(|&d| {
            let mut c: Vec<u64> = std::iter::successors(Some(1u64), |&v| {
                let next = v * 2;
                (next <= d && next <= pes).then_some(next)
            })
            .collect();
            if d <= pes && !c.contains(&d) {
                c.push(d);
            }
            c
        })
        .collect();

    let mut best: Option<SpatialMapping> = None;
    let mut stack = vec![0usize; dims.len()];
    // Iterative cartesian product over candidate tiles.
    'outer: loop {
        let tiles: Vec<u64> = stack.iter().zip(&candidates).map(|(&i, c)| c[i]).collect();
        let pes_used: u64 = tiles.iter().product();
        if pes_used <= pes {
            let steps: u64 = dims
                .iter()
                .zip(&tiles)
                .map(|(&d, &t)| d.div_ceil(t))
                .product();
            let utilization: f64 = dims
                .iter()
                .zip(&tiles)
                .map(|(&d, &t)| d as f64 / (t * d.div_ceil(t)) as f64)
                .product();
            let better = match &best {
                None => true,
                Some(b) => steps < b.steps || (steps == b.steps && utilization > b.utilization),
            };
            if better {
                best = Some(SpatialMapping {
                    tiles,
                    steps,
                    pes_used,
                    utilization,
                });
            }
        }
        // Advance the odometer.
        for i in 0..stack.len() {
            stack[i] += 1;
            if stack[i] < candidates[i].len() {
                continue 'outer;
            }
            stack[i] = 0;
        }
        break;
    }
    best.expect("tile=1 per dim is always feasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_entirely_when_small() {
        let m = spatial_map(&[8, 8], 4096);
        assert_eq!(m.steps, 1);
        assert_eq!(m.pes_used, 64);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_dim_larger_than_array() {
        let m = spatial_map(&[10000], 4096);
        // Best pow2 tile is 4096 -> ceil(10000/4096) = 3 steps.
        assert_eq!(m.steps, 3);
        assert!(m.pes_used <= 4096);
    }

    #[test]
    fn steps_never_increase_with_more_pes() {
        let dims = [96, 200, 7];
        let mut prev = u64::MAX;
        for pes in [64, 256, 1024, 4096, 8192] {
            let m = spatial_map(&dims, pes);
            assert!(m.steps <= prev, "steps grew when PEs grew");
            prev = m.steps;
        }
    }

    #[test]
    fn steps_at_least_work_over_pes() {
        let dims = [128u64, 128];
        let total: u64 = dims.iter().product();
        let m = spatial_map(&dims, 1000);
        assert!(m.steps as u128 * 1000u128 >= total as u128);
    }

    #[test]
    fn utilization_in_unit_interval() {
        for dims in [[3u64, 7], [100, 100], [1, 1]] {
            let m = spatial_map(&dims, 100);
            assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        }
    }

    #[test]
    fn exact_dim_tile_considered() {
        // dim=48 on 48 PEs: tile 48 (non-pow2) gives 1 step.
        let m = spatial_map(&[48], 48);
        assert_eq!(m.steps, 1);
        assert_eq!(m.tiles, vec![48]);
    }

    #[test]
    #[should_panic(expected = "pes")]
    fn zero_pes_panics() {
        let _ = spatial_map(&[4], 0);
    }
}
