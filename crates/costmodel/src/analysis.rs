//! The analytical latency/energy evaluation.
//!
//! For each layer the model computes:
//!
//! 1. **Compute cycles** — a dataflow-specific spatial mapping of the
//!    parallel loop dimensions onto the PE array (see
//!    [`crate::spatial_map`]), times the remaining temporal loop trip
//!    count.
//! 2. **Memory cycles** — on-chip (NoC) streaming cycles for buffer
//!    accesses and off-chip cycles for DRAM traffic (with refetch when
//!    the layer's working set exceeds the SRAM).
//! 3. **Latency** — `overhead + max(compute, noc, dram)` (a roofline).
//! 4. **Energy** — MAC + vector + SRAM-access + DRAM-byte energy, where
//!    SRAM traffic is the operand streaming volume after the reuse the
//!    dataflow exploits (weights pinned under WS, outputs resident
//!    under OS, balanced under RS); partial-sum accumulation happens in
//!    PE-local storage and is folded into the per-MAC energy.

use crate::dataflow::Dataflow;
use crate::geometry::{self, MappingStrategy};
use crate::hw::HardwareConfig;
use crate::layer::{Layer, LayerKind};
use crate::mapping::spatial_map;

/// The evaluated cost of one layer on one (sub-)accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Layer name (copied from the input for reporting).
    pub layer_name: String,
    /// MAC operations performed.
    pub macs: u64,
    /// Cycles spent on compute (including array under-utilization).
    pub compute_cycles: u64,
    /// Cycles to stream buffer traffic over the NoC.
    pub noc_cycles: u64,
    /// Cycles to move DRAM traffic over the off-chip interface.
    pub dram_cycles: u64,
    /// Total latency cycles: `overhead + max(compute, noc, dram)`.
    pub latency_cycles: u64,
    /// Effective MAC-array utilization in `[0, 1]` (0 for layers with
    /// no MACs).
    pub utilization: f64,
    /// Clock frequency used (Hz), so seconds can be derived.
    pub clock_hz: f64,
    /// Energy spent in MACs (J).
    pub mac_energy_j: f64,
    /// Energy spent in on-chip buffer accesses (J).
    pub sram_energy_j: f64,
    /// Energy spent in off-chip transfers (J).
    pub dram_energy_j: f64,
    /// Energy spent in vector (non-MAC) ops (J).
    pub vector_energy_j: f64,
    /// Energy spent delivering operands inside the PE array
    /// (reuse-discounted; the dataflow-sensitive part of energy).
    pub delivery_energy_j: f64,
}

impl LayerCost {
    /// Latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_cycles as f64 / self.clock_hz
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.mac_energy_j
            + self.sram_energy_j
            + self.dram_energy_j
            + self.vector_energy_j
            + self.delivery_energy_j
    }
}

/// The aggregate cost of a sequence of layers (one model inference).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCost {
    /// Per-layer breakdown, in execution order.
    pub layers: Vec<LayerCost>,
}

impl ModelCost {
    /// Total latency in seconds (layers run back-to-back on one
    /// sub-accelerator).
    pub fn latency_s(&self) -> f64 {
        self.layers.iter().map(LayerCost::latency_s).sum()
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.layers.iter().map(LayerCost::energy_j).sum()
    }

    /// Total MACs across layers.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// MAC-weighted average array utilization in `[0, 1]`.
    pub fn avg_utilization(&self) -> f64 {
        let total: u64 = self.macs();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.macs as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// On-chip (NoC) streaming traffic in bytes, by operand. Partial sums
/// accumulate in PE-local registers/accumulators (their energy is
/// folded into the per-MAC energy), so only activation, weight, and
/// final-output traffic crosses the NoC.
struct BufferTraffic {
    act_bytes: f64,
    weight_bytes: f64,
    out_bytes: f64,
    /// Reuse-discounted in-array operand deliveries (see
    /// [`crate::EnergyParams::delivery_access_j`]).
    delivery_accesses: f64,
}

impl BufferTraffic {
    fn total(&self) -> f64 {
        self.act_bytes + self.weight_bytes + self.out_bytes
    }
}

fn compute_cycles_and_traffic(
    layer: &Layer,
    dataflow: Dataflow,
    hw: &HardwareConfig,
) -> (u64, f64, BufferTraffic) {
    let d = layer.dims();
    let macs = layer.macs() as f64;
    let inb = layer.input_bytes() as f64;
    let wb = layer.weight_bytes() as f64;
    let outb = layer.output_bytes() as f64;
    // Depthwise convolutions have no cross-channel reduction.
    let c_eff = if layer.kind() == LayerKind::DwConv2d {
        1
    } else {
        d.c
    };

    if !layer.kind().is_compute() {
        // Movement layer: vector-lane work, streaming in and out once.
        let cycles = layer.vector_ops().div_ceil(hw.vector_lanes);
        let traffic = BufferTraffic {
            act_bytes: inb,
            weight_bytes: 0.0,
            out_bytes: outb,
            delivery_accesses: 0.0,
        };
        return (cycles, 0.0, traffic);
    }

    match dataflow {
        Dataflow::WeightStationary => {
            // Spatial: K x C. Temporal: Y * X * R * S. Weights stay
            // pinned; activations are re-streamed once per K-tile
            // group (each group needs the full input).
            let (t_k, t_c) = tiles2(hw, &[d.k, c_eff], geometry::ws_grid(hw.pes));
            let spatial_steps = geometry::steps(&[d.k, c_eff], &[t_k, t_c]);
            let temporal = d.y * d.x * d.r * d.s;
            let cycles = spatial_steps.saturating_mul(temporal).max(1);
            let k_groups = d.k.div_ceil(t_k) as f64;
            let traffic = BufferTraffic {
                act_bytes: inb * k_groups,
                weight_bytes: wb,
                out_bytes: outb,
                // Acts broadcast across the K tile; partial sums
                // reduced across the C tile (1/MAC when c_eff = 1,
                // which is why depthwise layers hurt WS).
                delivery_accesses: macs / t_k.min(d.k) as f64 + macs / t_c.min(c_eff) as f64,
            };
            let util = utilization(macs, hw.pes, cycles);
            (cycles, util, traffic)
        }
        Dataflow::OutputStationary => {
            // Spatial: output pixels (Y x X), each position owning a
            // 16-way adder tree over input channels. Outputs stay
            // resident; each spatial tile streams the weights, so the
            // weight footprint is re-read once per spatial tile; input
            // patches are cached per position across output channels.
            let tree = dataflow.adder_tree_width();
            let positions = (hw.pes / tree).max(1);
            let (t_y, t_x) = match hw.mapping {
                MappingStrategy::Fixed => geometry::os_grid(hw.pes),
                MappingStrategy::Adaptive => {
                    let sm = spatial_map(&[d.y, d.x], positions);
                    (sm.tiles[0], sm.tiles[1])
                }
            };
            let spatial_steps = geometry::steps(&[d.y, d.x], &[t_y, t_x]);
            let temporal = d.k * d.r * d.s * c_eff.div_ceil(tree);
            let cycles = spatial_steps.saturating_mul(temporal).max(1);
            let traffic = BufferTraffic {
                act_bytes: inb,
                weight_bytes: wb * spatial_steps as f64,
                out_bytes: outb,
                // Weights broadcast to the occupied output positions;
                // acts delivered once per kernel window element
                // (sliding-window reuse) — costly for 1×1 / dense
                // layers, cheap for large kernels.
                delivery_accesses: macs / (t_y * t_x).min(d.y * d.x) as f64
                    + macs / (d.r * d.s) as f64,
            };
            let util = utilization(macs, hw.pes, cycles);
            (cycles, util, traffic)
        }
        Dataflow::RowStationary => {
            // Spatial: K x Y x R. Temporal: C * S * X. Weight rows are
            // re-streamed once per Y-tile group, activations once per
            // K-tile group.
            let (t_k, t_y, t_r) = match hw.mapping {
                MappingStrategy::Fixed => geometry::rs_grid(hw.pes),
                MappingStrategy::Adaptive => {
                    let sm = spatial_map(&[d.k, d.y, d.r], hw.pes);
                    (sm.tiles[0], sm.tiles[1], sm.tiles[2])
                }
            };
            let spatial_steps = geometry::steps(&[d.k, d.y, d.r], &[t_k, t_y, t_r]);
            let temporal = c_eff * d.s * d.x;
            let cycles = spatial_steps.saturating_mul(temporal).max(1);
            let k_groups = d.k.div_ceil(t_k) as f64;
            let y_groups = d.y.div_ceil(t_y) as f64;
            let traffic = BufferTraffic {
                act_bytes: inb * k_groups,
                weight_bytes: wb * y_groups,
                out_bytes: outb,
                // Acts reused across kernel rows and K; weight rows
                // reused across output rows; psums reduced along the
                // mapped kernel rows.
                delivery_accesses: macs / (t_r.min(d.r) * t_k.min(d.k)) as f64
                    + macs / t_y.min(d.y) as f64
                    + macs / t_r.min(d.r) as f64,
            };
            let util = utilization(macs, hw.pes, cycles);
            (cycles, util, traffic)
        }
    }
}

/// Resolves the (possibly adaptive) 2-D tiling for the WS dataflow.
fn tiles2(hw: &HardwareConfig, dims: &[u64; 2], fixed: (u64, u64)) -> (u64, u64) {
    match hw.mapping {
        MappingStrategy::Fixed => fixed,
        MappingStrategy::Adaptive => {
            let sm = spatial_map(dims, hw.pes);
            (sm.tiles[0], sm.tiles[1])
        }
    }
}

fn utilization(macs: f64, pes: u64, cycles: u64) -> f64 {
    if macs <= 0.0 {
        return 0.0;
    }
    (macs / (pes as f64 * cycles as f64)).min(1.0)
}

/// DRAM traffic in bytes, including refetch of the streamed operand
/// when the working set exceeds the SRAM capacity.
fn dram_traffic_bytes(layer: &Layer, dataflow: Dataflow, hw: &HardwareConfig) -> f64 {
    let inb = layer.input_bytes() as f64;
    let wb = layer.weight_bytes() as f64;
    let outb = layer.output_bytes() as f64;
    let working_set = inb + wb + outb;
    let refetch = (working_set / hw.sram_bytes as f64).ceil().max(1.0);
    if refetch <= 1.0 || !layer.kind().is_compute() {
        return inb + wb + outb;
    }
    // The operand the dataflow does NOT keep stationary is refetched.
    match dataflow {
        Dataflow::WeightStationary => inb * refetch + wb + outb,
        Dataflow::OutputStationary => inb + wb * refetch + outb,
        Dataflow::RowStationary => {
            // Balanced: split the refetch penalty across both inputs.
            let half = (refetch / 2.0).max(1.0);
            inb * half + wb * half + outb
        }
    }
}

/// Evaluates one layer on one (sub-)accelerator.
///
/// # Panics
///
/// Panics if `hw` fails validation (zero PEs, bandwidth, ...).
pub fn evaluate_layer(layer: &Layer, dataflow: Dataflow, hw: &HardwareConfig) -> LayerCost {
    hw.validate().expect("hardware config must be valid");

    let (compute_cycles, utilization, traffic) = compute_cycles_and_traffic(layer, dataflow, hw);
    let sram_bytes = traffic.total();
    let noc_cycles = (sram_bytes / hw.noc_bytes_per_cycle()).ceil() as u64;
    let dram_bytes = dram_traffic_bytes(layer, dataflow, hw);
    let dram_cycles = (dram_bytes / hw.offchip_bytes_per_cycle()).ceil() as u64;

    // Compute and memory phases serialize (limited double-buffering:
    // the on-chip and off-chip transfers overlap each other but not
    // the compute pipeline's fill/drain).
    let latency_cycles = hw.layer_overhead_cycles + compute_cycles + noc_cycles.max(dram_cycles);

    let e = hw.energy;
    LayerCost {
        layer_name: layer.name().to_string(),
        macs: layer.macs(),
        compute_cycles,
        noc_cycles,
        dram_cycles,
        latency_cycles,
        utilization,
        clock_hz: hw.clock_hz,
        mac_energy_j: layer.macs() as f64 * e.mac_j,
        sram_energy_j: sram_bytes * e.sram_byte_j,
        dram_energy_j: dram_bytes * e.dram_byte_j,
        vector_energy_j: layer.vector_ops() as f64 * e.vector_op_j,
        delivery_energy_j: traffic.delivery_accesses * e.delivery_access_j,
    }
}

/// Evaluates a sequence of layers (one model) run back-to-back.
pub fn evaluate_layers<'a, I>(layers: I, dataflow: Dataflow, hw: &HardwareConfig) -> ModelCost
where
    I: IntoIterator<Item = &'a Layer>,
{
    ModelCost {
        layers: layers
            .into_iter()
            .map(|l| evaluate_layer(l, dataflow, hw))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::TensorDims;

    fn hw4k() -> HardwareConfig {
        HardwareConfig::with_pes(4096)
    }

    #[test]
    fn latency_positive_for_all_dataflows() {
        let l = Layer::conv2d("c", 64, 64, 56, 56, 3, 3);
        for df in Dataflow::ALL {
            let c = evaluate_layer(&l, df, &hw4k());
            assert!(c.latency_cycles > 0, "{df}");
            assert!(c.energy_j() > 0.0, "{df}");
        }
    }

    #[test]
    fn compute_cycles_bounded_below_by_ideal() {
        // Cycles can never beat MACs / PEs.
        let l = Layer::conv2d("c", 128, 128, 28, 28, 3, 3);
        for df in Dataflow::ALL {
            let c = evaluate_layer(&l, df, &hw4k());
            let ideal = l.macs() / 4096;
            assert!(
                c.compute_cycles as u128 * Dataflow::ALL.len() as u128 > 0
                    && c.compute_cycles >= ideal / 16,
                "{df}: {} < ideal {}",
                c.compute_cycles,
                ideal
            );
        }
        // WS/RS must be >= exact ideal (no tree speedup).
        for df in [Dataflow::WeightStationary, Dataflow::RowStationary] {
            let c = evaluate_layer(&l, df, &hw4k());
            assert!(c.compute_cycles >= l.macs() / 4096, "{df}");
        }
    }

    #[test]
    fn more_pes_never_slower() {
        let l = Layer::conv2d("c", 96, 96, 60, 60, 3, 3);
        for df in Dataflow::ALL {
            let c4 = evaluate_layer(&l, df, &HardwareConfig::with_pes(4096));
            let c8 = evaluate_layer(&l, df, &HardwareConfig::with_pes(8192));
            assert!(
                c8.compute_cycles <= c4.compute_cycles,
                "{df}: 8K slower than 4K"
            );
        }
    }

    #[test]
    fn ws_beats_os_on_fully_connected() {
        // OS has only one output position for an FC layer, so its
        // adder tree is the only parallelism — WS should win big.
        let l = Layer::dense("fc", 1024, 2048);
        let ws = evaluate_layer(&l, Dataflow::WeightStationary, &hw4k());
        let os = evaluate_layer(&l, Dataflow::OutputStationary, &hw4k());
        assert!(ws.compute_cycles * 4 < os.compute_cycles);
    }

    #[test]
    fn os_competitive_on_spatially_large_shallow_conv() {
        // Huge output plane, few channels: OS maps pixels, WS starves.
        let l = Layer::conv2d("c", 8, 8, 256, 256, 3, 3);
        let ws = evaluate_layer(&l, Dataflow::WeightStationary, &hw4k());
        let os = evaluate_layer(&l, Dataflow::OutputStationary, &hw4k());
        assert!(os.compute_cycles < ws.compute_cycles);
    }

    #[test]
    fn depthwise_hurts_ws_more_than_os() {
        let l = Layer::dwconv2d("dw", 128, 56, 56, 3, 3);
        let ws = evaluate_layer(&l, Dataflow::WeightStationary, &hw4k());
        let os = evaluate_layer(&l, Dataflow::OutputStationary, &hw4k());
        // WS can only parallelize over the 128 channels.
        assert!(ws.utilization < 0.05);
        assert!(os.compute_cycles < ws.compute_cycles);
    }

    #[test]
    fn utilization_in_unit_range() {
        let l = Layer::conv2d("c", 3, 3, 7, 7, 3, 3);
        for df in Dataflow::ALL {
            let c = evaluate_layer(&l, df, &hw4k());
            assert!(c.utilization >= 0.0 && c.utilization <= 1.0);
        }
    }

    #[test]
    fn movement_layer_has_zero_macs_and_nonzero_latency() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool,
            TensorDims::new(64, 64, 56, 56, 2, 2),
            2,
        );
        let c = evaluate_layer(&l, Dataflow::WeightStationary, &hw4k());
        assert_eq!(c.macs, 0);
        assert!(c.latency_cycles > 0);
        assert!(c.mac_energy_j == 0.0);
        assert!(c.vector_energy_j > 0.0);
    }

    #[test]
    fn model_cost_sums_layers() {
        let layers = vec![
            Layer::conv2d("a", 32, 16, 56, 56, 3, 3),
            Layer::conv2d("b", 64, 32, 28, 28, 3, 3),
        ];
        let mc = evaluate_layers(&layers, Dataflow::RowStationary, &hw4k());
        assert_eq!(mc.layers.len(), 2);
        let sum: f64 = mc.layers.iter().map(LayerCost::latency_s).sum();
        assert!((mc.latency_s() - sum).abs() < 1e-15);
        assert_eq!(mc.macs(), layers[0].macs() + layers[1].macs());
    }

    #[test]
    fn energy_scales_with_work() {
        let small = Layer::conv2d("s", 16, 16, 28, 28, 3, 3);
        let big = Layer::conv2d("b", 64, 64, 56, 56, 3, 3);
        for df in Dataflow::ALL {
            let cs = evaluate_layer(&small, df, &hw4k());
            let cb = evaluate_layer(&big, df, &hw4k());
            assert!(cb.energy_j() > cs.energy_j(), "{df}");
        }
    }

    #[test]
    fn dram_refetch_kicks_in_for_oversized_working_set() {
        // Working set far beyond 8 MiB: a wide dense layer.
        let big = Layer::dense("fc", 8192, 8192);
        let hw = hw4k();
        let c = evaluate_layer(&big, Dataflow::WeightStationary, &hw);
        let compulsory = (big.input_bytes() + big.weight_bytes() + big.output_bytes()) as f64;
        let dram_bytes = c.dram_energy_j / hw.energy.dram_byte_j;
        assert!(dram_bytes >= compulsory);
    }

    #[test]
    fn latency_seconds_uses_clock() {
        let l = Layer::conv2d("c", 64, 64, 28, 28, 3, 3);
        let c = evaluate_layer(&l, Dataflow::WeightStationary, &hw4k());
        let expect = c.latency_cycles as f64 / 1e9;
        assert!((c.latency_s() - expect).abs() < 1e-15);
    }

    #[test]
    fn avg_utilization_weighted_by_macs() {
        let layers = vec![
            Layer::conv2d("a", 64, 64, 56, 56, 3, 3),
            Layer::new(
                "pool",
                LayerKind::Pool,
                TensorDims::new(64, 64, 28, 28, 2, 2),
                2,
            ),
        ];
        let mc = evaluate_layers(&layers, Dataflow::WeightStationary, &hw4k());
        // Pool has no MACs so the average equals the conv utilization.
        assert!((mc.avg_utilization() - mc.layers[0].utilization).abs() < 1e-12);
    }
}
