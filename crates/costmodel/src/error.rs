//! Error types for the cost model.

use std::error::Error;
use std::fmt;

/// Errors produced by the cost model crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostModelError {
    /// A dataflow abbreviation could not be parsed.
    UnknownDataflow(String),
    /// A hardware configuration parameter was invalid (zero PEs,
    /// zero bandwidth, ...). Carries a human-readable explanation.
    InvalidHardware(String),
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::UnknownDataflow(s) => {
                write!(
                    f,
                    "unknown dataflow abbreviation `{s}` (expected WS, OS, or RS)"
                )
            }
            CostModelError::InvalidHardware(s) => write!(f, "invalid hardware config: {s}"),
        }
    }
}

impl Error for CostModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = CostModelError::UnknownDataflow("ZZ".into());
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with("unknown"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostModelError>();
    }
}
