//! # xrbench-costmodel
//!
//! An analytical, dataflow-aware cost model for DNN accelerators, in the
//! spirit of MAESTRO (Kwon et al., MICRO 2019), which the original XRBench
//! artifact ("XRBench-MAESTRO") plugs in as its cost model.
//!
//! Given a [`Layer`] description, a [`Dataflow`] style, and a
//! [`HardwareConfig`], the model estimates:
//!
//! * **Latency** (in cycles and seconds) as a roofline
//!   `max(compute, memory)` bound, where compute cycles account for
//!   dataflow-specific spatial mapping (edge under-utilization included)
//!   and memory cycles account for NoC/off-chip bandwidth.
//! * **Energy** (in joules) as the sum of MAC energy, on-chip buffer
//!   (SRAM) access energy, and off-chip (DRAM) access energy, where the
//!   per-operand buffer access counts depend on the reuse the dataflow
//!   can exploit.
//!
//! The three dataflows mirror the paper's Table 5:
//!
//! * **WS** (weight-stationary, NVDLA-inspired): parallelizes output and
//!   input channels.
//! * **OS** (output-stationary): parallelizes output rows/columns with a
//!   16-way adder tree reducing input-channel partial sums.
//! * **RS** (row-stationary, Eyeriss-inspired): parallelizes output
//!   channels, output rows, and kernel rows.
//!
//! Absolute numbers are calibrated to land in the ranges the paper's
//! scores imply (hundreds of µJ to hundreds of mJ per inference); what
//! the benchmark experiments rely on is the *relative* ordering across
//! dataflows and PE counts, which this model preserves by construction.
//!
//! ## Example
//!
//! ```
//! use xrbench_costmodel::{Layer, Dataflow, HardwareConfig, evaluate_layer};
//!
//! let conv = Layer::conv2d("conv1", 64, 32, 56, 56, 3, 3);
//! let hw = HardwareConfig::with_pes(4096);
//! let cost = evaluate_layer(&conv, Dataflow::WeightStationary, &hw);
//! assert!(cost.latency_s() > 0.0);
//! assert!(cost.energy_j() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dataflow;
mod error;
pub mod geometry;
mod hw;
mod layer;
mod mapping;

pub use analysis::{evaluate_layer, evaluate_layers, LayerCost, ModelCost};
pub use dataflow::Dataflow;
pub use error::CostModelError;
pub use geometry::MappingStrategy;
pub use hw::{EnergyParams, HardwareConfig};
pub use layer::{Layer, LayerKind, TensorDims};
pub use mapping::{spatial_map, SpatialMapping};
