//! DNN layer descriptions.
//!
//! A [`Layer`] is a shape-level description of one operator: enough
//! information for an analytical cost model (MAC count, operand
//! footprints) without any weights or numerics.

use std::fmt;

/// Canonical tensor dimensions for a (convolution-like) layer.
///
/// The naming follows the MAESTRO/Timeloop convention:
///
/// * `k` — output channels (or output features for dense layers)
/// * `c` — input channels (the reduction dimension)
/// * `y`, `x` — **output** spatial rows and columns
/// * `r`, `s` — kernel rows and columns
///
/// A dense (fully-connected) layer is `k × c` with `y = x = r = s = 1`.
/// A matrix multiply `M×K · K×N` maps to `k = N`, `c = K`, `y = M`,
/// `x = r = s = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorDims {
    /// Output channels.
    pub k: u64,
    /// Input channels (reduction dimension).
    pub c: u64,
    /// Output rows.
    pub y: u64,
    /// Output columns.
    pub x: u64,
    /// Kernel rows.
    pub r: u64,
    /// Kernel columns.
    pub s: u64,
}

impl TensorDims {
    /// Creates dimensions, validating that all are non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(k: u64, c: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        assert!(
            k > 0 && c > 0 && y > 0 && x > 0 && r > 0 && s > 0,
            "all tensor dimensions must be non-zero (got k={k} c={c} y={y} x={x} r={r} s={s})"
        );
        Self { k, c, y, x, r, s }
    }

    /// Total number of output elements (`k * y * x`).
    pub fn output_elems(&self) -> u64 {
        self.k * self.y * self.x
    }
}

/// The operator class of a layer.
///
/// The class determines how MACs and operand footprints are derived
/// from the [`TensorDims`], and whether the layer is compute-heavy
/// (conv/dense/matmul) or movement-heavy (pool, upsample, normalization,
/// elementwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard 2-D convolution: `MACs = k·c·y·x·r·s`.
    Conv2d,
    /// Depthwise 2-D convolution (one filter per channel):
    /// `MACs = k·y·x·r·s` (`c` is ignored for MACs; it must equal `k`
    /// semantically, but we only use `k`).
    DwConv2d,
    /// Transposed (de-)convolution. Costed like a convolution over the
    /// *output* spatial extent: `MACs = k·c·y·x·r·s`.
    Deconv2d,
    /// Dense / fully-connected: `MACs = k·c·y·x` (with `y·x` acting as
    /// a batch of rows, normally 1).
    Dense,
    /// General matrix multiply (used for attention score / context
    /// matmuls): `MACs = k·c·y`.
    Matmul,
    /// Pooling (max/avg): no MACs, one comparison/add per input element.
    Pool,
    /// Nearest/bilinear upsampling: no MACs, pure data movement.
    Upsample,
    /// Layer normalization (or batch norm at inference): ~5 ops per
    /// element, modeled as elementwise vector work.
    LayerNorm,
    /// Softmax: exp + normalize per element, modeled as elementwise
    /// vector work.
    Softmax,
    /// Generic elementwise op (residual add, activation, concat copy).
    Elementwise,
}

impl LayerKind {
    /// Whether the layer has a weight operand.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d | LayerKind::DwConv2d | LayerKind::Deconv2d | LayerKind::Dense
        )
    }

    /// Whether the layer is dominated by MAC compute (as opposed to
    /// data movement).
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d
                | LayerKind::DwConv2d
                | LayerKind::Deconv2d
                | LayerKind::Dense
                | LayerKind::Matmul
        )
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "Conv2d",
            LayerKind::DwConv2d => "DwConv2d",
            LayerKind::Deconv2d => "Deconv2d",
            LayerKind::Dense => "Dense",
            LayerKind::Matmul => "Matmul",
            LayerKind::Pool => "Pool",
            LayerKind::Upsample => "Upsample",
            LayerKind::LayerNorm => "LayerNorm",
            LayerKind::Softmax => "Softmax",
            LayerKind::Elementwise => "Elementwise",
        };
        f.write_str(s)
    }
}

/// A single operator in a model graph, with a human-readable name.
///
/// All activation/weight data is assumed 8-bit quantized (1 byte per
/// element), matching the paper's methodology ("All the models are the
/// same across the hardware platforms (8bit-quantized ...)").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    dims: TensorDims,
    /// Spatial stride (affects the input footprint only).
    stride: u64,
}

impl Layer {
    /// Creates a layer from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or any dimension is zero.
    pub fn new(name: impl Into<String>, kind: LayerKind, dims: TensorDims, stride: u64) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        Self {
            name: name.into(),
            kind,
            dims,
            stride,
        }
    }

    /// Convenience constructor for a standard convolution with output
    /// spatial size `y × x`, `r × s` kernel, and stride 1.
    pub fn conv2d(name: impl Into<String>, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        Self::new(
            name,
            LayerKind::Conv2d,
            TensorDims::new(k, c, y, x, r, s),
            1,
        )
    }

    /// Convenience constructor for a strided convolution.
    #[allow(clippy::too_many_arguments)] // mirrors the conv dimension tuple
    pub fn conv2d_strided(
        name: impl Into<String>,
        k: u64,
        c: u64,
        y: u64,
        x: u64,
        r: u64,
        s: u64,
        stride: u64,
    ) -> Self {
        Self::new(
            name,
            LayerKind::Conv2d,
            TensorDims::new(k, c, y, x, r, s),
            stride,
        )
    }

    /// Convenience constructor for a depthwise convolution over `k`
    /// channels.
    pub fn dwconv2d(name: impl Into<String>, k: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        Self::new(
            name,
            LayerKind::DwConv2d,
            TensorDims::new(k, k, y, x, r, s),
            1,
        )
    }

    /// Convenience constructor for a dense (fully-connected) layer with
    /// `k` outputs and `c` inputs.
    pub fn dense(name: impl Into<String>, k: u64, c: u64) -> Self {
        Self::new(name, LayerKind::Dense, TensorDims::new(k, c, 1, 1, 1, 1), 1)
    }

    /// Convenience constructor for a matmul `(m × cdim) · (cdim × n)`.
    pub fn matmul(name: impl Into<String>, m: u64, cdim: u64, n: u64) -> Self {
        Self::new(
            name,
            LayerKind::Matmul,
            TensorDims::new(n, cdim, m, 1, 1, 1),
            1,
        )
    }

    /// The layer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's operator class.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// The layer's tensor dimensions.
    pub fn dims(&self) -> TensorDims {
        self.dims
    }

    /// The layer's spatial stride.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total multiply-accumulate operations for one inference of this
    /// layer. Movement-only layers report zero MACs; their cost comes
    /// from vector-lane work and data movement in the analysis.
    pub fn macs(&self) -> u64 {
        let d = &self.dims;
        match self.kind {
            LayerKind::Conv2d | LayerKind::Deconv2d => d.k * d.c * d.y * d.x * d.r * d.s,
            LayerKind::DwConv2d => d.k * d.y * d.x * d.r * d.s,
            LayerKind::Dense => d.k * d.c * d.y * d.x,
            LayerKind::Matmul => d.k * d.c * d.y,
            _ => 0,
        }
    }

    /// Number of non-MAC vector operations (pooling windows,
    /// normalization arithmetic, ...). Zero for compute layers.
    pub fn vector_ops(&self) -> u64 {
        let d = &self.dims;
        match self.kind {
            LayerKind::Pool => d.k * d.y * d.x * d.r * d.s,
            LayerKind::Upsample => d.k * d.y * d.x,
            // ~5 arithmetic ops per element (mean, var, scale, shift).
            LayerKind::LayerNorm => 5 * d.k * d.y * d.x,
            // exp + sum + div ≈ 8 ops per element with LUT-based exp.
            LayerKind::Softmax => 8 * d.k * d.y * d.x,
            LayerKind::Elementwise => d.k * d.y * d.x,
            _ => 0,
        }
    }

    /// Input activation footprint in bytes (8-bit elements), including
    /// the kernel halo.
    pub fn input_bytes(&self) -> u64 {
        let d = &self.dims;
        let in_y = d.y * self.stride + d.r.saturating_sub(1);
        let in_x = d.x * self.stride + d.s.saturating_sub(1);
        let in_c = match self.kind {
            LayerKind::DwConv2d => d.k,
            LayerKind::Matmul => d.c, // y rows × c cols, counted below
            _ => d.c,
        };
        match self.kind {
            LayerKind::Matmul => d.y * d.c,
            LayerKind::Dense => d.c * d.y * d.x,
            _ => in_c * in_y * in_x,
        }
    }

    /// Weight footprint in bytes (8-bit elements). Zero for layers
    /// without weights; a matmul's second operand is counted here so
    /// that traffic accounting covers both inputs.
    pub fn weight_bytes(&self) -> u64 {
        let d = &self.dims;
        match self.kind {
            LayerKind::Conv2d | LayerKind::Deconv2d => d.k * d.c * d.r * d.s,
            LayerKind::DwConv2d => d.k * d.r * d.s,
            LayerKind::Dense => d.k * d.c,
            LayerKind::Matmul => d.c * d.k,
            _ => 0,
        }
    }

    /// Output footprint in bytes (8-bit elements).
    pub fn output_bytes(&self) -> u64 {
        self.dims.output_elems()
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.dims;
        write!(
            f,
            "{} [{}] k={} c={} y={} x={} r={} s={}",
            self.name, self.kind, d.k, d.c, d.y, d.x, d.r, d.s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_match_hand_computation() {
        // 64 out-ch, 32 in-ch, 56x56 output, 3x3 kernel:
        // 64*32*56*56*9 = 57,802,752
        let l = Layer::conv2d("c", 64, 32, 56, 56, 3, 3);
        assert_eq!(l.macs(), 64 * 32 * 56 * 56 * 9);
    }

    #[test]
    fn dwconv_macs_exclude_cross_channel_reduction() {
        let l = Layer::dwconv2d("dw", 128, 28, 28, 3, 3);
        assert_eq!(l.macs(), 128 * 28 * 28 * 9);
    }

    #[test]
    fn dense_macs_are_k_times_c() {
        let l = Layer::dense("fc", 1000, 2048);
        assert_eq!(l.macs(), 1000 * 2048);
    }

    #[test]
    fn matmul_macs_are_m_k_n() {
        // (128 x 64) . (64 x 128) -> 128*64*128 MACs
        let l = Layer::matmul("qk", 128, 64, 128);
        assert_eq!(l.macs(), 128 * 64 * 128);
    }

    #[test]
    fn pool_has_no_macs_but_vector_ops() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool,
            TensorDims::new(64, 64, 28, 28, 2, 2),
            2,
        );
        assert_eq!(l.macs(), 0);
        assert_eq!(l.vector_ops(), 64 * 28 * 28 * 4);
    }

    #[test]
    fn weight_bytes_zero_for_weightless_layers() {
        let l = Layer::new(
            "up",
            LayerKind::Upsample,
            TensorDims::new(32, 32, 56, 56, 1, 1),
            1,
        );
        assert_eq!(l.weight_bytes(), 0);
    }

    #[test]
    fn input_bytes_include_halo() {
        let l = Layer::conv2d("c", 8, 4, 10, 10, 3, 3);
        // (10+2) x (10+2) x 4 channels
        assert_eq!(l.input_bytes(), 12 * 12 * 4);
    }

    #[test]
    fn strided_conv_input_footprint_scales_with_stride() {
        let s1 = Layer::conv2d("c", 8, 4, 10, 10, 3, 3);
        let s2 = Layer::conv2d_strided("c", 8, 4, 10, 10, 3, 3, 2);
        assert!(s2.input_bytes() > s1.input_bytes());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        let _ = TensorDims::new(0, 1, 1, 1, 1, 1);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let l = Layer::dense("head", 10, 512);
        let s = format!("{l}");
        assert!(s.contains("head"));
        assert!(s.contains("Dense"));
    }

    #[test]
    fn layer_kind_classification() {
        assert!(LayerKind::Conv2d.is_compute());
        assert!(LayerKind::Conv2d.has_weights());
        assert!(LayerKind::Matmul.is_compute());
        assert!(!LayerKind::Matmul.has_weights());
        assert!(!LayerKind::Softmax.is_compute());
    }
}
