//! Model quality (accuracy) requirements from Table 1.
//!
//! The paper sets each requirement at 95% of the model performance (or
//! 105% of the error) reported in the original papers, leaving headroom
//! for optimizations such as mixed precision.

use crate::id::ModelId;

/// Whether a quality metric is higher-is-better or lower-is-better
/// (Table 4: `QMType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityType {
    /// Higher is better (accuracy, mIoU, AP, AUC, δ1).
    HigherIsBetter,
    /// Lower is better (error metrics: WER, angular error, δ>1.25).
    LowerIsBetter,
}

/// A model quality goal `Q = (QMID, QMTarg, QMType)` (Definition 2),
/// extended with the measured value achieved by the deployed
/// (8-bit-quantized) model instance.
///
/// In the paper's evaluation all deployed models satisfy their quality
/// goals ("accuracy score = 1"), so the default `measured` equals the
/// target; systems that trade accuracy (e.g. aggressive quantization)
/// can override `measured` to see the accuracy score fall below 1.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityMetric {
    /// Metric descriptor, e.g. "mIoU" (`QMID`).
    pub metric: &'static str,
    /// Target value (`QMTarg`).
    pub target: f64,
    /// Higher- or lower-is-better (`QMType`).
    pub quality_type: QualityType,
    /// Measured value of the deployed model instance.
    pub measured: f64,
}

impl QualityMetric {
    /// Creates a goal whose measured value meets the target exactly.
    pub fn met(metric: &'static str, target: f64, quality_type: QualityType) -> Self {
        Self {
            metric,
            target,
            quality_type,
            measured: target,
        }
    }

    /// Returns a copy with a different measured value.
    pub fn with_measured(mut self, measured: f64) -> Self {
        self.measured = measured;
        self
    }
}

/// The Table 1 quality requirement for a unit model.
pub fn quality_for(model: ModelId) -> QualityMetric {
    use QualityType::*;
    match model {
        ModelId::HandTracking => QualityMetric::met("AUC PCK", 0.948, HigherIsBetter),
        ModelId::EyeSegmentation => QualityMetric::met("mIoU", 90.54, HigherIsBetter),
        ModelId::GazeEstimation => QualityMetric::met("Angular Error", 3.39, LowerIsBetter),
        ModelId::KeywordDetection => QualityMetric::met("Accuracy", 85.60, HigherIsBetter),
        ModelId::SpeechRecognition => QualityMetric::met("WER (others)", 8.79, LowerIsBetter),
        ModelId::SemanticSegmentation => QualityMetric::met("mIoU", 77.54, HigherIsBetter),
        ModelId::ObjectDetection => QualityMetric::met("boxAP", 21.84, HigherIsBetter),
        ModelId::ActionSegmentation => QualityMetric::met("Accuracy", 60.8, HigherIsBetter),
        ModelId::DepthEstimation => QualityMetric::met("delta>1.25", 22.9, LowerIsBetter),
        ModelId::DepthRefinement => QualityMetric::met("delta1", 85.5, HigherIsBetter),
        ModelId::PlaneDetection => QualityMetric::met("AP 0.6m", 0.37, HigherIsBetter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_quality_goals() {
        for m in ModelId::ALL {
            let q = quality_for(m);
            assert!(q.target > 0.0, "{m}");
            assert!(!q.metric.is_empty());
        }
    }

    #[test]
    fn table1_spot_checks() {
        let es = quality_for(ModelId::EyeSegmentation);
        assert_eq!(es.target, 90.54);
        assert_eq!(es.quality_type, QualityType::HigherIsBetter);

        let ge = quality_for(ModelId::GazeEstimation);
        assert_eq!(ge.target, 3.39);
        assert_eq!(ge.quality_type, QualityType::LowerIsBetter);

        let sr = quality_for(ModelId::SpeechRecognition);
        assert_eq!(sr.target, 8.79);
        assert_eq!(sr.quality_type, QualityType::LowerIsBetter);

        let pd = quality_for(ModelId::PlaneDetection);
        assert_eq!(pd.target, 0.37);
    }

    #[test]
    fn lower_is_better_metrics_are_the_error_metrics() {
        let lib: Vec<_> = ModelId::ALL
            .iter()
            .filter(|m| quality_for(**m).quality_type == QualityType::LowerIsBetter)
            .map(|m| m.abbrev())
            .collect();
        assert_eq!(lib, vec!["GE", "SR", "DE"]);
    }

    #[test]
    fn default_measured_meets_target() {
        for m in ModelId::ALL {
            let q = quality_for(m);
            assert_eq!(q.measured, q.target);
        }
    }

    #[test]
    fn with_measured_overrides() {
        let q = quality_for(ModelId::KeywordDetection).with_measured(80.0);
        assert_eq!(q.measured, 80.0);
        assert_eq!(q.target, 85.60);
    }
}
