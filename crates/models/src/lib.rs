//! # xrbench-models
//!
//! The XRBench unit-model zoo: shape-level (layer-graph) proxies of the
//! eleven unit models in the paper's Table 1 / Table 7, together with
//! their task metadata, dataset descriptors, input sources, and model
//! quality (accuracy) requirements.
//!
//! The proxies are **not** trained networks — they are architectural
//! descriptions with realistic layer shapes and MAC counts, which is
//! exactly what an analytical cost model consumes. Where the paper
//! down-scales dataset resolution for the wearable context (appendix A:
//! Stereo Hand Pose ×1/2, OpenEDS 2019/2020 ×1/4, KITTI ×1/4 for PD),
//! the proxies use the down-scaled input resolutions.
//!
//! ## Example
//!
//! ```
//! use xrbench_models::{ModelId, registry};
//!
//! let info = registry::model_info(ModelId::EyeSegmentation);
//! assert_eq!(info.quality.metric, "mIoU");
//! assert!(!info.layers.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod id;
mod quality;
pub mod registry;
pub mod zoo;

pub use id::{InputSource, ModelId, TaskCategory};
pub use quality::{quality_for, QualityMetric, QualityType};
pub use registry::{model_info, ModelInfo};
