//! The model registry: one [`ModelInfo`] record per unit model,
//! aggregating Table 1 (task, dataset, quality requirement), Table 7
//! (model instance, type, major operators), and the layer graph.

use xrbench_costmodel::Layer;

use crate::id::{InputSource, ModelId, TaskCategory};
use crate::quality::{quality_for, QualityMetric};
use crate::zoo;

/// Everything XRBench knows about one unit model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// The model identifier.
    pub id: ModelId,
    /// Full task name ("Hand Tracking", ...).
    pub task: &'static str,
    /// Task category (Table 1).
    pub category: TaskCategory,
    /// The reference model (Table 1 "Model" column).
    pub reference: &'static str,
    /// The deployed model instance (Table 7 "Model Instance").
    pub instance: &'static str,
    /// Model family (Table 7 "Model Type").
    pub model_type: &'static str,
    /// Dataset descriptor (`DSID`).
    pub dataset: &'static str,
    /// Model quality requirement (Table 1).
    pub quality: QualityMetric,
    /// Sensors feeding this model.
    pub sources: &'static [InputSource],
    /// The layer graph consumed by the cost model.
    pub layers: Vec<Layer>,
}

impl ModelInfo {
    /// Total MACs for one inference.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total parameter bytes (8-bit weights).
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }
}

/// Builds the full registry record for a unit model.
pub fn model_info(id: ModelId) -> ModelInfo {
    let (reference, instance, model_type, dataset) = metadata(id);
    ModelInfo {
        id,
        task: id.task_name(),
        category: id.category(),
        reference,
        instance,
        model_type,
        dataset,
        quality: quality_for(id),
        sources: id.input_sources(),
        layers: zoo::build(id),
    }
}

/// Builds registry records for all eleven unit models, in Table 1 order.
pub fn all_models() -> Vec<ModelInfo> {
    ModelId::ALL.iter().copied().map(model_info).collect()
}

fn metadata(id: ModelId) -> (&'static str, &'static str, &'static str, &'static str) {
    match id {
        ModelId::HandTracking => (
            "Hand Graph-CNN (Ge et al., 2019)",
            "Hand Shape/Pose",
            "CNN",
            "Stereo Hand Pose (1/2 scale)",
        ),
        ModelId::EyeSegmentation => (
            "RITNet (Chaudhary et al., 2019)",
            "RITNet",
            "CNN",
            "OpenEDS 2019 (1/4 scale)",
        ),
        ModelId::GazeEstimation => (
            "Eyecod (You et al., 2022)",
            "FBNet-C",
            "CNN",
            "OpenEDS 2020 (1/4 scale)",
        ),
        ModelId::KeywordDetection => (
            "Key-Res-15 (Tang & Lin, 2018)",
            "res8-narrow",
            "CNN",
            "Google Speech Commands",
        ),
        ModelId::SpeechRecognition => (
            "Emformer (Shi et al., 2021)",
            "EM-24L",
            "Transformer",
            "LibriSpeech",
        ),
        ModelId::SemanticSegmentation => (
            "HRViT (Gu et al., 2022)",
            "HRViT-b1",
            "Transformer",
            "Cityscapes",
        ),
        ModelId::ObjectDetection => ("D2Go (Meta, 2022)", "Faster-RCNN-FBNetV3A", "R-CNN", "COCO"),
        ModelId::ActionSegmentation => ("TCN (Lea et al., 2017)", "ED-TCN", "CNN", "GTEA"),
        ModelId::DepthEstimation => (
            "MiDaS (Ranftl et al., 2020)",
            "midas v21 small",
            "CNN",
            "KITTI",
        ),
        ModelId::DepthRefinement => (
            "Sparse-to-Dense (Ma & Karaman, 2018)",
            "RGBd-200",
            "CNN",
            "KITTI",
        ),
        ModelId::PlaneDetection => (
            "PlaneRCNN (Liu et al., 2019)",
            "PlaneRCNN",
            "R-CNN",
            "KITTI (1/4 scale)",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_models() {
        let all = all_models();
        assert_eq!(all.len(), 11);
        for info in &all {
            assert!(!info.layers.is_empty(), "{}", info.id);
            assert!(info.macs() > 0);
            assert!(info.param_bytes() > 0);
        }
    }

    #[test]
    fn table7_model_types() {
        assert_eq!(
            model_info(ModelId::SpeechRecognition).model_type,
            "Transformer"
        );
        assert_eq!(
            model_info(ModelId::SemanticSegmentation).model_type,
            "Transformer"
        );
        assert_eq!(model_info(ModelId::ObjectDetection).model_type, "R-CNN");
        assert_eq!(model_info(ModelId::PlaneDetection).model_type, "R-CNN");
        assert_eq!(model_info(ModelId::HandTracking).model_type, "CNN");
    }

    #[test]
    fn downscaled_datasets_annotated() {
        for id in [
            ModelId::HandTracking,
            ModelId::EyeSegmentation,
            ModelId::GazeEstimation,
            ModelId::PlaneDetection,
        ] {
            assert!(
                model_info(id).dataset.contains("scale"),
                "{id} should record its appendix-A down-scaling"
            );
        }
    }

    #[test]
    fn info_layers_match_zoo() {
        for id in ModelId::ALL {
            assert_eq!(model_info(id).layers, zoo::build(id));
        }
    }
}
