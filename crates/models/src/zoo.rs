//! Layer-graph proxies of the eleven XRBench unit models.
//!
//! Each function returns the layer list of the Table 7 model instance,
//! at the (down-scaled) input resolution listed in appendix A. The
//! graphs reproduce each architecture's *shape profile* — operator mix,
//! channel widths, spatial pyramid — so the analytical cost model sees
//! the same kind of work the real network would generate. MAC budgets
//! per model (asserted by tests):
//!
//! | Model | Instance | ~MACs |
//! |-------|----------|-------|
//! | HT | Hand Shape/Pose CNN, stereo ×1/2 | ~2.5 G |
//! | ES | RITNet, OpenEDS ×1/4 | ~2.7 G |
//! | GE | FBNet-C, OpenEDS2020 ×1/4 | ~0.06 G |
//! | KD | res8-narrow | ~6 M |
//! | SR | Emformer EM-24L, 320 ms chunk | ~5 G |
//! | SS | HRViT-b1 (512×1024) | ~11 G |
//! | OD | Faster-RCNN-FBNetV3A (480²) | ~4 G |
//! | AS | ED-TCN | ~60 M |
//! | DE | MiDaS v21-small (384²) | ~2.2 G |
//! | DR | Sparse-to-Dense RGBd-200 (228×912) | ~12 G |
//! | PD | PlaneRCNN, KITTI ×1/4 | ~125 G |

use xrbench_costmodel::{Layer, LayerKind, TensorDims};

use crate::blocks::GraphBuilder;
use crate::id::ModelId;

/// Builds the layer graph for any unit model.
pub fn build(model: ModelId) -> Vec<Layer> {
    match model {
        ModelId::HandTracking => hand_tracking(),
        ModelId::EyeSegmentation => eye_segmentation(),
        ModelId::GazeEstimation => gaze_estimation(),
        ModelId::KeywordDetection => keyword_detection(),
        ModelId::SpeechRecognition => speech_recognition(),
        ModelId::SemanticSegmentation => semantic_segmentation(),
        ModelId::ObjectDetection => object_detection(),
        ModelId::ActionSegmentation => action_segmentation(),
        ModelId::DepthEstimation => depth_estimation(),
        ModelId::DepthRefinement => depth_refinement(),
        ModelId::PlaneDetection => plane_detection(),
    }
}

/// HT — Hand Shape/Pose (Ge et al. 2019): CNN backbone + Graph-CNN
/// mesh decoder. Stereo Hand Pose input down-scaled ×1/2 → 224×224.
pub fn hand_tracking() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.conv_act("stem", 64, 3, 112, 112, 3, 3, 2);
    b.basic_residual("res1", 128, 64, 56, 56);
    b.pool("pool1", 128, 28, 28, 2);
    b.basic_residual("res2", 256, 128, 28, 28);
    b.pool("pool2", 256, 14, 14, 2);
    b.basic_residual("res3", 512, 256, 14, 14);
    // Latent feature → graph: global pooling + projection.
    b.pool("gap", 512, 1, 1, 14);
    b.push(Layer::dense("latent", 512, 512));
    // Graph-CNN mesh decoder: three graph-conv layers over 778
    // vertices (MANO mesh), modeled as matmuls (feature transform).
    for (i, (fin, fout)) in [(512, 256), (256, 128), (128, 64)].iter().enumerate() {
        b.push(Layer::matmul(format!("gconv{i}.feat"), 778, *fin, *fout));
        // Adjacency aggregation: (778 × 778) · (778 × fout).
        b.push(Layer::matmul(format!("gconv{i}.agg"), 778, 778, *fout));
        b.push(Layer::new(
            format!("gconv{i}.act"),
            LayerKind::Elementwise,
            TensorDims::new(1, 1, 778, *fout, 1, 1),
            1,
        ));
    }
    // Pose regression head: 3-D coordinates per vertex.
    b.push(Layer::matmul("head", 778, 64, 3));
    b.finish()
}

/// ES — RITNet (Chaudhary et al. 2019): a compact 5-level
/// encoder–decoder with skip connections. OpenEDS 2019 ×1/4 → 160×100.
pub fn eye_segmentation() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    // Encoder (down blocks, dense-block channel widths).
    b.conv_act("enc0.a", 48, 1, 100, 160, 3, 3, 1);
    b.conv_act("enc0.b", 48, 48, 100, 160, 3, 3, 1);
    b.pool("down0", 48, 50, 80, 2);
    b.conv_act("enc1.a", 96, 48, 50, 80, 3, 3, 1);
    b.conv_act("enc1.b", 96, 96, 50, 80, 3, 3, 1);
    b.pool("down1", 96, 25, 40, 2);
    b.conv_act("enc2.a", 192, 96, 25, 40, 3, 3, 1);
    b.conv_act("enc2.b", 192, 192, 25, 40, 3, 3, 1);
    b.pool("down2", 192, 12, 20, 2);
    // Bottleneck.
    b.conv_act("mid", 192, 192, 12, 20, 3, 3, 1);
    // Decoder (up blocks with skip concat).
    b.upsample("up2", 192, 25, 40);
    b.conv_act("dec2", 96, 384, 25, 40, 3, 3, 1);
    b.upsample("up1", 96, 50, 80);
    b.conv_act("dec1", 48, 192, 50, 80, 3, 3, 1);
    b.upsample("up0", 48, 100, 160);
    b.conv_act("dec0", 32, 96, 100, 160, 3, 3, 1);
    // 4-class segmentation head (background/iris/sclera/pupil).
    b.conv_act("head", 4, 32, 100, 160, 1, 1, 1);
    b.finish()
}

/// GE — Eyecod gaze estimation with an FBNet-C backbone.
/// OpenEDS 2020 ×1/4 → 64×64 crops.
pub fn gaze_estimation() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.conv_act("stem", 16, 1, 64, 64, 3, 3, 2);
    b.inverted_residual("ir1", 16, 16, 1, 64, 64, 3, 1);
    b.inverted_residual("ir2", 24, 16, 6, 32, 32, 3, 2);
    b.inverted_residual("ir3", 24, 24, 6, 32, 32, 3, 1);
    b.inverted_residual("ir4", 32, 24, 6, 16, 16, 5, 2);
    b.inverted_residual("ir5", 32, 32, 6, 16, 16, 5, 1);
    b.inverted_residual("ir6", 64, 32, 6, 8, 8, 5, 2);
    b.inverted_residual("ir7", 64, 64, 6, 8, 8, 5, 1);
    b.inverted_residual("ir8", 112, 64, 6, 8, 8, 3, 1);
    b.inverted_residual("ir9", 184, 112, 6, 4, 4, 5, 2);
    b.conv_act("head_conv", 352, 184, 4, 4, 1, 1, 1);
    b.pool("gap", 352, 1, 1, 4);
    b.push(Layer::dense("fc1", 256, 352));
    // 3-D gaze vector.
    b.push(Layer::dense("gaze", 3, 256));
    b.finish()
}

/// KD — res8-narrow keyword spotting (Tang & Lin 2018): a tiny ResNet
/// over 101×40 MFCC features with 19 filters.
pub fn keyword_detection() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.conv_act("conv0", 19, 1, 101, 40, 3, 3, 1);
    // 4×3 average pooling (res8 uses an early pool).
    b.pool("pool", 19, 25, 13, 3);
    for i in 0..3 {
        b.basic_residual(&format!("res{i}"), 19, 19, 25, 13);
    }
    b.pool("gap", 19, 1, 1, 13);
    // 12 keyword classes (10 commands + silence + unknown).
    b.push(Layer::dense("fc", 12, 19));
    b.finish()
}

/// SR — Emformer EM-24L streaming ASR (Shi et al. 2021): 24 transformer
/// layers, d=512, FFN 2048, processing a 320 ms segment (~64 frames
/// with left context).
pub fn speech_recognition() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    // Convolutional frontend subsampling the 80-dim fbank stream.
    b.conv_act("frontend.a", 64, 1, 32, 40, 3, 3, 2);
    b.conv_act("frontend.b", 128, 64, 16, 20, 3, 3, 2);
    b.push(Layer::dense("frontend.proj", 512, 128 * 20));
    for i in 0..24 {
        b.transformer_block(&format!("layer{i}"), 64, 512, 2048);
    }
    // Output token projection (vocabulary ~4k wordpieces).
    b.push(Layer::matmul("vocab", 64, 512, 4096));
    b.finish()
}

/// SS — HRViT-b1 semantic segmentation (Gu et al. 2022): multi-scale
/// high-resolution ViT. Cityscapes input at a mobile-friendly 512×256.
pub fn semantic_segmentation() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    // Convolutional patch stem: /4 resolution.
    b.conv_act("stem.a", 32, 3, 256, 512, 3, 3, 2);
    b.conv_act("stem.b", 64, 32, 128, 256, 3, 3, 2);
    // High-resolution branch: window attention blocks at /4 (tokens
    // pooled per 8×8 window → 128 tokens per window group; modeled as
    // sequence of 8192 tokens, d=64, processed in chunked attention).
    for i in 0..6 {
        b.transformer_block(&format!("hr{i}"), 1024, 64, 256);
        // DWCONV mixing (HRViT's MixCFN uses depthwise convs).
        b.push(Layer::new(
            format!("hr{i}.dwmix"),
            LayerKind::DwConv2d,
            TensorDims::new(64, 64, 128, 256, 3, 3),
            1,
        ));
    }
    // Mid-resolution branch at /8, d=128. HRViT uses windowed
    // attention, so the attended sequence stays bounded (1024 tokens
    // per window group) rather than growing with the full image.
    b.conv_act("down8", 128, 64, 64, 128, 3, 3, 2);
    for i in 0..4 {
        b.transformer_block(&format!("mid{i}"), 1024, 128, 512);
        b.push(Layer::new(
            format!("mid{i}.dwmix"),
            LayerKind::DwConv2d,
            TensorDims::new(128, 128, 64, 128, 3, 3),
            1,
        ));
    }
    // Low-resolution branch at /16, d=256.
    b.conv_act("down16", 256, 128, 32, 64, 3, 3, 2);
    for i in 0..4 {
        b.transformer_block(&format!("low{i}"), 512, 256, 1024);
    }
    // Cross-resolution fusion + segmentation head at /4.
    b.upsample("fuse.up", 256, 128, 256);
    b.conv_act("fuse.conv", 64, 448, 128, 256, 1, 1, 1);
    b.conv_act("head.a", 64, 64, 128, 256, 3, 3, 1);
    // 19 Cityscapes classes.
    b.conv_act("head.b", 19, 64, 128, 256, 1, 1, 1);
    b.finish()
}

/// OD — D2Go Faster-RCNN-FBNetV3A (Meta 2022): mobile two-stage
/// detector at 320×320.
pub fn object_detection() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    // FBNetV3A backbone.
    b.conv_act("stem", 16, 3, 240, 240, 3, 3, 2);
    b.inverted_residual("ir1", 16, 16, 1, 240, 240, 3, 1);
    b.inverted_residual("ir2", 24, 16, 4, 120, 120, 3, 2);
    b.inverted_residual("ir3", 24, 24, 4, 120, 120, 3, 1);
    b.inverted_residual("ir4", 40, 24, 4, 60, 60, 5, 2);
    b.inverted_residual("ir5", 40, 40, 4, 60, 60, 5, 1);
    b.inverted_residual("ir6", 80, 40, 4, 30, 30, 3, 2);
    b.inverted_residual("ir7", 80, 80, 4, 30, 30, 3, 1);
    b.inverted_residual("ir8", 112, 80, 4, 30, 30, 5, 1);
    b.inverted_residual("ir9", 184, 112, 4, 15, 15, 5, 2);
    b.conv_act("c5", 256, 184, 15, 15, 1, 1, 1);
    // RPN over the C4/C5 features.
    b.conv_act("rpn.conv", 256, 256, 30, 30, 3, 3, 1);
    b.conv_act("rpn.cls", 15, 256, 30, 30, 1, 1, 1);
    b.conv_act("rpn.box", 60, 256, 30, 30, 1, 1, 1);
    // RoI head: 100 proposals × 7×7×256 RoIAlign features through a
    // 2-layer box head, modeled as batched matmuls.
    b.push(Layer::matmul("roi.fc1", 100, 7 * 7 * 256, 1024));
    b.push(Layer::matmul("roi.fc2", 100, 1024, 1024));
    // 80 COCO classes + boxes.
    b.push(Layer::matmul("roi.cls", 100, 1024, 81));
    b.push(Layer::matmul("roi.box", 100, 1024, 320));
    b.finish()
}

/// AS — ED-TCN action segmentation (Lea et al. 2017): 1-D encoder–
/// decoder temporal convolutions with long kernels over a window of
/// 128 timesteps of 64-dim features.
pub fn action_segmentation() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.temporal_conv("enc0", 96, 64, 128, 25);
    b.pool("down0", 96, 64, 1, 2);
    b.temporal_conv("enc1", 128, 96, 64, 25);
    b.pool("down1", 128, 32, 1, 2);
    b.upsample("up0", 128, 64, 1);
    b.temporal_conv("dec0", 96, 128, 64, 25);
    b.upsample("up1", 96, 128, 1);
    b.temporal_conv("dec1", 64, 96, 128, 25);
    // 11 GTEA action classes per timestep.
    b.push(Layer::new(
        "head",
        LayerKind::Conv2d,
        TensorDims::new(11, 64, 128, 1, 1, 1),
        1,
    ));
    b.finish()
}

/// DE — MiDaS v21-small monocular depth (Ranftl et al. 2020):
/// EfficientNet-lite-style encoder + feature-fusion decoder at 256×256.
pub fn depth_estimation() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.conv_act("stem", 32, 3, 192, 192, 3, 3, 2);
    b.inverted_residual("ir1", 16, 32, 1, 192, 192, 3, 1);
    b.inverted_residual("ir2", 24, 16, 6, 96, 96, 3, 2);
    b.inverted_residual("ir3", 24, 24, 6, 96, 96, 3, 1);
    b.inverted_residual("ir4", 40, 24, 6, 48, 48, 5, 2);
    b.inverted_residual("ir5", 40, 40, 6, 48, 48, 5, 1);
    b.inverted_residual("ir6", 80, 40, 6, 24, 24, 3, 2);
    b.inverted_residual("ir7", 112, 80, 6, 24, 24, 5, 1);
    b.inverted_residual("ir8", 192, 112, 6, 12, 12, 5, 2);
    b.inverted_residual("ir9", 320, 192, 6, 12, 12, 3, 1);
    // Decoder: fusion blocks upsampling back to /2 with skip convs.
    b.conv_act("dec4", 128, 320, 12, 12, 3, 3, 1);
    b.upsample("up4", 128, 24, 24);
    b.conv_act("dec3", 128, 240, 24, 24, 3, 3, 1);
    b.upsample("up3", 128, 48, 48);
    b.conv_act("dec2", 64, 168, 48, 48, 3, 3, 1);
    b.upsample("up2", 64, 96, 96);
    b.conv_act("dec1", 64, 88, 96, 96, 3, 3, 1);
    b.upsample("up1", 64, 192, 192);
    b.conv_act("head.a", 32, 64, 192, 192, 3, 3, 1);
    b.conv_act("head.b", 1, 32, 192, 192, 3, 3, 1);
    b.finish()
}

/// DR — Sparse-to-Dense RGBd-200 (Ma & Karaman 2018): ResNet-18
/// encoder over RGB + sparse depth (4 input channels) with a
/// deconvolutional decoder, at KITTI-crop 228×304.
pub fn depth_refinement() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    b.conv_act("stem", 64, 4, 114, 456, 7, 7, 2);
    b.pool("pool", 64, 57, 228, 2);
    b.basic_residual("res1a", 64, 64, 57, 228);
    b.basic_residual("res1b", 64, 64, 57, 228);
    b.basic_residual("res2a", 128, 64, 29, 114);
    b.basic_residual("res2b", 128, 128, 29, 114);
    b.basic_residual("res3a", 256, 128, 15, 57);
    b.basic_residual("res3b", 256, 256, 15, 57);
    b.basic_residual("res4a", 512, 256, 8, 29);
    b.basic_residual("res4b", 512, 512, 8, 29);
    // Deconv decoder (upproj blocks).
    b.deconv_act("up4", 256, 512, 15, 57, 3);
    b.deconv_act("up3", 128, 256, 29, 114, 3);
    b.deconv_act("up2", 64, 128, 57, 228, 3);
    b.deconv_act("up1", 32, 64, 114, 456, 3);
    b.conv_act("head", 1, 32, 114, 456, 3, 3, 1);
    b.finish()
}

/// PD — PlaneRCNN (Liu et al. 2019): ResNet-101-FPN Mask-R-CNN-style
/// plane detector with per-RoI mask and normal heads, plus a
/// refinement network. KITTI ×1/4 input (≈ 312×96), but the R-CNN
/// meta-architecture keeps it by far the heaviest XRBench model.
pub fn plane_detection() -> Vec<Layer> {
    let mut b = GraphBuilder::new();
    // ResNet-101 backbone over the padded 320×96 input.
    b.conv_act("stem", 64, 3, 160, 48, 7, 7, 2);
    b.pool("pool", 64, 80, 24, 2);
    for i in 0..3 {
        b.bottleneck_residual(
            &format!("c2.{i}"),
            256,
            if i == 0 { 64 } else { 256 },
            64,
            80,
            24,
        );
    }
    for i in 0..4 {
        b.bottleneck_residual(
            &format!("c3.{i}"),
            512,
            if i == 0 { 256 } else { 512 },
            128,
            40,
            12,
        );
    }
    for i in 0..23 {
        b.bottleneck_residual(
            &format!("c4.{i}"),
            1024,
            if i == 0 { 512 } else { 1024 },
            256,
            40,
            12,
        );
    }
    for i in 0..3 {
        b.bottleneck_residual(
            &format!("c5.{i}"),
            2048,
            if i == 0 { 1024 } else { 2048 },
            512,
            10,
            3,
        );
    }
    // FPN lateral + output convs.
    b.conv_act("fpn.p5", 256, 2048, 10, 3, 1, 1, 1);
    b.conv_act("fpn.p4", 256, 1024, 20, 6, 1, 1, 1);
    b.conv_act("fpn.p3", 256, 512, 40, 12, 1, 1, 1);
    b.conv_act("fpn.p2", 256, 256, 80, 24, 1, 1, 1);
    for (lvl, (y, x)) in [
        (2u32, (80u64, 24u64)),
        (3, (40, 12)),
        (4, (20, 6)),
        (5, (10, 3)),
    ] {
        b.conv_act(&format!("fpn.out{lvl}"), 256, 256, y, x, 3, 3, 1);
        // RPN head shared across levels.
        b.conv_act(&format!("rpn{lvl}.conv"), 256, 256, y, x, 3, 3, 1);
        b.conv_act(&format!("rpn{lvl}.cls"), 3, 256, y, x, 1, 1, 1);
        b.conv_act(&format!("rpn{lvl}.box"), 12, 256, y, x, 1, 1, 1);
    }
    // RoI box head: 512 proposals × 7×7×256 → two wide FC layers.
    b.push(Layer::matmul("roi.fc1", 512, 7 * 7 * 256, 1024));
    b.push(Layer::matmul("roi.fc2", 512, 1024, 1024));
    b.push(Layer::matmul("roi.cls", 512, 1024, 2));
    b.push(Layer::matmul("roi.box", 512, 1024, 8));
    // Mask + plane-normal head: ~107 detections × 14×14 features
    // through a 4-conv mask tower (batched: y carries detections×14).
    for i in 0..4 {
        b.push(Layer::new(
            format!("mask.conv{i}"),
            LayerKind::Conv2d,
            TensorDims::new(256, 256, 1400, 14, 3, 3),
            1,
        ));
    }
    b.push(Layer::new(
        "mask.deconv",
        LayerKind::Deconv2d,
        TensorDims::new(256, 256, 2800, 28, 2, 2),
        1,
    ));
    b.push(Layer::new(
        "mask.pred",
        LayerKind::Conv2d,
        TensorDims::new(1, 256, 2800, 28, 1, 1),
        1,
    ));
    b.push(Layer::matmul("normal.fc", 100, 1024, 3));
    // Depth/segmentation refinement network at /4 resolution.
    b.conv_act("refine.a", 64, 8, 80, 24, 3, 3, 1);
    b.conv_act("refine.b", 64, 64, 80, 24, 3, 3, 1);
    b.conv_act("refine.head", 1, 64, 80, 24, 3, 3, 1);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmacs(layers: &[Layer]) -> f64 {
        layers.iter().map(Layer::macs).sum::<u64>() as f64 / 1e9
    }

    #[test]
    fn every_model_builds_nonempty() {
        for m in ModelId::ALL {
            let layers = build(m);
            assert!(!layers.is_empty(), "{m}");
            assert!(layers.iter().map(Layer::macs).sum::<u64>() > 0, "{m}");
        }
    }

    #[test]
    fn mac_budgets_in_expected_bands() {
        let bands: [(ModelId, f64, f64); 11] = [
            (ModelId::HandTracking, 1.5, 4.0),
            (ModelId::EyeSegmentation, 1.5, 4.5),
            (ModelId::GazeEstimation, 0.02, 0.3),
            (ModelId::KeywordDetection, 0.001, 0.02),
            (ModelId::SpeechRecognition, 2.0, 8.0),
            (ModelId::SemanticSegmentation, 6.0, 20.0),
            (ModelId::ObjectDetection, 2.0, 8.0),
            (ModelId::ActionSegmentation, 0.01, 0.2),
            (ModelId::DepthEstimation, 1.0, 5.0),
            (ModelId::DepthRefinement, 6.0, 20.0),
            (ModelId::PlaneDetection, 80.0, 250.0),
        ];
        for (m, lo, hi) in bands {
            let g = gmacs(&build(m));
            assert!(g >= lo && g <= hi, "{m}: {g:.3} GMACs not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn plane_detection_is_heaviest_keyword_detection_lightest() {
        let macs: Vec<(ModelId, u64)> = ModelId::ALL
            .iter()
            .map(|&m| (m, build(m).iter().map(Layer::macs).sum()))
            .collect();
        let max = macs.iter().max_by_key(|(_, v)| *v).unwrap().0;
        let min = macs.iter().min_by_key(|(_, v)| *v).unwrap().0;
        assert_eq!(max, ModelId::PlaneDetection);
        assert_eq!(min, ModelId::KeywordDetection);
    }

    #[test]
    fn transformer_models_contain_attention_ops() {
        for m in [ModelId::SpeechRecognition, ModelId::SemanticSegmentation] {
            let layers = build(m);
            assert!(
                layers.iter().any(|l| l.kind() == LayerKind::Softmax),
                "{m} should contain softmax (self-attention)"
            );
            assert!(
                layers.iter().any(|l| l.kind() == LayerKind::LayerNorm),
                "{m} should contain layernorm"
            );
        }
    }

    #[test]
    fn mobile_models_contain_depthwise_convs() {
        for m in [
            ModelId::GazeEstimation,
            ModelId::ObjectDetection,
            ModelId::DepthEstimation,
        ] {
            assert!(
                build(m).iter().any(|l| l.kind() == LayerKind::DwConv2d),
                "{m} should contain depthwise convs (Table 7)"
            );
        }
    }

    #[test]
    fn rcnn_models_contain_roi_matmuls() {
        for m in [ModelId::ObjectDetection, ModelId::PlaneDetection] {
            assert!(
                build(m).iter().any(|l| l.name().starts_with("roi.")),
                "{m} should contain RoI head layers"
            );
        }
    }

    #[test]
    fn decoder_models_contain_upsampling_or_deconv() {
        for m in [
            ModelId::EyeSegmentation,
            ModelId::DepthEstimation,
            ModelId::DepthRefinement,
        ] {
            assert!(
                build(m)
                    .iter()
                    .any(|l| matches!(l.kind(), LayerKind::Upsample | LayerKind::Deconv2d)),
                "{m} should upsample back toward input resolution"
            );
        }
    }

    #[test]
    fn layer_names_unique_within_model() {
        for m in ModelId::ALL {
            let layers = build(m);
            let mut names: Vec<&str> = layers.iter().map(Layer::name).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "{m} has duplicate layer names");
        }
    }

    #[test]
    fn build_is_deterministic() {
        for m in ModelId::ALL {
            assert_eq!(build(m), build(m), "{m}");
        }
    }
}
