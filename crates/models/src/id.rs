//! Model, task-category, and input-source identifiers.

use std::fmt;
use std::str::FromStr;

/// The eleven XRBench unit models (Table 1).
///
/// The two-letter abbreviations follow the paper (HT, ES, GE, KD, SR,
/// SS, OD, AS, DE, DR, PD). Note that KD and SR serve both the
/// *Interaction* and *Context Understanding* task categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// Hand Tracking — Hand Shape/Pose (Ge et al. 2019).
    HandTracking,
    /// Eye Segmentation — RITNet.
    EyeSegmentation,
    /// Gaze Estimation — Eyecod / FBNet-C backbone.
    GazeEstimation,
    /// Keyword Detection — res8-narrow.
    KeywordDetection,
    /// Speech Recognition — Emformer EM-24L.
    SpeechRecognition,
    /// Semantic Segmentation — HRViT-b1.
    SemanticSegmentation,
    /// Object Detection — D2Go Faster-RCNN-FBNetV3A.
    ObjectDetection,
    /// Action Segmentation — ED-TCN.
    ActionSegmentation,
    /// Depth Estimation — MiDaS v21-small.
    DepthEstimation,
    /// Depth Refinement — Sparse-to-Dense RGBd-200.
    DepthRefinement,
    /// Plane Detection — PlaneRCNN.
    PlaneDetection,
}

impl ModelId {
    /// All unit models, in Table 1 order.
    pub const ALL: [ModelId; 11] = [
        ModelId::HandTracking,
        ModelId::EyeSegmentation,
        ModelId::GazeEstimation,
        ModelId::KeywordDetection,
        ModelId::SpeechRecognition,
        ModelId::SemanticSegmentation,
        ModelId::ObjectDetection,
        ModelId::ActionSegmentation,
        ModelId::DepthEstimation,
        ModelId::DepthRefinement,
        ModelId::PlaneDetection,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            ModelId::HandTracking => "HT",
            ModelId::EyeSegmentation => "ES",
            ModelId::GazeEstimation => "GE",
            ModelId::KeywordDetection => "KD",
            ModelId::SpeechRecognition => "SR",
            ModelId::SemanticSegmentation => "SS",
            ModelId::ObjectDetection => "OD",
            ModelId::ActionSegmentation => "AS",
            ModelId::DepthEstimation => "DE",
            ModelId::DepthRefinement => "DR",
            ModelId::PlaneDetection => "PD",
        }
    }

    /// The full task name.
    pub fn task_name(&self) -> &'static str {
        match self {
            ModelId::HandTracking => "Hand Tracking",
            ModelId::EyeSegmentation => "Eye Segmentation",
            ModelId::GazeEstimation => "Gaze Estimation",
            ModelId::KeywordDetection => "Keyword Detection",
            ModelId::SpeechRecognition => "Speech Recognition",
            ModelId::SemanticSegmentation => "Semantic Segmentation",
            ModelId::ObjectDetection => "Object Detection",
            ModelId::ActionSegmentation => "Action Segmentation",
            ModelId::DepthEstimation => "Depth Estimation",
            ModelId::DepthRefinement => "Depth Refinement",
            ModelId::PlaneDetection => "Plane Detection",
        }
    }

    /// The primary task category (Table 1). KD and SR belong to both
    /// Interaction and Context Understanding; the *primary* listing is
    /// Interaction.
    pub fn category(&self) -> TaskCategory {
        match self {
            ModelId::HandTracking
            | ModelId::EyeSegmentation
            | ModelId::GazeEstimation
            | ModelId::KeywordDetection
            | ModelId::SpeechRecognition => TaskCategory::Interaction,
            ModelId::SemanticSegmentation
            | ModelId::ObjectDetection
            | ModelId::ActionSegmentation => TaskCategory::ContextUnderstanding,
            ModelId::DepthEstimation | ModelId::DepthRefinement | ModelId::PlaneDetection => {
                TaskCategory::WorldLocking
            }
        }
    }

    /// The sensors this model consumes (Table 3 input sources).
    pub fn input_sources(&self) -> &'static [InputSource] {
        match self {
            ModelId::KeywordDetection | ModelId::SpeechRecognition => &[InputSource::Microphone],
            ModelId::DepthRefinement => &[InputSource::Camera, InputSource::Lidar],
            _ => &[InputSource::Camera],
        }
    }

    /// The *driving* input source: the one whose streaming rate paces
    /// this model's inference requests (the camera for the multi-modal
    /// depth-refinement model, per Table 3's note that all streams are
    /// aligned to 60 FPS for multi-modal models).
    pub fn driving_source(&self) -> InputSource {
        self.input_sources()[0]
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error returned when parsing a [`ModelId`] abbreviation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelIdError(String);

impl fmt::Display for ParseModelIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model abbreviation `{}`", self.0)
    }
}

impl std::error::Error for ParseModelIdError {}

impl FromStr for ModelId {
    type Err = ParseModelIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelId::ALL
            .iter()
            .find(|m| m.abbrev().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| ParseModelIdError(s.to_string()))
    }
}

/// The three XRBench task categories (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskCategory {
    /// Real-time user interaction (hands, eyes, voice).
    Interaction,
    /// Understanding the user's surroundings.
    ContextUnderstanding,
    /// AR object rendering on the scene (depth, planes).
    WorldLocking,
}

impl fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskCategory::Interaction => "Interaction",
            TaskCategory::ContextUnderstanding => "Context Understanding",
            TaskCategory::WorldLocking => "World Locking",
        };
        f.write_str(s)
    }
}

/// The three input sources of a metaverse device (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputSource {
    /// Image stream at 60 FPS, ±0.05 ms jitter.
    Camera,
    /// Sparse depth points at 60 FPS, ±0.05 ms jitter.
    Lidar,
    /// Audio at 3 FPS (320 ms chunks), ±0.1 ms jitter.
    Microphone,
}

impl InputSource {
    /// All input sources, in Table 3 order.
    pub const ALL: [InputSource; 3] = [
        InputSource::Camera,
        InputSource::Lidar,
        InputSource::Microphone,
    ];
}

impl fmt::Display for InputSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InputSource::Camera => "Camera",
            InputSource::Lidar => "Lidar",
            InputSource::Microphone => "Microphone",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_models_with_unique_abbrevs() {
        let mut abbrevs: Vec<_> = ModelId::ALL.iter().map(|m| m.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 11);
    }

    #[test]
    fn abbrev_round_trips() {
        for m in ModelId::ALL {
            assert_eq!(m.abbrev().parse::<ModelId>().unwrap(), m);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_rejects_unknown() {
        assert_eq!("ht".parse::<ModelId>().unwrap(), ModelId::HandTracking);
        assert!("QQ".parse::<ModelId>().is_err());
    }

    #[test]
    fn category_split_matches_table1() {
        use TaskCategory::*;
        let interaction = ModelId::ALL
            .iter()
            .filter(|m| m.category() == Interaction)
            .count();
        let context = ModelId::ALL
            .iter()
            .filter(|m| m.category() == ContextUnderstanding)
            .count();
        let world = ModelId::ALL
            .iter()
            .filter(|m| m.category() == WorldLocking)
            .count();
        assert_eq!((interaction, context, world), (5, 3, 3));
    }

    #[test]
    fn speech_models_use_microphone() {
        assert_eq!(
            ModelId::KeywordDetection.input_sources(),
            &[InputSource::Microphone]
        );
        assert_eq!(
            ModelId::SpeechRecognition.driving_source(),
            InputSource::Microphone
        );
    }

    #[test]
    fn depth_refinement_is_multimodal_driven_by_camera() {
        let srcs = ModelId::DepthRefinement.input_sources();
        assert_eq!(srcs.len(), 2);
        assert!(srcs.contains(&InputSource::Lidar));
        assert_eq!(
            ModelId::DepthRefinement.driving_source(),
            InputSource::Camera
        );
    }
}
