//! Reusable architecture building blocks for the model zoo.
//!
//! Each builder appends the layers of a common DNN block (residual
//! block, inverted bottleneck, transformer encoder block, ...) to a
//! growing layer list, mirroring how the reference models in Table 7
//! are composed (CONV2D / DWCONV / FC / self-attention / LayerNorm /
//! pooling / upsampling / skip connections).

use xrbench_costmodel::{Layer, LayerKind, TensorDims};

/// A growing layer list with a name prefix for readable layer names.
#[derive(Debug, Default)]
pub(crate) struct GraphBuilder {
    layers: Vec<Layer>,
}

impl GraphBuilder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    pub(crate) fn finish(self) -> Vec<Layer> {
        assert!(
            !self.layers.is_empty(),
            "model must have at least one layer"
        );
        self.layers
    }

    /// Conv + fused activation (BN folded at 8-bit inference).
    #[allow(clippy::too_many_arguments)] // mirrors the conv dimension tuple
    pub(crate) fn conv_act(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        y: u64,
        x: u64,
        r: u64,
        s: u64,
        stride: u64,
    ) -> &mut Self {
        self.push(Layer::conv2d_strided(
            format!("{name}.conv"),
            k,
            c,
            y,
            x,
            r,
            s,
            stride,
        ));
        self.push(Layer::new(
            format!("{name}.act"),
            LayerKind::Elementwise,
            TensorDims::new(k, 1, y, x, 1, 1),
            1,
        ));
        self
    }

    /// Two 3×3 convs with a residual add (ResNet basic block).
    pub(crate) fn basic_residual(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        y: u64,
        x: u64,
    ) -> &mut Self {
        self.conv_act(&format!("{name}.a"), k, c, y, x, 3, 3, 1);
        self.conv_act(&format!("{name}.b"), k, k, y, x, 3, 3, 1);
        self.push(Layer::new(
            format!("{name}.add"),
            LayerKind::Elementwise,
            TensorDims::new(k, 1, y, x, 1, 1),
            1,
        ));
        self
    }

    /// 1×1 bottleneck residual block (ResNet-50/101 style):
    /// 1×1 reduce → 3×3 → 1×1 expand (+ add).
    pub(crate) fn bottleneck_residual(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        mid: u64,
        y: u64,
        x: u64,
    ) -> &mut Self {
        self.conv_act(&format!("{name}.reduce"), mid, c, y, x, 1, 1, 1);
        self.conv_act(&format!("{name}.conv3"), mid, mid, y, x, 3, 3, 1);
        self.conv_act(&format!("{name}.expand"), k, mid, y, x, 1, 1, 1);
        self.push(Layer::new(
            format!("{name}.add"),
            LayerKind::Elementwise,
            TensorDims::new(k, 1, y, x, 1, 1),
            1,
        ));
        self
    }

    /// Inverted residual (MBConv, FBNet/MobileNet style):
    /// 1×1 expand → depthwise r×s → 1×1 project (+ add when shapes match).
    #[allow(clippy::too_many_arguments)] // mirrors the conv dimension tuple
    pub(crate) fn inverted_residual(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        expand: u64,
        y: u64,
        x: u64,
        r: u64,
        stride: u64,
    ) -> &mut Self {
        let mid = c * expand;
        self.conv_act(
            &format!("{name}.expand"),
            mid,
            c,
            y * stride,
            x * stride,
            1,
            1,
            1,
        );
        self.push(Layer::new(
            format!("{name}.dw"),
            LayerKind::DwConv2d,
            TensorDims::new(mid, mid, y, x, r, r),
            stride,
        ));
        self.conv_act(&format!("{name}.project"), k, mid, y, x, 1, 1, 1);
        if stride == 1 && k == c {
            self.push(Layer::new(
                format!("{name}.add"),
                LayerKind::Elementwise,
                TensorDims::new(k, 1, y, x, 1, 1),
                1,
            ));
        }
        self
    }

    /// Max/avg pooling.
    pub(crate) fn pool(&mut self, name: &str, k: u64, y: u64, x: u64, window: u64) -> &mut Self {
        self.push(Layer::new(
            name.to_string(),
            LayerKind::Pool,
            TensorDims::new(k, k, y, x, window, window),
            window,
        ))
    }

    /// Nearest/bilinear upsample to `y × x` over `k` channels.
    pub(crate) fn upsample(&mut self, name: &str, k: u64, y: u64, x: u64) -> &mut Self {
        self.push(Layer::new(
            name.to_string(),
            LayerKind::Upsample,
            TensorDims::new(k, 1, y, x, 1, 1),
            1,
        ))
    }

    /// Transposed-convolution upsampling block (decoder style).
    pub(crate) fn deconv_act(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        y: u64,
        x: u64,
        r: u64,
    ) -> &mut Self {
        self.push(Layer::new(
            format!("{name}.deconv"),
            LayerKind::Deconv2d,
            TensorDims::new(k, c, y, x, r, r),
            1,
        ));
        self.push(Layer::new(
            format!("{name}.act"),
            LayerKind::Elementwise,
            TensorDims::new(k, 1, y, x, 1, 1),
            1,
        ));
        self
    }

    /// A pre-norm transformer encoder block over `seq` tokens of width
    /// `d` with an `ffn`-wide MLP: LN → QKV → scores → softmax →
    /// context → proj (+ add) → LN → FFN (+ add).
    pub(crate) fn transformer_block(
        &mut self,
        name: &str,
        seq: u64,
        d: u64,
        ffn: u64,
    ) -> &mut Self {
        self.push(Layer::new(
            format!("{name}.ln1"),
            LayerKind::LayerNorm,
            TensorDims::new(1, 1, seq, d, 1, 1),
            1,
        ));
        // Fused QKV projection: seq × d → seq × 3d.
        self.push(Layer::matmul(format!("{name}.qkv"), seq, d, 3 * d));
        // Attention scores: (seq × d) · (d × seq).
        self.push(Layer::matmul(format!("{name}.scores"), seq, d, seq));
        self.push(Layer::new(
            format!("{name}.softmax"),
            LayerKind::Softmax,
            TensorDims::new(1, 1, seq, seq, 1, 1),
            1,
        ));
        // Context: (seq × seq) · (seq × d).
        self.push(Layer::matmul(format!("{name}.context"), seq, seq, d));
        self.push(Layer::matmul(format!("{name}.proj"), seq, d, d));
        self.push(Layer::new(
            format!("{name}.add1"),
            LayerKind::Elementwise,
            TensorDims::new(1, 1, seq, d, 1, 1),
            1,
        ));
        self.push(Layer::new(
            format!("{name}.ln2"),
            LayerKind::LayerNorm,
            TensorDims::new(1, 1, seq, d, 1, 1),
            1,
        ));
        self.push(Layer::matmul(format!("{name}.ffn1"), seq, d, ffn));
        self.push(Layer::matmul(format!("{name}.ffn2"), seq, ffn, d));
        self.push(Layer::new(
            format!("{name}.add2"),
            LayerKind::Elementwise,
            TensorDims::new(1, 1, seq, d, 1, 1),
            1,
        ));
        self
    }

    /// A 1-D temporal convolution (ED-TCN style) over `t` timesteps,
    /// mapped onto the canonical dims with `x = 1`.
    pub(crate) fn temporal_conv(
        &mut self,
        name: &str,
        k: u64,
        c: u64,
        t: u64,
        kernel: u64,
    ) -> &mut Self {
        self.push(Layer::new(
            format!("{name}.tconv"),
            LayerKind::Conv2d,
            TensorDims::new(k, c, t, 1, kernel, 1),
            1,
        ));
        self.push(Layer::new(
            format!("{name}.act"),
            LayerKind::Elementwise,
            TensorDims::new(k, 1, t, 1, 1, 1),
            1,
        ));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs(layers: &[Layer]) -> u64 {
        layers.iter().map(Layer::macs).sum()
    }

    #[test]
    fn conv_act_adds_two_layers() {
        let mut b = GraphBuilder::new();
        b.conv_act("x", 8, 4, 10, 10, 3, 3, 1);
        let layers = b.finish();
        assert_eq!(layers.len(), 2);
        assert_eq!(macs(&layers), 8 * 4 * 100 * 9);
    }

    #[test]
    fn basic_residual_macs() {
        let mut b = GraphBuilder::new();
        b.basic_residual("r", 64, 32, 14, 14);
        let layers = b.finish();
        let expect = 64 * 32 * 14 * 14 * 9 + 64 * 64 * 14 * 14 * 9;
        assert_eq!(macs(&layers), expect);
    }

    #[test]
    fn inverted_residual_has_dwconv_and_optional_add() {
        let mut b = GraphBuilder::new();
        b.inverted_residual("m", 32, 32, 6, 14, 14, 3, 1);
        let layers = b.finish();
        assert!(layers.iter().any(|l| l.kind() == LayerKind::DwConv2d));
        assert!(layers.iter().any(|l| l.name().ends_with(".add")));

        let mut b2 = GraphBuilder::new();
        b2.inverted_residual("m", 64, 32, 6, 14, 14, 3, 2);
        assert!(!b2.finish().iter().any(|l| l.name().ends_with(".add")));
    }

    #[test]
    fn transformer_block_macs_match_formula() {
        let (seq, d, ffn) = (64, 512, 2048);
        let mut b = GraphBuilder::new();
        b.transformer_block("t", seq, d, ffn);
        let layers = b.finish();
        let expect = seq * d * 3 * d   // qkv
            + seq * d * seq            // scores
            + seq * seq * d            // context
            + seq * d * d              // proj
            + seq * d * ffn            // ffn1
            + seq * ffn * d; // ffn2
        assert_eq!(macs(&layers), expect);
    }

    #[test]
    fn temporal_conv_is_1d() {
        let mut b = GraphBuilder::new();
        b.temporal_conv("t", 96, 64, 100, 25);
        let layers = b.finish();
        assert_eq!(macs(&layers), 96 * 64 * 100 * 25);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_graph_panics() {
        let _ = GraphBuilder::new().finish();
    }
}
