//! Criterion bench for multi-user session throughput — the workload
//! the calendar-queue event engine (PR 8) targets, up to the 4096-user
//! point where struct-of-arrays state and the batched kernel dispatch
//! path dominate. `perf_gate` is the committed pass/fail version of
//! the same measurement; this bench is for interactive profiling
//! (`cargo bench -p xrbench-bench session_scale`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xrbench_bench::session_scale::{mixed_session, provider};
use xrbench_sim::{LatencyGreedy, SimConfig, Simulator};

fn bench_session_scale(c: &mut Criterion) {
    let provider = provider();
    let sim = Simulator::new(SimConfig::default());
    let mut g = c.benchmark_group("session_scale");
    for users in [1u32, 32, 256, 4096] {
        let session = mixed_session(users);
        g.bench_with_input(BenchmarkId::from_parameter(users), &session, |b, s| {
            b.iter(|| sim.run_session(black_box(s), &provider, &mut LatencyGreedy::new()));
        });
    }
    g.finish();
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    // Head-to-head at a size where the reference loop is still cheap
    // enough to sample.
    let provider = provider();
    let sim = Simulator::new(SimConfig::default());
    let session = mixed_session(32);
    let mut g = c.benchmark_group("engine_vs_reference_32_users");
    g.bench_function("calendar_engine", |b| {
        b.iter(|| sim.run_session(black_box(&session), &provider, &mut LatencyGreedy::new()));
    });
    g.bench_function("reference_loop", |b| {
        b.iter(|| {
            sim.run_session_reference(black_box(&session), &provider, &mut LatencyGreedy::new())
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_session_scale, bench_engine_vs_reference);
criterion_main!(benches);
