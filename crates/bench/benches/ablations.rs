//! Ablation benches for the design choices called out in DESIGN.md:
//! scheduler policy and NoC/off-chip bandwidth. Criterion measures the
//! runtime cost; the printed scores (once, at setup) record the
//! quality effect of each choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Once;

use xrbench_accel::{table5, AcceleratorSystem};
use xrbench_core::Harness;
use xrbench_costmodel::{HardwareConfig, MappingStrategy};
use xrbench_models::ModelId;
use xrbench_sim::{CostProvider, LatencyGreedy, RoundRobin, Scheduler};
use xrbench_workload::UsageScenario;

static PRINT_ONCE: Once = Once::new();

fn print_ablation_scores() {
    PRINT_ONCE.call_once(|| {
        let cfg = table5().into_iter().find(|x| x.id == 'J').expect("J");
        let system = AcceleratorSystem::new(cfg.clone(), 8192);
        let h = Harness::new();

        eprintln!("\n--- ablation: scheduler policy (AR Assistant, J @ 8K) ---");
        let mut schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(LatencyGreedy::new()), Box::new(RoundRobin::new())];
        for s in schedulers.iter_mut() {
            let (report, _) = h.run_spec(&UsageScenario::ArAssistant.spec(), &system, s.as_mut());
            eprintln!(
                "  {:<16} overall={:.3} rt={:.3} qoe={:.3}",
                report.scheduler,
                report.overall(),
                report.breakdown.realtime_score,
                report.breakdown.qoe_score
            );
        }

        eprintln!("--- ablation: off-chip bandwidth (AR Gaming, J @ 8K) ---");
        for gbps in [16.0, 64.0, 256.0] {
            let mut base = HardwareConfig::with_pes(8192);
            base.offchip_bw_bytes_per_s = gbps * 1e9;
            let sys = AcceleratorSystem::with_base_hw(cfg.clone(), base);
            let report = h.run_scenario(UsageScenario::ArGaming, &sys);
            eprintln!(
                "  {gbps:>5} GB/s: overall={:.3} rt={:.3}",
                report.overall(),
                report.breakdown.realtime_score
            );
        }
    });
}

fn print_mapping_ablation() {
    // Fixed array geometry (a real fixed-dataflow accelerator) vs a
    // per-layer adaptive tiling search (a reconfigurable array):
    // quantifies what the "fixed-dataflow" constraint costs.
    let cfg = table5().into_iter().find(|x| x.id == 'A').expect("A");
    let mut adaptive_base = HardwareConfig::with_pes(4096);
    adaptive_base.mapping = MappingStrategy::Adaptive;
    let fixed = AcceleratorSystem::new(cfg.clone(), 4096);
    let adaptive = AcceleratorSystem::with_base_hw(cfg, adaptive_base);
    eprintln!("--- ablation: fixed vs adaptive mapping (WS @ 4K, per-model latency) ---");
    for m in [
        ModelId::HandTracking,
        ModelId::SemanticSegmentation,
        ModelId::DepthRefinement,
        ModelId::PlaneDetection,
    ] {
        let lf = fixed.cost(m, 0).latency_s * 1e3;
        let la = adaptive.cost(m, 0).latency_s * 1e3;
        eprintln!(
            "  {m}: fixed {lf:6.2} ms, adaptive {la:6.2} ms ({:.2}x)",
            lf / la
        );
    }
}

fn bench_mapping_ablation(c: &mut Criterion) {
    print_mapping_ablation();
    let cfg = table5().into_iter().find(|x| x.id == 'A').expect("A");
    let h = Harness::new();
    let mut g = c.benchmark_group("ablation_mapping");
    for (label, mapping) in [
        ("fixed", MappingStrategy::Fixed),
        ("adaptive", MappingStrategy::Adaptive),
    ] {
        let mut base = HardwareConfig::with_pes(4096);
        base.mapping = mapping;
        let sys = AcceleratorSystem::with_base_hw(cfg.clone(), base);
        g.bench_with_input(BenchmarkId::from_parameter(label), &sys, |b, sys| {
            b.iter(|| h.run_scenario(UsageScenario::ArGaming, black_box(sys)));
        });
    }
    g.finish();
}

fn bench_scheduler_ablation(c: &mut Criterion) {
    print_ablation_scores();
    let cfg = table5().into_iter().find(|x| x.id == 'J').expect("J");
    let system = AcceleratorSystem::new(cfg, 8192);
    let h = Harness::new();
    let spec = UsageScenario::ArAssistant.spec();
    let mut g = c.benchmark_group("ablation_scheduler");
    g.bench_function("latency_greedy", |b| {
        b.iter(|| h.run_spec(black_box(&spec), &system, &mut LatencyGreedy::new()));
    });
    g.bench_function("round_robin", |b| {
        b.iter(|| h.run_spec(black_box(&spec), &system, &mut RoundRobin::new()));
    });
    g.finish();
}

fn bench_bandwidth_ablation(c: &mut Criterion) {
    let cfg = table5().into_iter().find(|x| x.id == 'J').expect("J");
    let h = Harness::new();
    let mut g = c.benchmark_group("ablation_bandwidth");
    for gbps in [16u64, 64, 256] {
        let mut base = HardwareConfig::with_pes(8192);
        base.offchip_bw_bytes_per_s = gbps as f64 * 1e9;
        let sys = AcceleratorSystem::with_base_hw(cfg.clone(), base);
        g.bench_with_input(BenchmarkId::from_parameter(gbps), &sys, |b, sys| {
            b.iter(|| h.run_scenario(UsageScenario::ArGaming, black_box(sys)));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_scheduler_ablation, bench_bandwidth_ablation, bench_mapping_ablation);
criterion_main!(benches);
