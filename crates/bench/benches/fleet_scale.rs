//! Criterion bench for fleet execution throughput — the PR-4 scale
//! axis. `fleet_gate` is the committed pass/fail version of the same
//! measurement; this bench is for interactive profiling
//! (`cargo bench -p xrbench-bench fleet_scale`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xrbench_bench::fleet_scale::{fleet, provider};
use xrbench_fleet::{run_fleet, FleetRunConfig};

fn bench_fleet_scale(c: &mut Criterion) {
    let system = provider();
    let config = FleetRunConfig::default();
    let mut g = c.benchmark_group("fleet_scale");
    for users in [1_024u32, 4_096] {
        let spec = fleet(users);
        g.bench_with_input(BenchmarkId::from_parameter(users), &spec, |b, s| {
            b.iter(|| run_fleet(black_box(s), &system, &config));
        });
    }
    g.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    // The same 1,024-user fleet under 1 / 2 / 8 workers: the report is
    // bit-identical across rows, only the wall clock moves.
    let system = provider();
    let spec = fleet(1_024);
    let mut g = c.benchmark_group("fleet_worker_scaling_1024_users");
    for workers in [1usize, 2, 8] {
        let config = FleetRunConfig {
            workers,
            ..FleetRunConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(workers), &config, |b, cfg| {
            b.iter(|| run_fleet(black_box(&spec), &system, cfg));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fleet_scale, bench_worker_scaling);
criterion_main!(benches);
