//! Criterion benches for the analytical cost model: per-layer and
//! per-model evaluation throughput across the three dataflows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xrbench_costmodel::{evaluate_layer, evaluate_layers, Dataflow, HardwareConfig, Layer};
use xrbench_models::{zoo, ModelId};

fn bench_single_layer(c: &mut Criterion) {
    let hw = HardwareConfig::with_pes(4096);
    let conv = Layer::conv2d("conv", 128, 128, 56, 56, 3, 3);
    let mut g = c.benchmark_group("layer_eval");
    for df in Dataflow::ALL {
        g.bench_with_input(BenchmarkId::new("conv128", df.abbrev()), &df, |b, &df| {
            b.iter(|| evaluate_layer(black_box(&conv), df, &hw));
        });
    }
    g.finish();
}

fn bench_model_eval(c: &mut Criterion) {
    let hw = HardwareConfig::with_pes(4096);
    let mut g = c.benchmark_group("model_eval");
    for model in [
        ModelId::KeywordDetection,
        ModelId::EyeSegmentation,
        ModelId::SpeechRecognition,
        ModelId::PlaneDetection,
    ] {
        let layers = zoo::build(model);
        g.bench_with_input(
            BenchmarkId::new("ws", model.abbrev()),
            &layers,
            |b, layers| {
                b.iter(|| evaluate_layers(black_box(layers), Dataflow::WeightStationary, &hw));
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_layer, bench_model_eval);
criterion_main!(benches);
