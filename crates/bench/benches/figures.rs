//! Criterion benches timing the figure-regeneration pipelines
//! themselves (one data point per table/figure of the evaluation):
//! these are the "experiments" of the paper, so their cost matters to
//! anyone sweeping design spaces with the harness.
//!
//! The serial/parallel suite entry points are deprecated API-side,
//! but the serial-vs-parallel timing comparison is exactly what this
//! bench measures, so it calls them deliberately.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xrbench_accel::{table5, AcceleratorSystem};
use xrbench_core::figures::{figure6, figure7, figure8};
use xrbench_core::{run_suite_parallel, run_suite_serial, Harness};

fn bench_figure6(c: &mut Criterion) {
    let h = Harness::new();
    c.bench_function("figure6_deep_dive", |b| {
        b.iter(|| figure6(black_box(&h)));
    });
}

fn bench_figure7_point(c: &mut Criterion) {
    let h = Harness::new();
    c.bench_function("figure7_sweep_5_runs", |b| {
        b.iter(|| figure7(black_box(&h), 5));
    });
}

fn bench_figure8(c: &mut Criterion) {
    c.bench_function("figure8_curves", |b| {
        b.iter(figure8);
    });
}

fn bench_full_suite_one_accel(c: &mut Criterion) {
    // One Figure 5 cell group: a full-suite run on one accelerator.
    // Both paths are timed: the serial run is the stable per-job
    // signal, while the parallel run includes worker spawn/teardown
    // (the cost real `run_suite` callers pay per suite).
    let cfg = table5().into_iter().find(|x| x.id == 'A').expect("A");
    let system = AcceleratorSystem::new(cfg, 4096);
    let h = Harness::new();
    c.bench_function("figure5_one_accel_suite_serial", |b| {
        b.iter(|| run_suite_serial(black_box(&h), &system, 3));
    });
    c.bench_function("figure5_one_accel_suite_parallel", |b| {
        b.iter(|| run_suite_parallel(black_box(&h), &system, 3));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_figure6, bench_figure7_point, bench_figure8, bench_full_suite_one_accel);
criterion_main!(benches);
