//! Criterion benches for the benchmark runtime: end-to-end simulated
//! seconds per wall-clock second, per scenario and per scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xrbench_accel::{table5, AcceleratorSystem};
use xrbench_sim::{LatencyGreedy, RoundRobin, SimConfig, Simulator, UniformProvider};
use xrbench_workload::UsageScenario;

fn bench_scenarios(c: &mut Criterion) {
    let cfg = table5().into_iter().find(|x| x.id == 'J').expect("J");
    let system = AcceleratorSystem::new(cfg, 8192);
    let sim = Simulator::new(SimConfig::default());
    let mut g = c.benchmark_group("simulate_1s");
    for scenario in UsageScenario::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(scenario.name().replace(' ', "_")),
            &scenario,
            |b, &s| {
                b.iter(|| sim.run(black_box(&s.spec()), &system, &mut LatencyGreedy::new()));
            },
        );
    }
    g.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let provider = UniformProvider::new(4, 0.002, 0.001);
    let sim = Simulator::new(SimConfig::default());
    let spec = UsageScenario::ArAssistant.spec();
    let mut g = c.benchmark_group("scheduler");
    g.bench_function("latency_greedy", |b| {
        b.iter(|| sim.run(black_box(&spec), &provider, &mut LatencyGreedy::new()));
    });
    g.bench_function("round_robin", |b| {
        b.iter(|| sim.run(black_box(&spec), &provider, &mut RoundRobin::new()));
    });
    g.finish();
}

fn bench_system_construction(c: &mut Criterion) {
    let cfg = table5().into_iter().find(|x| x.id == 'M').expect("M");
    c.bench_function("accelerator_system_build_M_8K", |b| {
        b.iter(|| AcceleratorSystem::new(black_box(cfg.clone()), 8192));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_scenarios, bench_schedulers, bench_system_construction);
criterion_main!(benches);
