//! Prints the benchmark-defining tables as the implementation sees
//! them: Table 1/7 (unit models), Table 2 (usage scenarios), Table 3
//! (input sources), and Table 5 (accelerator configurations).

use xrbench_accel::table5;
use xrbench_models::{registry, InputSource, ModelId};
use xrbench_workload::{source_spec, UsageScenario};

fn main() {
    println!("=== Table 1 / Table 7: XRBench unit tasks and proxy unit models ===");
    println!(
        "{:>3} {:<22} {:<22} {:<28} {:<12} {:<24} {:>9} {:>9}",
        "ID", "Task", "Category", "Instance", "Type", "Quality requirement", "GMACs", "MB params"
    );
    for info in registry::all_models() {
        let q = &info.quality;
        let dir = match q.quality_type {
            xrbench_models::QualityType::HigherIsBetter => "GT",
            xrbench_models::QualityType::LowerIsBetter => "LT",
        };
        println!(
            "{:>3} {:<22} {:<22} {:<28} {:<12} {:<24} {:>9.2} {:>9.2}",
            info.id.abbrev(),
            info.task,
            info.category.to_string(),
            info.instance,
            info.model_type,
            format!("{}, {} {}", q.metric, dir, q.target),
            info.macs() as f64 / 1e9,
            info.param_bytes() as f64 / 1e6,
        );
    }

    println!("\n=== Table 2: usage scenarios and target processing rates (FPS) ===");
    let cols = ModelId::ALL;
    print!("{:<22}", "Scenario");
    for m in cols {
        print!("{:>5}", m.abbrev());
    }
    println!("  Description");
    for s in UsageScenario::ALL {
        let spec = s.spec();
        print!("{:<22}", s.name());
        for m in cols {
            match spec.model(m) {
                Some(sm) => print!("{:>5}", sm.target_fps),
                None => print!("{:>5}", "-"),
            }
        }
        println!("  {}", s.description());
    }
    println!("\ndependencies:");
    for s in UsageScenario::ALL {
        for sm in s.spec().models {
            for d in sm.deps {
                println!(
                    "  {}: {} -> {} ({} dep, trigger probability {})",
                    s.name(),
                    d.upstream.abbrev(),
                    sm.model.abbrev(),
                    d.kind,
                    d.trigger_probability
                );
            }
        }
    }

    println!("\n=== Table 3: input sources ===");
    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "Source", "Rate (FPS)", "Jitter (ms)", "Init (ms)"
    );
    for src in InputSource::ALL {
        let spec = source_spec(src);
        println!(
            "{:<12} {:>14} {:>12} {:>12}",
            src.to_string(),
            spec.fps,
            format!("±{}", spec.jitter_ms),
            spec.init_latency_ms
        );
    }

    println!("\n=== Table 5: accelerator styles ===");
    println!("{:>3} {:>6}  Dataflow", "ID", "Style");
    for cfg in table5() {
        println!(
            "{:>3} {:>6}  {}",
            cfg.id,
            cfg.style.to_string(),
            cfg.dataflow_description()
        );
    }
}
