//! Regenerates Figure 7: the dynamic-cascading deep dive — scores on
//! accelerators B and J (4K PEs) running VR Gaming while the ES → GE
//! trigger probability sweeps over 25%..100%, averaged over 200 runs.

use xrbench_core::figures::figure7;
use xrbench_core::Harness;

fn main() {
    let runs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    eprintln!("running figure 7 sweep ({runs} runs per point)...");
    let rows = figure7(&Harness::new(), runs);

    for (accel, pes) in [('B', 4096), ('J', 4096), ('B', 512), ('J', 512)] {
        println!("\n=== Figure 7: accelerator style {accel} ({pes} PEs, VR Gaming) ===");
        println!(
            "{:>12} {:>9} {:>8} {:>8} {:>8}",
            "cascade-prob", "realtime", "energy", "qoe", "overall"
        );
        for r in rows.iter().filter(|r| r.accel == accel && r.pes == pes) {
            println!(
                "{:>11.0}% {:>9.3} {:>8.3} {:>8.3} {:>8.3}",
                r.probability * 100.0,
                r.realtime,
                r.energy,
                r.qoe,
                r.overall
            );
        }
    }

    // Paper's qualitative observations.
    // At the paper's 4K-PE setting our analytical latencies leave VR
    // Gaming comfortably schedulable on both designs (flat sweeps);
    // the constrained 512-PE variant exposes the same dynamics the
    // paper reports, so the claim checks read that panel.
    let get = |a: char, pes: u64, p: f64| {
        rows.iter()
            .find(|r| r.accel == a && r.pes == pes && (r.probability - p).abs() < 1e-9)
            .expect("row exists")
    };
    println!("\n=== Claim checks (constrained 512-PE variant) ===");
    let j_delta = get('J', 512, 0.25).overall - get('J', 512, 1.0).overall;
    let b_delta = get('B', 512, 1.0).overall - get('B', 512, 0.25).overall;
    let b_rt_delta = get('B', 512, 1.0).realtime - get('B', 512, 0.25).realtime;
    println!(
        "high-score design (J): overall shifts {:.3} from 25% to 100% cascading \
         (paper: ~0.03 decline — stable either way)",
        j_delta
    );
    println!(
        "low-score design (B): overall moves {:.3} and realtime moves {:.3} across the \
         sweep (paper: B absorbs the dynamic load by trading drops vs lateness)",
        b_delta, b_rt_delta
    );
    println!(
        "heterogeneity: J (WS+OS) sustains the eye pipeline at every probability while \
         the monolithic OS design (B) saturates (paper: J is the high-score design)."
    );

    let json = serde_json::to_string_pretty(&rows).expect("serialize");
    std::fs::write("figure7.json", &json).ok();
    eprintln!("\nwrote figure7.json");
}
