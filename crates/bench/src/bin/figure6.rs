//! Regenerates Figure 6: the AR Gaming execution timeline on the 4K-
//! and 8K-PE versions of accelerator J (WS+OS HDA), demonstrating
//! §4.2.2's point that hardware utilization is the wrong metric: the
//! 4K system is *busier* yet drops far more frames and scores worse.

use xrbench_core::figures::figure6;
use xrbench_core::{render_timeline, Harness};

fn main() {
    let data = figure6(&Harness::new());

    for (label, (report, result)) in [("(a) 4K PEs", &data.four_k), ("(b) 8K PEs", &data.eight_k)] {
        println!("=== Figure 6 {label}: AR Gaming on accelerator J ===");
        println!("{}", render_timeline(result, 100));
        println!(
            "scores: realtime={:.2} energy={:.2} qoe={:.2} overall={:.2}",
            report.breakdown.realtime_score,
            report.breakdown.energy_score,
            report.breakdown.qoe_score,
            report.breakdown.overall_score,
        );
        println!(
            "frame drop rate: {:.1}%   mean engine utilization: {:.2}",
            report.drop_rate * 100.0,
            report.mean_utilization
        );
        for m in &report.models {
            println!(
                "  {:>2}: executed {:>2}/{:>2}, dropped {:>2}, missed deadlines {:>2}, mean latency {:6.1} ms",
                m.model, m.executed_frames, m.total_frames, m.dropped_frames,
                m.missed_deadlines, m.mean_latency_ms
            );
        }
        println!();
    }

    let u4 = data.four_k.0.mean_utilization;
    let u8 = data.eight_k.0.mean_utilization;
    let d4 = data.four_k.0.drop_rate * 100.0;
    let d8 = data.eight_k.0.drop_rate * 100.0;
    println!("=== §4.2.2 takeaway ===");
    println!(
        "4K utilization {u4:.2} > 8K utilization {u8:.2}, yet 4K drops {d4:.1}% of frames vs {d8:.1}% — \
         utilization alone would pick the wrong design; the XRBench Score ({:.2} vs {:.2}) does not.",
        data.four_k.0.overall(),
        data.eight_k.0.overall()
    );
}
