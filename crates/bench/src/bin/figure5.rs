//! Regenerates Figure 5: score break-downs for each accelerator style
//! (A–M, Table 5) with 4K and 8K PEs running each usage scenario, plus
//! the cross-scenario average (Figure 5 h), and checks the paper's
//! §4.2.1 / §4.4 qualitative claims against the measured data.

use std::collections::BTreeMap;

use xrbench_core::figures::{figure5, Figure5Row};
use xrbench_core::Harness;

fn main() {
    let repeats: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    eprintln!("running figure 5 sweep (dynamic scenarios averaged over {repeats} seeds)...");
    let rows = figure5(&Harness::new(), repeats);

    // Group rows by (pes, scenario) for figure-shaped printing.
    let mut panels: BTreeMap<(u64, String), Vec<&Figure5Row>> = BTreeMap::new();
    for r in &rows {
        panels
            .entry((r.pes, r.scenario.clone()))
            .or_default()
            .push(r);
    }

    let scenario_order = [
        "Social Interaction A",
        "Social Interaction B",
        "Outdoor Activity A",
        "Outdoor Activity B",
        "AR Assistant",
        "AR Gaming",
        "VR Gaming",
        "Average",
    ];
    for scenario in scenario_order {
        for pes in [4096u64, 8192] {
            let Some(panel) = panels.get(&(pes, scenario.to_string())) else {
                continue;
            };
            println!("\n=== Figure 5: {scenario} — {}K PEs ===", pes / 1024);
            println!(
                "{:>5} {:>5} {:>9} {:>8} {:>8} {:>8}",
                "acc", "style", "realtime", "energy", "qoe", "overall"
            );
            for r in panel {
                println!(
                    "{:>5} {:>5} {:>9.3} {:>8.3} {:>8.3} {:>8.3}",
                    r.accel, r.style, r.realtime, r.energy, r.qoe, r.overall
                );
            }
            let best = panel
                .iter()
                .max_by(|a, b| a.overall.total_cmp(&b.overall))
                .expect("panel non-empty");
            println!("best: accelerator {} ({})", best.accel, best.style);
        }
    }

    // §4.4 claim checks.
    println!("\n=== Claim checks (see EXPERIMENTS.md) ===");
    let best_of = |pes: u64, scenario: &str| -> &Figure5Row {
        panels[&(pes, scenario.to_string())]
            .iter()
            .max_by(|a, b| a.overall.total_cmp(&b.overall))
            .expect("panel")
    };
    let winners_4k: Vec<(String, char)> = scenario_order[..7]
        .iter()
        .map(|s| (s.to_string(), best_of(4096, s).accel))
        .collect();
    let distinct: std::collections::BTreeSet<char> = winners_4k.iter().map(|(_, c)| *c).collect();
    println!(
        "Observation 1 (per-scenario winners differ, 4K): winners {:?} -> {} distinct styles",
        winners_4k,
        distinct.len()
    );
    let assistant_4k = best_of(4096, "AR Assistant").accel;
    let assistant_8k = best_of(8192, "AR Assistant").accel;
    println!(
        "Observation 2 (optimal style depends on chip size): AR Assistant best {assistant_4k} @4K vs {assistant_8k} @8K"
    );
    let multi = |c: char| !('A'..='C').contains(&c);
    println!(
        "Observation 3 (multi-accelerator friendliness): AR Assistant (6 models) winner {} is multi-accel: {}; VR Gaming (3 models) 4K winner {}",
        assistant_4k,
        multi(assistant_4k),
        best_of(4096, "VR Gaming").accel,
    );

    // Machine-readable dump.
    let json = serde_json::to_string_pretty(&rows).expect("serialize");
    std::fs::write("figure5.json", &json).ok();
    eprintln!("\nwrote figure5.json ({} rows)", rows.len());
}
