//! Regenerates appendix Figure 8: the real-time score function over
//! latency for k ∈ {0, 1, 15, 50} with a 1-second slack window,
//! rendered as an ASCII plot.

use xrbench_core::figures::figure8;

fn main() {
    let curves = figure8();

    println!("=== Figure 8: real-time score vs latency (deadline at 1.0 s) ===\n");
    // ASCII plot: 21 score rows (1.0 down to 0.0), 101 latency columns.
    let glyphs = ['0', '1', 'f', 'F']; // k = 0, 1, 15, 50
    let mut grid = vec![vec![' '; 101]; 21];
    for (ci, curve) in curves.iter().enumerate() {
        for (xi, (_, score)) in curve.samples.iter().enumerate() {
            let row = ((1.0 - score) * 20.0).round() as usize;
            grid[row.min(20)][xi] = glyphs[ci];
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = 1.0 - i as f64 / 20.0;
        println!("{label:4.2} |{}", row.iter().collect::<String>());
    }
    println!("      {}^ (deadline)", " ".repeat(50));
    println!("      0.0 {0} 1.0 {0} 2.0  latency (s)", " ".repeat(46));
    println!("\nlegend: 0 -> k=0, 1 -> k=1, f -> k=15 (default), F -> k=50");

    println!("\nscore at selected latencies:");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "latency", "k=0", "k=1", "k=15", "k=50"
    );
    for xi in [0usize, 25, 45, 50, 55, 75, 100] {
        let lat = curves[0].samples[xi].0;
        print!("{lat:>7.2}s");
        for c in &curves {
            print!(" {:>8.4}", c.samples[xi].1);
        }
        println!();
    }
}
