//! The committed fleet-scale gate (PR 4).
//!
//! Runs the shared [`xrbench_bench::fleet_scale`] workload —
//! independent 32-user device sessions grouped by built-in scenario —
//! at 2,048 / 16,384 / **65,536** users, then:
//!
//! 1. **Determinism**: verifies the 65,536-user `FleetReport` of a
//!    1-worker run and an 8-worker run are **byte-identical** (plus a
//!    quick 1/2/8-worker check at 2,048 users), failing otherwise;
//!    a **fault-injection leg** repeats the 2,048-user fleet with the
//!    shared [`xrbench_bench::fleet_scale::fault_process`] enabled and
//!    requires the faulted report to stay byte-identical across
//!    1/2/8 workers, to drop work for both `Preempted` and
//!    `DeviceLost` reasons, and to reproduce the committed
//!    `fault_drops_preempted_2048` / `fault_drops_device_lost_2048`
//!    totals exactly (the fault timelines are seed-derived, so these
//!    are deterministic across machines);
//! 2. **Throughput**: computes events/sec (arrivals + completions per
//!    wall-clock second, best over the gated runs) and fails if the
//!    65,536-user figure falls below the committed
//!    `floor_events_per_sec_65536` read from the repo-root
//!    `BENCH_PR4.json`;
//! 3. **Memory**: reads the process peak RSS (`VmHWM`) — which stays
//!    O(workers × groups) because no per-request vector is ever
//!    retained — and fails if it exceeds the committed `max_rss_mib`.
//!
//! Measurements always land in `target/BENCH_PR4.json`; the committed
//! repo-root baseline is only rewritten when blessing. On failure the
//! gate prints the measured-vs-floor delta, not just a verdict.
//!
//! ```sh
//! cargo run -p xrbench-bench --release --bin fleet_gate --locked
//! ```
//!
//! Environment knobs:
//!
//! * `XRBENCH_BLESS_FLEET=1` — re-derive the committed floor as 10%
//!   of the measured 65,536-user throughput (and the RSS bound as 4×
//!   the measured peak, minimum 256 MiB) and rewrite the repo-root
//!   `BENCH_PR4.json`, including the fault-leg drop totals.

use std::time::Instant;

use xrbench_bench::fleet_scale::{
    faulted_fleet, fleet, provider, FAULTED_USERS, GATED_USERS, USERS_PER_SESSION,
};
use xrbench_fleet::{run_fleet, FleetReport, FleetRunConfig};

/// Fleet sizes measured for context. The last one is the gated size.
const USER_COUNTS: [u32; 3] = [2_048, 16_384, GATED_USERS];
/// Fraction of measured throughput committed as the floor when
/// blessing — loose enough to survive CI runners several times
/// slower than the blessing machine.
const BLESS_FLOOR_FRACTION: f64 = 0.10;
/// Headroom factor for the blessed peak-RSS bound.
const RSS_BLESS_FACTOR: f64 = 4.0;
/// Minimum blessed RSS bound (MiB), so tiny measurements don't
/// produce a bound the allocator's natural jitter would trip.
const RSS_BLESS_MIN_MIB: f64 = 256.0;
/// The committed baseline at the workspace root.
const COMMITTED_BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
/// Where each run's measurements land (never committed).
const MEASURED_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_PR4.json");

struct Measurement {
    users: u32,
    sessions: u64,
    events: u64,
    events_per_sec: f64,
}

/// Extracts `"field": <number>` from a JSON string without building a
/// value tree.
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Peak resident set size of this process in MiB (Linux `VmHWM`).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// One timed fleet run with an explicit worker count.
fn timed_run(users: u32, workers: usize) -> (FleetReport, f64) {
    let spec = fleet(users);
    let system = provider();
    let config = FleetRunConfig {
        workers,
        ..FleetRunConfig::default()
    };
    let start = Instant::now();
    let report = run_fleet(&spec, &system, &config);
    (report, start.elapsed().as_secs_f64())
}

/// One fault-injected fleet run (shared fault process, default `Drop`
/// recovery so every fault surfaces as drop-reason accounting).
fn faulted_run(users: u32, workers: usize) -> FleetReport {
    let spec = faulted_fleet(users);
    let system = provider();
    let config = FleetRunConfig {
        workers,
        ..FleetRunConfig::default()
    };
    run_fleet(&spec, &system, &config)
}

fn main() {
    let bless = std::env::var("XRBENCH_BLESS_FLEET").is_ok_and(|v| v == "1");
    let mut failed = false;

    // 1a. Quick worker-count determinism sweep at the smallest size.
    let small = USER_COUNTS[0];
    let small_json = timed_run(small, 1).0.to_json();
    for workers in [2, 8] {
        let other = timed_run(small, workers).0.to_json();
        if other != small_json {
            eprintln!(
                "fleet_gate: FAIL — {small}-user FleetReport differs between 1 and \
                 {workers} workers"
            );
            failed = true;
        }
    }

    // 1c. Fault-injection leg: the same 2,048-user fleet with the
    // shared fault process enabled. The seed-derived fault timelines
    // are part of replica identity, so the faulted report must be as
    // worker-count-invariant as the fault-free one, and its
    // drop-reason totals are machine-independent constants we can pin
    // in the committed baseline.
    let faulted = faulted_run(FAULTED_USERS, 1);
    let faulted_json = faulted.to_json();
    let mut fault_identical = true;
    for workers in [2, 8] {
        if faulted_run(FAULTED_USERS, workers).to_json() != faulted_json {
            eprintln!(
                "fleet_gate: FAIL — faulted {FAULTED_USERS}-user FleetReport differs \
                 between 1 and {workers} workers"
            );
            fault_identical = false;
            failed = true;
        }
    }
    let fault_preempted = faulted.drops.preempted;
    let fault_device_lost = faulted.drops.device_lost;
    eprintln!(
        "fleet_gate: faulted {FAULTED_USERS:>6} users | {:>5} sessions | drops: \
         {fault_preempted} preempted, {fault_device_lost} device-lost",
        faulted.num_sessions
    );
    if fault_preempted == 0 || fault_device_lost == 0 {
        eprintln!(
            "fleet_gate: FAIL — fault leg exercised no {} drops (the fault process is \
             miscalibrated or fault injection is dead)",
            if fault_preempted == 0 {
                "Preempted"
            } else {
                "DeviceLost"
            }
        );
        failed = true;
    }

    // Context sizes (single rep, default workers).
    let mut results: Vec<Measurement> = Vec::new();
    for &users in &USER_COUNTS[..USER_COUNTS.len() - 1] {
        let (report, elapsed) = timed_run(users, FleetRunConfig::default().workers);
        let eps = report.events as f64 / elapsed;
        eprintln!(
            "fleet_gate: {users:>6} users | {:>5} sessions | {:>9} events | {eps:>12.0} ev/s",
            report.num_sessions, report.events
        );
        results.push(Measurement {
            users,
            sessions: report.num_sessions,
            events: report.events,
            events_per_sec: eps,
        });
    }

    // 1b + 2. The gated size: a 1-worker and an 8-worker run must be
    // byte-identical; both (plus a default-worker run) count toward
    // the throughput measurement.
    let (r1, t1) = timed_run(GATED_USERS, 1);
    let (r8, t8) = timed_run(GATED_USERS, 8);
    let (rd, td) = timed_run(GATED_USERS, FleetRunConfig::default().workers);
    let byte_identical = r1.to_json() == r8.to_json();
    if !byte_identical {
        eprintln!(
            "fleet_gate: FAIL — {GATED_USERS}-user FleetReport differs between 1 and 8 \
             workers (determinism regression)"
        );
        failed = true;
    }
    let gated_events = rd.events;
    let gated_eps = [
        r1.events as f64 / t1,
        r8.events as f64 / t8,
        rd.events as f64 / td,
    ]
    .into_iter()
    .fold(0.0, f64::max);
    eprintln!(
        "fleet_gate: {GATED_USERS:>6} users | {:>5} sessions | {:>9} events | {gated_eps:>12.0} ev/s \
         (gated; best of 1/8/default workers)",
        rd.num_sessions, gated_events
    );
    assert!(
        rd.num_users >= 65_536 && rd.num_sessions >= 2_048,
        "gated fleet must cover >= 65,536 users across >= 2,048 sessions"
    );
    results.push(Measurement {
        users: GATED_USERS,
        sessions: rd.num_sessions,
        events: gated_events,
        events_per_sec: gated_eps,
    });

    // 3. Peak RSS (covers every run above — the most pessimistic
    // moment of the whole process).
    let rss_mib = peak_rss_mib();

    // Committed bounds.
    let committed = std::fs::read_to_string(COMMITTED_BASELINE).ok();
    let committed_floor = committed
        .as_deref()
        .and_then(|t| json_number(t, "floor_events_per_sec_65536"));
    let committed_rss = committed
        .as_deref()
        .and_then(|t| json_number(t, "max_rss_mib"));
    // The faulted drop totals are exact integers — seed-derived, so
    // identical on every machine. Anything but an exact match against
    // the committed baseline is a determinism regression in the fault
    // path (or an intentional change that needs re-blessing).
    if !bless {
        for (field, measured) in [
            ("fault_drops_preempted_2048", fault_preempted),
            ("fault_drops_device_lost_2048", fault_device_lost),
        ] {
            match committed.as_deref().and_then(|t| json_number(t, field)) {
                Some(pinned) if pinned == measured as f64 => {}
                Some(pinned) => {
                    eprintln!(
                        "fleet_gate: FAIL — {field} measured {measured} != committed \
                         {pinned:.0} (fault-path determinism regression, or re-bless \
                         with XRBENCH_BLESS_FLEET=1 after an intentional change)"
                    );
                    failed = true;
                }
                None => {
                    eprintln!(
                        "fleet_gate: FAIL — cannot read {field} from {COMMITTED_BASELINE} \
                         (set XRBENCH_BLESS_FLEET=1 to establish a baseline)"
                    );
                    failed = true;
                }
            }
        }
    }

    let (floor, rss_bound) = if bless {
        (
            // Monotone blessing: a committed throughput floor only
            // ever moves upward. Re-blessing on a slower machine than
            // the one that established the baseline must not quietly
            // weaken the gate.
            (gated_eps * BLESS_FLOOR_FRACTION).max(committed_floor.unwrap_or(0.0)),
            rss_mib.map_or(RSS_BLESS_MIN_MIB, |r| {
                (r * RSS_BLESS_FACTOR).max(RSS_BLESS_MIN_MIB)
            }),
        )
    } else {
        let floor = committed_floor.unwrap_or_else(|| {
            eprintln!(
                "fleet_gate: FAIL — cannot read floor_events_per_sec_65536 from \
                 {COMMITTED_BASELINE} (set XRBENCH_BLESS_FLEET=1 to establish a baseline)"
            );
            std::process::exit(1);
        });
        (floor, committed_rss.unwrap_or(RSS_BLESS_MIN_MIB))
    };

    // Emit BENCH_PR4.json.
    let mut out = String::from("{\n  \"bench\": \"fleet_scale\",\n");
    out.push_str(&format!(
        "  \"users_per_session\": {USERS_PER_SESSION},\n  \"groups\": {},\n  \"scheduler\": \"latency-greedy\",\n",
        rd.num_groups
    ));
    out.push_str("  \"fleets\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"sessions\": {}, \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            m.users,
            m.sessions,
            m.events,
            m.events_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"fault_drops_preempted_2048\": {fault_preempted},\n"
    ));
    out.push_str(&format!(
        "  \"fault_drops_device_lost_2048\": {fault_device_lost},\n"
    ));
    if let Some(rss) = rss_mib {
        out.push_str(&format!("  \"peak_rss_mib\": {rss:.0},\n"));
    }
    out.push_str(&format!("  \"max_rss_mib\": {rss_bound:.0},\n"));
    out.push_str(&format!(
        "  \"floor_events_per_sec_65536\": {floor:.0}\n}}\n"
    ));
    if let Some(dir) = std::path::Path::new(MEASURED_OUT).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(MEASURED_OUT, &out).expect("write measured BENCH_PR4.json");
    if bless {
        std::fs::write(COMMITTED_BASELINE, &out).expect("write committed BENCH_PR4.json");
    }
    println!("{out}");

    // Gate: absolute committed throughput floor, with the delta
    // spelled out either way.
    let delta = (gated_eps / floor - 1.0) * 100.0;
    if gated_eps < floor {
        eprintln!(
            "fleet_gate: FAIL — 65,536-user throughput {gated_eps:.0} ev/s below committed \
             floor {floor:.0} ev/s (measured-vs-floor: {delta:+.1}%)"
        );
        failed = true;
    } else {
        eprintln!(
            "fleet_gate: throughput {gated_eps:.0} ev/s vs floor {floor:.0} ev/s \
             ({delta:+.1}%)"
        );
    }
    // Gate: peak-RSS bound (memory must stay O(workers × groups)).
    if let Some(rss) = rss_mib {
        let rss_delta = (rss / rss_bound - 1.0) * 100.0;
        if rss > rss_bound {
            eprintln!(
                "fleet_gate: FAIL — peak RSS {rss:.0} MiB above committed bound \
                 {rss_bound:.0} MiB (measured-vs-bound: {rss_delta:+.1}%)"
            );
            failed = true;
        } else {
            eprintln!(
                "fleet_gate: peak RSS {rss:.0} MiB vs bound {rss_bound:.0} MiB ({rss_delta:+.1}%)"
            );
        }
    } else {
        eprintln!("fleet_gate: peak RSS unavailable on this platform; memory gate skipped");
    }

    // Mirror the verdicts and measurements into the Actions job
    // summary, so a regression is readable from the run page without
    // downloading artifacts.
    let mut summary = String::from("## Fleet gate (65,536-user fleet throughput & memory)\n\n");
    summary.push_str("| users | sessions | events | events/sec |\n");
    summary.push_str("|---:|---:|---:|---:|\n");
    for m in &results {
        summary.push_str(&format!(
            "| {} | {} | {} | {:.0} |\n",
            m.users, m.sessions, m.events, m.events_per_sec
        ));
    }
    summary.push_str("\n| gate | bound | measured | delta | verdict |\n");
    summary.push_str("|---|---:|---:|---:|---|\n");
    summary.push_str(&format!(
        "| 65,536-user throughput | {floor:.0} ev/s | {gated_eps:.0} ev/s | {delta:+.1}% | {} |\n",
        if gated_eps < floor {
            "❌ FAIL"
        } else {
            "✅ pass"
        }
    ));
    match rss_mib {
        Some(rss) => summary.push_str(&format!(
            "| peak RSS | {rss_bound:.0} MiB | {rss:.0} MiB | {:+.1}% | {} |\n",
            (rss / rss_bound - 1.0) * 100.0,
            if rss > rss_bound {
                "❌ FAIL"
            } else {
                "✅ pass"
            }
        )),
        None => summary.push_str("| peak RSS | — | unavailable | — | skipped |\n"),
    }
    summary.push_str(&format!(
        "| 1-vs-8-worker byte identity | — | — | — | {} |\n",
        if byte_identical {
            "✅ pass"
        } else {
            "❌ FAIL"
        }
    ));
    summary.push_str(&format!(
        "| faulted 1/2/8-worker byte identity | — | — | — | {} |\n",
        if fault_identical {
            "✅ pass"
        } else {
            "❌ FAIL"
        }
    ));
    summary.push_str(&format!(
        "| faulted drops (preempted / device-lost) | nonzero | {fault_preempted} / \
         {fault_device_lost} | — | {} |\n",
        if fault_preempted > 0 && fault_device_lost > 0 {
            "✅ pass"
        } else {
            "❌ FAIL"
        }
    ));
    xrbench_bench::ci::append_step_summary(&summary);

    if failed {
        std::process::exit(1);
    }
    eprintln!("fleet_gate: PASS");
}
