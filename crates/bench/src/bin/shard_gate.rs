//! The committed distributed-sharding gate (PR 9).
//!
//! Certifies the shard-plan layer at **million-user scale**: the
//! shared [`xrbench_bench::fleet_scale`] workload at
//! [`SHARD_GATED_USERS`] (1,048,576) users — 32,768 independent
//! 32-user device sessions — executed twice through the real
//! `xrbench` binary:
//!
//! 1. **single process** (`xrbench run-fleet DOC --out ref.json`), and
//! 2. **distributed** across [`NUM_SHARDS`] child OS processes
//!    (`xrbench run-fleet DOC --shards 8 --out multi.json`), the
//!    coordinator fork/exec-ing one child per shard and merging their
//!    serialized partial states.
//!
//! The gate then enforces:
//!
//! 1. **Byte identity**: `ref.json` and `multi.json` must be
//!    byte-for-byte identical — the shard cut, the process boundary,
//!    and the JSON round trip of every partial accumulator must be
//!    invisible in the report;
//! 2. **Throughput**: the distributed run's events/sec must not fall
//!    below the committed `floor_events_per_sec_1048576` in the
//!    repo-root `BENCH_PR9.json`;
//! 3. **Per-process memory**: one shard child is run standalone
//!    (`--shard 0/8`) and its self-reported peak RSS must stay under
//!    the committed `max_shard_rss_mib` — the streaming fold keeps
//!    each process O(workers × groups) no matter how many users its
//!    shard carries.
//!
//! Measurements land in `target/BENCH_PR9.json`; the committed
//! baseline is only rewritten when blessing. Requires the `xrbench`
//! binary next to this one (CI builds `-p xrbench-cli --release`
//! first) or named by `XRBENCH_BIN`.
//!
//! ```sh
//! cargo build -p xrbench-cli --release --locked
//! cargo run -p xrbench-bench --release --bin shard_gate --locked
//! ```
//!
//! Environment knobs:
//!
//! * `XRBENCH_BLESS_SHARD=1` — re-derive the committed floor as 10%
//!   of the measured distributed throughput (monotone: floors only
//!   move up) and the RSS bound as 4× the measured child peak
//!   (minimum 256 MiB), then rewrite the repo-root `BENCH_PR9.json`.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use xrbench_bench::fleet_scale::{fleet, SHARD_GATED_USERS, USERS_PER_SESSION};
use xrbench_fleet::fleet_to_json;

/// Shards the distributed leg splits the fleet into.
const NUM_SHARDS: u32 = 8;
/// Fraction of measured throughput committed as the floor when
/// blessing — loose enough to survive CI runners several times
/// slower than the blessing machine.
const BLESS_FLOOR_FRACTION: f64 = 0.10;
/// Headroom factor for the blessed per-child peak-RSS bound.
const RSS_BLESS_FACTOR: f64 = 4.0;
/// Minimum blessed RSS bound (MiB).
const RSS_BLESS_MIN_MIB: f64 = 256.0;
/// The committed baseline at the workspace root.
const COMMITTED_BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
/// Where each run's measurements land (never committed).
const MEASURED_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_PR9.json");
/// Scratch directory for the spec document and the two reports.
const SCRATCH_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/shard_gate");

/// Extracts `"field": <number>` from a JSON string without building a
/// value tree.
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Locates the `xrbench` binary: `$XRBENCH_BIN`, or the sibling of
/// this gate binary (both live in `target/release` when CI builds
/// `-p xrbench-cli` first).
fn xrbench_bin() -> Option<PathBuf> {
    if let Ok(explicit) = std::env::var("XRBENCH_BIN") {
        let p = PathBuf::from(explicit);
        return p.is_file().then_some(p);
    }
    let sibling = std::env::current_exe().ok()?.with_file_name("xrbench");
    sibling.is_file().then_some(sibling)
}

/// Runs `xrbench` with the given arguments, returning (stdout,
/// elapsed seconds). Exits the gate on a failed child.
fn run_xrbench(bin: &PathBuf, args: &[&str]) -> (String, f64) {
    let start = Instant::now();
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("shard_gate: cannot spawn {}: {e}", bin.display()));
    let elapsed = start.elapsed().as_secs_f64();
    if !out.status.success() {
        eprintln!(
            "shard_gate: FAIL — `xrbench {}` exited with {}:\n{}",
            args.join(" "),
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        std::process::exit(1);
    }
    (String::from_utf8_lossy(&out.stdout).into_owned(), elapsed)
}

fn main() {
    let bless = std::env::var("XRBENCH_BLESS_SHARD").is_ok_and(|v| v == "1");
    let mut failed = false;

    let Some(bin) = xrbench_bin() else {
        eprintln!(
            "shard_gate: FAIL — no `xrbench` binary found (build it first: \
             `cargo build -p xrbench-cli --release --locked`, or set XRBENCH_BIN)"
        );
        std::process::exit(1);
    };

    // The 1M-user run document: the shared fleet_scale workload on
    // its 16-engine uniform system, exactly what fleet_gate measures
    // at 65,536 users — 16× larger.
    let scratch = PathBuf::from(SCRATCH_DIR);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let doc_path = scratch.join("fleet_1m.json");
    let doc = format!(
        "{{\n  \"kind\": \"fleet\",\n  \"hardware\": {{ \"uniform\": {{ \"engines\": {}, \
         \"latency_s\": {}, \"energy_j\": {} }} }},\n  \"fleet\": {}\n}}\n",
        xrbench_bench::fleet_scale::ENGINES,
        xrbench_bench::fleet_scale::LATENCY_S,
        xrbench_bench::fleet_scale::ENERGY_J,
        fleet_to_json(&fleet(SHARD_GATED_USERS)),
    );
    std::fs::write(&doc_path, &doc).expect("write fleet document");
    let doc_arg = doc_path.to_str().expect("scratch path is utf-8");
    let ref_path = scratch.join("ref.json");
    let multi_path = scratch.join("multi.json");
    let shards_arg = NUM_SHARDS.to_string();

    // Leg 1: the single-process reference run.
    let (_, single_elapsed) = run_xrbench(
        &bin,
        &["run-fleet", doc_arg, "--out", ref_path.to_str().unwrap()],
    );
    let reference = std::fs::read_to_string(&ref_path).expect("read reference report");
    let num_users = json_number(&reference, "num_users").unwrap_or(0.0) as u64;
    let num_sessions = json_number(&reference, "num_sessions").unwrap_or(0.0) as u64;
    let events = json_number(&reference, "events").unwrap_or(0.0) as u64;
    let single_eps = events as f64 / single_elapsed;
    eprintln!(
        "shard_gate: single  | {num_users:>8} users | {num_sessions:>6} sessions | \
         {events:>10} events | {single_eps:>12.0} ev/s"
    );
    assert!(
        num_users >= 1_048_576,
        "gated fleet must cover >= 1,048,576 users, got {num_users}"
    );

    // Leg 2: the distributed run — NUM_SHARDS child processes.
    let (_, multi_elapsed) = run_xrbench(
        &bin,
        &[
            "run-fleet",
            doc_arg,
            "--shards",
            &shards_arg,
            "--out",
            multi_path.to_str().unwrap(),
        ],
    );
    let multi = std::fs::read_to_string(&multi_path).expect("read sharded report");
    let multi_eps = events as f64 / multi_elapsed;
    eprintln!(
        "shard_gate: sharded | {num_users:>8} users | {NUM_SHARDS} procs    | \
         {events:>10} events | {multi_eps:>12.0} ev/s"
    );

    // Gate 1: byte identity across the process boundary.
    let byte_identical = reference == multi;
    if !byte_identical {
        eprintln!(
            "shard_gate: FAIL — the {NUM_SHARDS}-shard multi-process report differs from \
             the single-process report (shard merge is no longer exact)"
        );
        failed = true;
    }

    // Gate 3 input: one standalone shard child, for its self-reported
    // per-process peak RSS.
    let (child_state, child_elapsed) = run_xrbench(
        &bin,
        &["run-fleet", doc_arg, "--shard", &format!("0/{NUM_SHARDS}")],
    );
    let child_rss = json_number(&child_state, "peak_rss_mib");
    match child_rss {
        Some(rss) => eprintln!(
            "shard_gate: child 0/{NUM_SHARDS} | peak RSS {rss:.1} MiB | {child_elapsed:.1} s"
        ),
        None => eprintln!(
            "shard_gate: child 0/{NUM_SHARDS} reported no peak RSS (non-Linux?); memory \
             gate skipped"
        ),
    }

    // Committed bounds.
    let committed = std::fs::read_to_string(COMMITTED_BASELINE).ok();
    let committed_floor = committed
        .as_deref()
        .and_then(|t| json_number(t, "floor_events_per_sec_1048576"));
    let committed_rss = committed
        .as_deref()
        .and_then(|t| json_number(t, "max_shard_rss_mib"));
    let (floor, rss_bound) = if bless {
        (
            // Monotone blessing: the committed floor only moves up.
            (multi_eps * BLESS_FLOOR_FRACTION).max(committed_floor.unwrap_or(0.0)),
            child_rss.map_or(RSS_BLESS_MIN_MIB, |r| {
                (r * RSS_BLESS_FACTOR).max(RSS_BLESS_MIN_MIB)
            }),
        )
    } else {
        let floor = committed_floor.unwrap_or_else(|| {
            eprintln!(
                "shard_gate: FAIL — cannot read floor_events_per_sec_1048576 from \
                 {COMMITTED_BASELINE} (set XRBENCH_BLESS_SHARD=1 to establish a baseline)"
            );
            std::process::exit(1);
        });
        (floor, committed_rss.unwrap_or(RSS_BLESS_MIN_MIB))
    };

    // Emit BENCH_PR9.json.
    let mut out = String::from("{\n  \"bench\": \"shard_scale\",\n");
    out.push_str(&format!(
        "  \"users\": {num_users},\n  \"users_per_session\": {USERS_PER_SESSION},\n  \
         \"sessions\": {num_sessions},\n  \"shards\": {NUM_SHARDS},\n  \
         \"events\": {events},\n"
    ));
    out.push_str(&format!(
        "  \"single_process_events_per_sec\": {single_eps:.0},\n  \
         \"sharded_events_per_sec\": {multi_eps:.0},\n"
    ));
    if let Some(rss) = child_rss {
        out.push_str(&format!("  \"shard_child_peak_rss_mib\": {rss:.0},\n"));
    }
    out.push_str(&format!("  \"max_shard_rss_mib\": {rss_bound:.0},\n"));
    out.push_str(&format!(
        "  \"floor_events_per_sec_1048576\": {floor:.0}\n}}\n"
    ));
    if let Some(dir) = std::path::Path::new(MEASURED_OUT).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(MEASURED_OUT, &out).expect("write measured BENCH_PR9.json");
    if bless {
        std::fs::write(COMMITTED_BASELINE, &out).expect("write committed BENCH_PR9.json");
    }
    println!("{out}");

    // Gate 2: the distributed throughput floor.
    let delta = (multi_eps / floor - 1.0) * 100.0;
    if multi_eps < floor {
        eprintln!(
            "shard_gate: FAIL — sharded 1M-user throughput {multi_eps:.0} ev/s below \
             committed floor {floor:.0} ev/s (measured-vs-floor: {delta:+.1}%)"
        );
        failed = true;
    } else {
        eprintln!(
            "shard_gate: throughput {multi_eps:.0} ev/s vs floor {floor:.0} ev/s ({delta:+.1}%)"
        );
    }
    // Gate 3: per-child peak RSS.
    if let Some(rss) = child_rss {
        let rss_delta = (rss / rss_bound - 1.0) * 100.0;
        if rss > rss_bound {
            eprintln!(
                "shard_gate: FAIL — shard-child peak RSS {rss:.0} MiB above committed \
                 bound {rss_bound:.0} MiB (measured-vs-bound: {rss_delta:+.1}%)"
            );
            failed = true;
        } else {
            eprintln!(
                "shard_gate: child peak RSS {rss:.0} MiB vs bound {rss_bound:.0} MiB \
                 ({rss_delta:+.1}%)"
            );
        }
    }

    // Mirror the verdicts into the Actions job summary.
    let mut summary = String::from(
        "## Shard gate (1,048,576-user distributed fleet)\n\n\
         | leg | processes | events | events/sec |\n|---|---:|---:|---:|\n",
    );
    summary.push_str(&format!(
        "| single | 1 | {events} | {single_eps:.0} |\n\
         | sharded | {NUM_SHARDS} | {events} | {multi_eps:.0} |\n"
    ));
    summary.push_str("\n| gate | bound | measured | delta | verdict |\n|---|---:|---:|---:|---|\n");
    summary.push_str(&format!(
        "| 1-vs-{NUM_SHARDS}-process byte identity | — | — | — | {} |\n",
        if byte_identical {
            "✅ pass"
        } else {
            "❌ FAIL"
        }
    ));
    summary.push_str(&format!(
        "| sharded throughput | {floor:.0} ev/s | {multi_eps:.0} ev/s | {delta:+.1}% | {} |\n",
        if multi_eps < floor {
            "❌ FAIL"
        } else {
            "✅ pass"
        }
    ));
    match child_rss {
        Some(rss) => summary.push_str(&format!(
            "| shard-child peak RSS | {rss_bound:.0} MiB | {rss:.0} MiB | {:+.1}% | {} |\n",
            (rss / rss_bound - 1.0) * 100.0,
            if rss > rss_bound {
                "❌ FAIL"
            } else {
                "✅ pass"
            }
        )),
        None => summary.push_str("| shard-child peak RSS | — | unavailable | — | skipped |\n"),
    }
    xrbench_bench::ci::append_step_summary(&summary);

    if failed {
        std::process::exit(1);
    }
    eprintln!("shard_gate: PASS");
}
