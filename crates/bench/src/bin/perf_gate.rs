//! The committed performance gate for the simulator core (PR 8).
//!
//! Measures end-to-end event throughput (arrivals + completions per
//! wall-clock second) of `Simulator::run_session` on mixed-scenario
//! sessions of 1 / 32 / 256 / 1024 concurrent users, compares the
//! calendar-queue engine against the pre-refactor reference loop,
//! writes the measurements to `target/BENCH_PR8.json` (the committed
//! repo-root `BENCH_PR8.json` is only rewritten when blessing), and
//! **fails** (non-zero exit) if:
//!
//! * 1024-user throughput falls below the committed floor read from
//!   the repository's `BENCH_PR8.json` (an absolute, deliberately
//!   conservative events/sec bound so slower CI hardware does not
//!   flake),
//! * that committed floor itself sits below **3×** the PR 3 heap
//!   engine's committed floor (`BENCH_PR3.json`) — the tentpole bound
//!   this PR committed to, enforced so the baseline can never be
//!   silently re-blessed downward, or
//! * the measured speedup over the reference loop at 1024 users drops
//!   below 5× (the machine-independent bound PR 3 committed to).
//!
//! ```sh
//! cargo run -p xrbench-bench --release --bin perf_gate
//! ```
//!
//! Paths are resolved relative to the workspace root, so the binary
//! works from any working directory.
//!
//! Environment knobs:
//!
//! * `XRBENCH_PERF_SKIP_NAIVE=1` — skip the slow reference-loop runs
//!   (the absolute floor is still enforced).
//! * `XRBENCH_BLESS_PERF=1` — re-derive the committed floor as the
//!   larger of 10% of the measured 1024-user throughput and 3× the
//!   PR 3 floor, and rewrite the repo-root `BENCH_PR8.json` baseline.

use std::time::Instant;

use xrbench_bench::session_scale::{mixed_session, provider, ENGINES, LATENCY_S, STAGGER_S};
use xrbench_sim::{LatencyGreedy, SimConfig, Simulator};

/// Session sizes the gate tracks. The last one is the gated size.
const USER_COUNTS: [u32; 4] = [1, 32, 256, 1024];
/// Machine-independent bound: new engine vs reference loop at 1024
/// users.
const NAIVE_SPEEDUP_FLOOR: f64 = 5.0;
/// Fraction of measured throughput committed as the absolute floor
/// when blessing. Deliberately loose: the floor must survive CI
/// runners several times slower than the blessing machine while still
/// sitting well above what the pre-refactor loop could reach.
const BLESS_FLOOR_FRACTION: f64 = 0.10;
/// The tentpole bound: the PR 8 floor must be at least this multiple
/// of the PR 3 heap engine's committed floor.
const TENTPOLE_SPEEDUP: f64 = 3.0;
/// The committed baseline at the workspace root.
const COMMITTED_BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
/// The PR 3 heap-engine baseline the ≥3× tentpole floor anchors to.
const PR3_BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
/// Where each run's measurements land (never committed).
const MEASURED_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_PR8.json");

struct Measurement {
    users: u32,
    events: u64,
    events_per_sec: f64,
    naive_events_per_sec: Option<f64>,
}

/// Runs `f` `reps` times and returns (events of one run, best
/// events/sec). Events = arrivals + completions: the discrete-event
/// work the engine actually processes.
fn measure(reps: u32, arrivals: u64, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let completions = f();
        let elapsed = start.elapsed().as_secs_f64();
        events = arrivals + completions;
        best = best.min(elapsed / events as f64);
    }
    (events, 1.0 / best)
}

/// Extracts `"field": <number>` from a JSON string without building a
/// value tree.
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let skip_naive = std::env::var("XRBENCH_PERF_SKIP_NAIVE").is_ok_and(|v| v == "1");
    let bless = std::env::var("XRBENCH_BLESS_PERF").is_ok_and(|v| v == "1");
    let provider = provider();
    let config = SimConfig::default();
    let sim = Simulator::new(config);

    let mut results: Vec<Measurement> = Vec::new();
    for users in USER_COUNTS {
        let session = mixed_session(users);
        let arrivals = session.generate(config.seed, config.duration_s).len() as u64;
        // More repetitions where runs are cheap, fewer at scale.
        let reps = if users >= 256 { 2 } else { 5 };
        let (events, events_per_sec) = measure(reps, arrivals, || {
            let r = sim.run_session(&session, &provider, &mut LatencyGreedy::new());
            r.per_user.iter().map(|(_, u)| u.records.len() as u64).sum()
        });
        let naive_events_per_sec = if skip_naive {
            None
        } else {
            let naive_reps = if users >= 256 { 1 } else { 2 };
            let (_, naive_eps) = measure(naive_reps, arrivals, || {
                let r = sim.run_session_reference(&session, &provider, &mut LatencyGreedy::new());
                r.per_user.iter().map(|(_, u)| u.records.len() as u64).sum()
            });
            Some(naive_eps)
        };
        eprintln!(
            "perf_gate: {users:>5} users | {events:>8} events | {events_per_sec:>12.0} ev/s{}",
            match naive_events_per_sec {
                Some(n) => format!(
                    " | naive {n:>12.0} ev/s | speedup {:.1}x",
                    events_per_sec / n
                ),
                None => String::new(),
            }
        );
        results.push(Measurement {
            users,
            events,
            events_per_sec,
            naive_events_per_sec,
        });
    }

    let gated = results.last().expect("measured at least one session");
    let committed_floor = std::fs::read_to_string(COMMITTED_BASELINE)
        .ok()
        .and_then(|text| json_number(&text, "floor_events_per_sec_1024"));
    // The PR 3 anchor: the tentpole requires the PR 8 floor to sit at
    // least 3× above it, whatever machine blessed either baseline.
    let pr3_floor = std::fs::read_to_string(PR3_BASELINE)
        .ok()
        .and_then(|text| json_number(&text, "floor_events_per_sec_1024"))
        .unwrap_or_else(|| {
            eprintln!(
                "perf_gate: FAIL — cannot read floor_events_per_sec_1024 from \
                 {PR3_BASELINE} (the 3x tentpole floor anchors to it)"
            );
            std::process::exit(1);
        });
    let tentpole_floor = pr3_floor * TENTPOLE_SPEEDUP;
    let floor = if bless {
        (gated.events_per_sec * BLESS_FLOOR_FRACTION).max(tentpole_floor)
    } else {
        // The committed floor is the gate; silently inventing one
        // from the current measurement would make the gate vacuous.
        committed_floor.unwrap_or_else(|| {
            eprintln!(
                "perf_gate: FAIL — cannot read floor_events_per_sec_1024 from \
                 {COMMITTED_BASELINE} (set XRBENCH_BLESS_PERF=1 to establish \
                 a new baseline)"
            );
            std::process::exit(1);
        })
    };

    // Emit BENCH_PR8.json.
    let mut out = String::from("{\n  \"bench\": \"session_scale\",\n");
    out.push_str(&format!(
        "  \"engine\": \"calendar-queue\",\n  \"pr3_floor_events_per_sec_1024\": {pr3_floor:.0},\n  \"tentpole_speedup\": {TENTPOLE_SPEEDUP},\n",
    ));
    out.push_str(&format!(
        "  \"engines\": {ENGINES},\n  \"latency_ms\": {},\n  \"stagger_ms\": {},\n  \"scheduler\": \"latency-greedy\",\n",
        LATENCY_S * 1e3,
        STAGGER_S * 1e3,
    ));
    out.push_str("  \"sessions\": [\n");
    for (i, m) in results.iter().enumerate() {
        let naive = match m.naive_events_per_sec {
            Some(n) => format!(
                ", \"naive_events_per_sec\": {:.0}, \"speedup\": {:.2}",
                n,
                m.events_per_sec / n
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"users\": {}, \"events\": {}, \"events_per_sec\": {:.0}{}}}{}\n",
            m.users,
            m.events,
            m.events_per_sec,
            naive,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"floor_events_per_sec_1024\": {floor:.0}\n}}\n"
    ));
    if let Some(dir) = std::path::Path::new(MEASURED_OUT).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(MEASURED_OUT, &out).expect("write measured BENCH_PR8.json");
    if bless {
        // Only blessing touches the committed baseline.
        std::fs::write(COMMITTED_BASELINE, &out).expect("write committed BENCH_PR8.json");
    }
    println!("{out}");

    // Gate 0: the committed floor must embody the tentpole bound —
    // at least 3× the PR 3 heap-engine floor.
    let mut failed = false;
    if floor < tentpole_floor {
        eprintln!(
            "perf_gate: FAIL — committed floor {floor:.0} ev/s below the tentpole bound \
             {tentpole_floor:.0} ev/s ({TENTPOLE_SPEEDUP}x the PR 3 floor {pr3_floor:.0})"
        );
        failed = true;
    }
    // Gate 1: absolute committed floor, with the measured-vs-floor
    // delta spelled out either way.
    let delta = (gated.events_per_sec / floor - 1.0) * 100.0;
    if gated.events_per_sec < floor {
        eprintln!(
            "perf_gate: FAIL — 1024-user throughput {:.0} ev/s below committed floor {:.0} ev/s \
             (measured-vs-floor: {delta:+.1}%)",
            gated.events_per_sec, floor
        );
        failed = true;
    } else {
        eprintln!(
            "perf_gate: throughput {:.0} ev/s vs floor {floor:.0} ev/s ({delta:+.1}%)",
            gated.events_per_sec
        );
    }
    // Gate 2: machine-independent speedup over the reference loop.
    if let Some(naive) = gated.naive_events_per_sec {
        let speedup = gated.events_per_sec / naive;
        if speedup < NAIVE_SPEEDUP_FLOOR {
            eprintln!(
                "perf_gate: FAIL — speedup over reference loop {speedup:.2}x below \
                 {NAIVE_SPEEDUP_FLOOR}x (measured-vs-floor: {:+.1}%)",
                (speedup / NAIVE_SPEEDUP_FLOOR - 1.0) * 100.0
            );
            failed = true;
        }
    }
    // Mirror the verdict and the measurement table into the Actions
    // job summary, so a regression is readable from the run page
    // without downloading artifacts.
    let mut summary = String::from("## Perf gate (1024-user session throughput)\n\n");
    summary.push_str("| users | events | events/sec | reference ev/s | speedup |\n");
    summary.push_str("|---:|---:|---:|---:|---:|\n");
    for m in &results {
        let (naive, speedup) = match m.naive_events_per_sec {
            Some(n) => (format!("{n:.0}"), format!("{:.1}x", m.events_per_sec / n)),
            None => ("—".to_string(), "—".to_string()),
        };
        summary.push_str(&format!(
            "| {} | {} | {:.0} | {naive} | {speedup} |\n",
            m.users, m.events, m.events_per_sec
        ));
    }
    summary.push_str("\n| gate | floor | measured | delta | verdict |\n");
    summary.push_str("|---|---:|---:|---:|---|\n");
    summary.push_str(&format!(
        "| committed floor ≥ 3× PR 3 floor | {tentpole_floor:.0} ev/s | {floor:.0} ev/s | {:+.1}% | {} |\n",
        (floor / tentpole_floor - 1.0) * 100.0,
        if floor < tentpole_floor {
            "❌ FAIL"
        } else {
            "✅ pass"
        }
    ));
    summary.push_str(&format!(
        "| 1024-user throughput | {floor:.0} ev/s | {:.0} ev/s | {delta:+.1}% | {} |\n",
        gated.events_per_sec,
        if gated.events_per_sec < floor {
            "❌ FAIL"
        } else {
            "✅ pass"
        }
    ));
    if let Some(naive) = gated.naive_events_per_sec {
        let speedup = gated.events_per_sec / naive;
        summary.push_str(&format!(
            "| speedup over reference loop | {NAIVE_SPEEDUP_FLOOR:.1}x | {speedup:.2}x | {:+.1}% | {} |\n",
            (speedup / NAIVE_SPEEDUP_FLOOR - 1.0) * 100.0,
            if speedup < NAIVE_SPEEDUP_FLOOR { "❌ FAIL" } else { "✅ pass" }
        ));
    }
    xrbench_bench::ci::append_step_summary(&summary);

    if failed {
        std::process::exit(1);
    }
    eprintln!("perf_gate: PASS (floor {floor:.0} ev/s)");
}
