//! # xrbench-bench
//!
//! Figure/table regeneration binaries and Criterion benchmarks for the
//! XRBench reproduction.
//!
//! Binaries (run with `cargo run -p xrbench-bench --release --bin <name>`):
//!
//! * `figure5` — score breakdowns for accelerators A–M × {4K, 8K} PEs
//!   across all usage scenarios (Figure 5 a–h), plus the §4.2.1/§4.4
//!   claim checks.
//! * `figure6` — the AR Gaming timeline deep dive on accelerator J
//!   (Figure 6) demonstrating why utilization is the wrong metric.
//! * `figure7` — the ES→GE cascading-probability sweep on accelerators
//!   B and J (Figure 7).
//! * `figure8` — the real-time score sigmoid for k ∈ {0, 1, 15, 50}
//!   (appendix Figure 8).
//! * `tables` — Tables 1/7 (models), 2 (scenarios), 3 (input sources),
//!   and 5 (accelerators) as the implementation sees them.
//! * `perf_gate` — the committed simulator-core performance gate:
//!   measures 1/32/256/1024-user session event throughput against the
//!   pre-refactor reference loop, writes `BENCH_PR3.json`, and exits
//!   non-zero on regression below the committed floor.
//! * `fleet_gate` — the committed fleet-scale gate: runs a
//!   ≥65,536-user / ≥2,048-session fleet, verifies the 1-worker and
//!   8-worker reports are byte-identical, writes `BENCH_PR4.json`,
//!   and exits non-zero below the committed events/sec floor or above
//!   the committed peak-RSS bound.
//! * `shard_gate` — the committed distributed-sharding gate: runs a
//!   1,048,576-user fleet once in a single process and once split
//!   across 8 shard child processes through the real `xrbench`
//!   binary, verifies the reports are byte-identical, writes
//!   `BENCH_PR9.json`, and exits non-zero below the committed
//!   distributed events/sec floor or above the committed per-child
//!   peak-RSS bound.
//!
//! Criterion benches (`cargo bench -p xrbench-bench`):
//!
//! * `costmodel` — analytical-model evaluation throughput.
//! * `runtime` — end-to-end simulation throughput per scenario.
//! * `figures` — full figure-regeneration timings.
//! * `ablations` — scheduler, bandwidth, and drop-policy ablations
//!   called out in DESIGN.md.
//! * `session_scale` — multi-user session throughput (the interactive
//!   counterpart of `perf_gate`).
//! * `fleet_scale` — fleet execution throughput (the interactive
//!   counterpart of `fleet_gate`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a score table row of four unit scores plus overall.
pub fn fmt_scores(rt: f64, en: f64, qoe: f64, overall: f64) -> String {
    format!("rt={rt:5.2} en={en:5.2} qoe={qoe:5.2} overall={overall:5.2}")
}

/// CI affordances shared by the gate binaries.
pub mod ci {
    use std::io::Write as _;

    /// Appends a markdown fragment to the GitHub Actions job summary
    /// (the file named by `$GITHUB_STEP_SUMMARY`), so gate verdicts
    /// and their measured-vs-floor deltas are readable straight from
    /// the run page. A silent no-op outside Actions or when the file
    /// cannot be written — the gate's stderr output remains the
    /// source of truth.
    pub fn append_step_summary(markdown: &str) {
        let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            let _ = writeln!(f, "{markdown}");
        }
    }
}

/// The PR-3 session-scale workload, shared by the `perf_gate` gate
/// binary and the `session_scale` Criterion bench so interactive
/// profiling measures exactly what the gate enforces.
pub mod session_scale {
    use xrbench_sim::UniformProvider;
    use xrbench_workload::{ScenarioCatalog, ScenarioSpec, SessionSpec};

    /// Engines in the shared system: enough for real dispatch
    /// pressure without the run degenerating into pure drops.
    pub const ENGINES: usize = 16;
    /// Uniform per-inference latency (seconds).
    pub const LATENCY_S: f64 = 0.001;
    /// Uniform per-inference energy (joules).
    pub const ENERGY_J: f64 = 0.001;
    /// Per-user join stagger (seconds).
    pub const STAGGER_S: f64 = 0.002;

    /// The evaluated system for the session-scale workload.
    pub fn provider() -> UniformProvider {
        UniformProvider::new(ENGINES, LATENCY_S, ENERGY_J)
    }

    /// `users` concurrent tenants cycling through all built-in
    /// scenarios, joining [`STAGGER_S`] apart.
    pub fn mixed_session(users: u32) -> SessionSpec {
        let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
        SessionSpec::mixed(format!("scale-{users}"), &specs, users, STAGGER_S)
    }
}

/// The PR-4 fleet-scale workload, shared by the `fleet_gate` gate
/// binary and the `fleet_scale` Criterion bench so interactive
/// profiling measures exactly what the gate enforces: independent
/// 32-user devices, grouped by built-in scenario, on 16-engine
/// systems.
pub mod fleet_scale {
    use xrbench_fleet::FleetSpec;
    use xrbench_sim::{FaultProcess, ThrottleSpec, UniformProvider};
    use xrbench_workload::{ScenarioCatalog, SessionSpec};

    /// Engines per device (same system as [`crate::session_scale`]).
    pub const ENGINES: usize = 16;
    /// Uniform per-inference latency (seconds).
    pub const LATENCY_S: f64 = 0.001;
    /// Uniform per-inference energy (joules).
    pub const ENERGY_J: f64 = 0.001;
    /// Concurrent users per device session.
    pub const USERS_PER_SESSION: u32 = 32;
    /// Per-user join stagger within a device session (seconds).
    pub const STAGGER_S: f64 = 0.002;
    /// The gated fleet size: 65,536 users across 2,048 sessions.
    pub const GATED_USERS: u32 = 65_536;
    /// The distributed-sharding gate's fleet size: 1,048,576 users
    /// across 32,768 sessions (`shard_gate`, PR 9).
    pub const SHARD_GATED_USERS: u32 = 1_048_576;
    /// The fault-injection leg's fleet size (kept small: the leg pins
    /// exact drop-reason totals, not throughput).
    pub const FAULTED_USERS: u32 = 2_048;

    /// The evaluated per-device system.
    pub fn provider() -> UniformProvider {
        UniformProvider::new(ENGINES, LATENCY_S, ENERGY_J)
    }

    /// The availability process applied to every device group in the
    /// gate's fault-injection leg: moderate churn plus preemption and
    /// a thermal-throttle wave, intense enough that both `Preempted`
    /// and `DeviceLost` drop reasons are guaranteed nonzero at
    /// [`FAULTED_USERS`] scale.
    pub fn fault_process() -> FaultProcess {
        FaultProcess {
            failure_rate_per_s: 0.5,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 1.0,
            mean_preemption_s: 0.02,
            throttle: Some(ThrottleSpec {
                period_s: 1.0,
                duty: 0.3,
                factor: 0.5,
            }),
        }
    }

    fn build(total_users: u32, faults: Option<FaultProcess>) -> FleetSpec {
        assert!(
            total_users > 0 && total_users.is_multiple_of(USERS_PER_SESSION),
            "fleet size must be a positive multiple of {USERS_PER_SESSION}, got {total_users}"
        );
        let sessions = total_users / USERS_PER_SESSION;
        let catalog = ScenarioCatalog::builtin();
        let n = catalog.iter().count() as u32;
        let label = if faults.is_some() {
            "faulted-fleet"
        } else {
            "fleet"
        };
        let mut fleet = FleetSpec::new(format!("{label}-{total_users}"));
        for (i, spec) in catalog.iter().enumerate() {
            let i = i as u32;
            let replicas = sessions / n + u32::from(i < sessions % n);
            if replicas == 0 {
                continue;
            }
            let session = SessionSpec::uniform(
                format!("{}-device", spec.name),
                spec.clone(),
                USERS_PER_SESSION,
                STAGGER_S,
            );
            fleet = match faults {
                Some(f) => fleet.group_faulted(spec.name.clone(), session, replicas, f),
                None => fleet.group(spec.name.clone(), session, replicas),
            };
        }
        fleet
    }

    /// A fleet of `total_users / 32` independent 32-user device
    /// sessions, split into one device group per built-in scenario
    /// (sessions distributed as evenly as group order allows).
    ///
    /// # Panics
    ///
    /// Panics if `total_users` is not a positive multiple of
    /// [`USERS_PER_SESSION`].
    pub fn fleet(total_users: u32) -> FleetSpec {
        build(total_users, None)
    }

    /// [`fleet`] with [`fault_process`] applied to every device
    /// group, for the gate's fault-injection leg.
    ///
    /// # Panics
    ///
    /// Panics if `total_users` is not a positive multiple of
    /// [`USERS_PER_SESSION`].
    pub fn faulted_fleet(total_users: u32) -> FleetSpec {
        build(total_users, Some(fault_process()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_workload_hits_the_gated_size() {
        let f = fleet_scale::fleet(fleet_scale::GATED_USERS);
        assert_eq!(f.total_users(), 65_536);
        assert_eq!(f.total_sessions(), 2_048);
        assert_eq!(f.num_groups(), 7);
    }

    #[test]
    fn faulted_fleet_applies_the_fault_process_to_every_group() {
        let f = fleet_scale::faulted_fleet(fleet_scale::FAULTED_USERS);
        assert_eq!(f.total_users(), 2_048);
        assert!(f
            .groups
            .iter()
            .all(|g| g.faults == Some(fleet_scale::fault_process())));
    }

    #[test]
    fn small_fleets_skip_empty_groups() {
        let f = fleet_scale::fleet(fleet_scale::USERS_PER_SESSION * 3);
        assert_eq!(f.total_sessions(), 3);
        assert_eq!(f.num_groups(), 3);
    }

    #[test]
    fn fmt_scores_is_stable() {
        assert_eq!(
            fmt_scores(1.0, 0.5, 0.25, 0.125),
            "rt= 1.00 en= 0.50 qoe= 0.25 overall= 0.12"
        );
    }
}
