//! # xrbench-bench
//!
//! Figure/table regeneration binaries and Criterion benchmarks for the
//! XRBench reproduction.
//!
//! Binaries (run with `cargo run -p xrbench-bench --release --bin <name>`):
//!
//! * `figure5` — score breakdowns for accelerators A–M × {4K, 8K} PEs
//!   across all usage scenarios (Figure 5 a–h), plus the §4.2.1/§4.4
//!   claim checks.
//! * `figure6` — the AR Gaming timeline deep dive on accelerator J
//!   (Figure 6) demonstrating why utilization is the wrong metric.
//! * `figure7` — the ES→GE cascading-probability sweep on accelerators
//!   B and J (Figure 7).
//! * `figure8` — the real-time score sigmoid for k ∈ {0, 1, 15, 50}
//!   (appendix Figure 8).
//! * `tables` — Tables 1/7 (models), 2 (scenarios), 3 (input sources),
//!   and 5 (accelerators) as the implementation sees them.
//! * `perf_gate` — the committed simulator-core performance gate:
//!   measures 1/32/256/1024-user session event throughput against the
//!   pre-refactor reference loop, writes `BENCH_PR3.json`, and exits
//!   non-zero on regression below the committed floor.
//!
//! Criterion benches (`cargo bench -p xrbench-bench`):
//!
//! * `costmodel` — analytical-model evaluation throughput.
//! * `runtime` — end-to-end simulation throughput per scenario.
//! * `figures` — full figure-regeneration timings.
//! * `ablations` — scheduler, bandwidth, and drop-policy ablations
//!   called out in DESIGN.md.
//! * `session_scale` — multi-user session throughput (the interactive
//!   counterpart of `perf_gate`).

/// Formats a score table row of four unit scores plus overall.
pub fn fmt_scores(rt: f64, en: f64, qoe: f64, overall: f64) -> String {
    format!("rt={rt:5.2} en={en:5.2} qoe={qoe:5.2} overall={overall:5.2}")
}

/// The PR-3 session-scale workload, shared by the `perf_gate` gate
/// binary and the `session_scale` Criterion bench so interactive
/// profiling measures exactly what the gate enforces.
pub mod session_scale {
    use xrbench_sim::UniformProvider;
    use xrbench_workload::{ScenarioCatalog, ScenarioSpec, SessionSpec};

    /// Engines in the shared system: enough for real dispatch
    /// pressure without the run degenerating into pure drops.
    pub const ENGINES: usize = 16;
    /// Uniform per-inference latency (seconds).
    pub const LATENCY_S: f64 = 0.001;
    /// Uniform per-inference energy (joules).
    pub const ENERGY_J: f64 = 0.001;
    /// Per-user join stagger (seconds).
    pub const STAGGER_S: f64 = 0.002;

    /// The evaluated system for the session-scale workload.
    pub fn provider() -> UniformProvider {
        UniformProvider::new(ENGINES, LATENCY_S, ENERGY_J)
    }

    /// `users` concurrent tenants cycling through all built-in
    /// scenarios, joining [`STAGGER_S`] apart.
    pub fn mixed_session(users: u32) -> SessionSpec {
        let specs: Vec<ScenarioSpec> = ScenarioCatalog::builtin().iter().cloned().collect();
        SessionSpec::mixed(format!("scale-{users}"), &specs, users, STAGGER_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scores_is_stable() {
        assert_eq!(
            fmt_scores(1.0, 0.5, 0.25, 0.125),
            "rt= 1.00 en= 0.50 qoe= 0.25 overall= 0.12"
        );
    }
}
