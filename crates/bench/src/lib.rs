//! # xrbench-bench
//!
//! Figure/table regeneration binaries and Criterion benchmarks for the
//! XRBench reproduction.
//!
//! Binaries (run with `cargo run -p xrbench-bench --release --bin <name>`):
//!
//! * `figure5` — score breakdowns for accelerators A–M × {4K, 8K} PEs
//!   across all usage scenarios (Figure 5 a–h), plus the §4.2.1/§4.4
//!   claim checks.
//! * `figure6` — the AR Gaming timeline deep dive on accelerator J
//!   (Figure 6) demonstrating why utilization is the wrong metric.
//! * `figure7` — the ES→GE cascading-probability sweep on accelerators
//!   B and J (Figure 7).
//! * `figure8` — the real-time score sigmoid for k ∈ {0, 1, 15, 50}
//!   (appendix Figure 8).
//! * `tables` — Tables 1/7 (models), 2 (scenarios), 3 (input sources),
//!   and 5 (accelerators) as the implementation sees them.
//!
//! Criterion benches (`cargo bench -p xrbench-bench`):
//!
//! * `costmodel` — analytical-model evaluation throughput.
//! * `runtime` — end-to-end simulation throughput per scenario.
//! * `figures` — full figure-regeneration timings.
//! * `ablations` — scheduler, bandwidth, and drop-policy ablations
//!   called out in DESIGN.md.

/// Formats a score table row of four unit scores plus overall.
pub fn fmt_scores(rt: f64, en: f64, qoe: f64, overall: f64) -> String {
    format!("rt={rt:5.2} en={en:5.2} qoe={qoe:5.2} overall={overall:5.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scores_is_stable() {
        assert_eq!(
            fmt_scores(1.0, 0.5, 0.25, 0.125),
            "rt= 1.00 en= 0.50 qoe= 0.25 overall= 0.12"
        );
    }
}
