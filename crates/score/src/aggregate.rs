//! Hierarchical score aggregation (Figure 4, Box 2):
//! per-inference → per-model → per-usage-scenario → benchmark.

/// The unit scores of one completed inference run, plus their product
/// (Definition 14: `Score_inf = RtScore × EnScore × AccScore`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceScore {
    /// Real-time score in `[0, 1]`.
    pub realtime: f64,
    /// Energy score in `[0, 1]`.
    pub energy: f64,
    /// Accuracy score in `[0, 1]`.
    pub accuracy: f64,
}

impl InferenceScore {
    /// Creates the score triple, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if any component is outside `[0, 1]` or not finite.
    pub fn new(realtime: f64, energy: f64, accuracy: f64) -> Self {
        for (name, v) in [
            ("realtime", realtime),
            ("energy", energy),
            ("accuracy", accuracy),
        ] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{name} score must be in [0, 1], got {v}"
            );
        }
        Self {
            realtime,
            energy,
            accuracy,
        }
    }

    /// The combined per-inference score (the product of the three
    /// unit scores).
    pub fn combined(&self) -> f64 {
        self.realtime * self.energy * self.accuracy
    }
}

/// Everything the scorer needs to know about one model's run within a
/// usage scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutcome {
    /// Scores of the inferences that actually executed (dropped
    /// frames are *not* listed here — they are captured by QoE).
    pub inference_scores: Vec<InferenceScore>,
    /// Total frames streamed to this model (`NumFrm`).
    pub total_frames: u64,
}

impl ModelOutcome {
    /// QoE score: executed / streamed frames (Definition 13).
    pub fn qoe(&self) -> f64 {
        crate::unit::qoe_score(self.inference_scores.len() as u64, self.total_frames)
    }

    /// Per-model score: the mean combined score over executed frames;
    /// defined as zero when every frame was dropped (Figure 4 note).
    pub fn per_model(&self) -> f64 {
        per_model_score(&self.inference_scores)
    }

    /// Mean of one unit-score component over executed frames (used
    /// for the Figure 5 breakdowns); zero if nothing executed.
    pub fn component_mean(&self, f: impl Fn(&InferenceScore) -> f64) -> f64 {
        if self.inference_scores.is_empty() {
            return 0.0;
        }
        self.inference_scores.iter().map(f).sum::<f64>() / self.inference_scores.len() as f64
    }
}

/// Per-model score (Figure 4): the average per-inference score across
/// processed frames, or zero if all frames were dropped.
pub fn per_model_score(scores: &[InferenceScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(InferenceScore::combined).sum::<f64>() / scores.len() as f64
}

/// The score breakdown of one usage scenario, matching the four bars
/// the paper plots per accelerator in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioBreakdown {
    /// Mean real-time score across models (each model's mean across
    /// its executed inferences).
    pub realtime: f64,
    /// Mean energy score across models.
    pub energy: f64,
    /// Mean accuracy score across models.
    pub accuracy: f64,
    /// Mean QoE score across models.
    pub qoe: f64,
    /// The overall usage-scenario score (Definition 15):
    /// `mean over models of (per-model score × QoE)`.
    pub overall: f64,
}

/// Computes the usage-scenario score and its component breakdown
/// (Definition 15).
///
/// # Panics
///
/// Panics if `models` is empty — a scenario always has at least one
/// active model.
pub fn scenario_score(models: &[ModelOutcome]) -> ScenarioBreakdown {
    assert!(!models.is_empty(), "scenario must have at least one model");
    let k = models.len() as f64;
    let mean = |f: &dyn Fn(&ModelOutcome) -> f64| models.iter().map(f).sum::<f64>() / k;
    // Component breakdowns average over models that executed at least
    // one inference — a fully-dropped model has no latency or energy
    // to grade (its failure is captured by QoE and the overall score).
    let executed: Vec<&ModelOutcome> = models
        .iter()
        .filter(|m| !m.inference_scores.is_empty())
        .collect();
    let comp_mean = |f: &dyn Fn(&InferenceScore) -> f64| {
        if executed.is_empty() {
            return 0.0;
        }
        executed.iter().map(|m| m.component_mean(f)).sum::<f64>() / executed.len() as f64
    };
    ScenarioBreakdown {
        realtime: comp_mean(&|s| s.realtime),
        energy: comp_mean(&|s| s.energy),
        accuracy: comp_mean(&|s| s.accuracy),
        qoe: mean(&|m| m.qoe()),
        overall: mean(&|m| m.per_model() * m.qoe()),
    }
}

/// Aggregates per-user scenario breakdowns into a session-level
/// breakdown: the unweighted mean of every component across users.
/// Users are peers — a session is only as good as its average tenant,
/// and the per-user values remain available for fairness analysis.
///
/// # Panics
///
/// Panics if `users` is empty — a session always has at least one
/// user.
pub fn session_breakdown(users: &[ScenarioBreakdown]) -> ScenarioBreakdown {
    assert!(!users.is_empty(), "session must have at least one user");
    let n = users.len() as f64;
    let mean = |f: &dyn Fn(&ScenarioBreakdown) -> f64| users.iter().map(f).sum::<f64>() / n;
    ScenarioBreakdown {
        realtime: mean(&|u| u.realtime),
        energy: mean(&|u| u.energy),
        accuracy: mean(&|u| u.accuracy),
        qoe: mean(&|u| u.qoe),
        overall: mean(&|u| u.overall),
    }
}

/// The session score: the mean of the per-user overall scenario
/// scores (the multi-user analogue of Definition 16's suite mean).
///
/// # Panics
///
/// Panics if `user_scores` is empty.
pub fn session_score(user_scores: &[f64]) -> f64 {
    assert!(
        !user_scores.is_empty(),
        "session requires at least one user"
    );
    user_scores.iter().sum::<f64>() / user_scores.len() as f64
}

/// The overall XRBench Score (Definition 16): the average of the
/// usage-scenario scores across the suite.
///
/// # Panics
///
/// Panics if `scenario_scores` is empty.
pub fn benchmark_score(scenario_scores: &[f64]) -> f64 {
    assert!(
        !scenario_scores.is_empty(),
        "benchmark requires at least one scenario"
    );
    scenario_scores.iter().sum::<f64>() / scenario_scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(rt: f64, en: f64, acc: f64) -> InferenceScore {
        InferenceScore::new(rt, en, acc)
    }

    #[test]
    fn combined_is_product() {
        let i = s(0.5, 0.8, 1.0);
        assert!((i.combined() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_component_rejected() {
        let _ = s(1.2, 0.5, 0.5);
    }

    #[test]
    fn per_model_is_mean_of_products() {
        let scores = vec![s(1.0, 1.0, 1.0), s(0.5, 1.0, 1.0)];
        assert!((per_model_score(&scores) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_frames_dropped_scores_zero() {
        assert_eq!(per_model_score(&[]), 0.0);
        let m = ModelOutcome {
            inference_scores: vec![],
            total_frames: 30,
        };
        assert_eq!(m.per_model(), 0.0);
        assert_eq!(m.qoe(), 0.0);
    }

    #[test]
    fn scenario_score_weights_by_qoe() {
        // Model A: perfect inferences but half the frames dropped.
        let a = ModelOutcome {
            inference_scores: vec![s(1.0, 1.0, 1.0); 15],
            total_frames: 30,
        };
        // Model B: all frames executed at combined 0.6.
        let b = ModelOutcome {
            inference_scores: vec![s(1.0, 0.6, 1.0); 30],
            total_frames: 30,
        };
        let out = scenario_score(&[a, b]);
        // (1.0 * 0.5 + 0.6 * 1.0) / 2 = 0.55
        assert!((out.overall - 0.55).abs() < 1e-12);
        assert!((out.qoe - 0.75).abs() < 1e-12);
        assert!((out.realtime - 1.0).abs() < 1e-12);
        assert!((out.energy - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scenario_overall_bounded_by_components() {
        let a = ModelOutcome {
            inference_scores: vec![s(0.9, 0.7, 1.0); 10],
            total_frames: 12,
        };
        let out = scenario_score(&[a]);
        assert!(out.overall <= out.realtime + 1e-12);
        assert!(out.overall <= out.energy + 1e-12);
        assert!(out.overall <= out.qoe + 1e-12);
        assert!(out.overall >= 0.0 && out.overall <= 1.0);
    }

    #[test]
    fn benchmark_is_mean_over_scenarios() {
        let b = benchmark_score(&[1.0, 0.5, 0.0, 0.5]);
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_benchmark_rejected() {
        let _ = benchmark_score(&[]);
    }

    #[test]
    fn session_breakdown_is_componentwise_mean() {
        let a = ScenarioBreakdown {
            realtime: 1.0,
            energy: 0.8,
            accuracy: 1.0,
            qoe: 1.0,
            overall: 0.8,
        };
        let b = ScenarioBreakdown {
            realtime: 0.5,
            energy: 0.4,
            accuracy: 1.0,
            qoe: 0.5,
            overall: 0.2,
        };
        let s = session_breakdown(&[a, b]);
        assert!((s.realtime - 0.75).abs() < 1e-12);
        assert!((s.energy - 0.6).abs() < 1e-12);
        assert!((s.accuracy - 1.0).abs() < 1e-12);
        assert!((s.qoe - 0.75).abs() < 1e-12);
        assert!((s.overall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn session_score_is_mean_of_users() {
        assert!((session_score(&[1.0, 0.5, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(session_score(&[0.7]), 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_session_breakdown_rejected() {
        let _ = session_breakdown(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_session_score_rejected() {
        let _ = session_score(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_scenario_rejected() {
        let _ = scenario_score(&[]);
    }
}
