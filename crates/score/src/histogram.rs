//! Deterministic fixed-bucket histograms for streaming aggregation.
//!
//! Fleet-scale runs cannot afford to retain one value per inference
//! just to report tail latencies, so this module provides a
//! [`FixedHistogram`]: a compile-time-fixed layout of log-spaced
//! buckets whose counters are plain `u64`s. That buys three
//! properties the fleet layer's determinism argument leans on:
//!
//! * **Exactly mergeable** — merging is element-wise integer
//!   addition, which is associative and commutative, so any merge
//!   tree (1 worker or 64) produces bit-identical counters.
//! * **Deterministic bucketing** — the bucket of a value is computed
//!   from its IEEE-754 bit pattern (exponent plus the top mantissa
//!   bits), pure integer math with no `log`/`powf` calls whose last
//!   bits could differ across platforms or compiler flags.
//! * **Bounded error** — 8 sub-buckets per octave bound the relative
//!   quantization error of any reported percentile by 2^(1/8) ≈ 9%.
//!
//! The layout spans 2⁻²⁰ s (≈ 0.95 µs) to 2⁵ s (32 s) — comfortably
//! covering XR inference latencies and deadline overruns — with an
//! underflow and an overflow bucket at the ends. Values are
//! unit-agnostic; this crate uses seconds and unit scores.

/// Sub-bucket resolution: `2^SUB_BITS` buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest resolved exponent: values below 2^MIN_EXP land in the
/// underflow bucket (reported as 0 by percentiles).
const MIN_EXP: i32 = -20;
/// Largest resolved exponent: values at or above 2^MAX_EXP land in
/// the overflow bucket.
const MAX_EXP: i32 = 5;
/// Resolved octaves.
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;

/// Total bucket count: resolved buckets plus underflow and overflow.
pub const NUM_BUCKETS: usize = OCTAVES * SUBS + 2;

/// The three percentiles the fleet report quotes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Median (upper bucket edge).
    pub p50: f64,
    /// 95th percentile (upper bucket edge).
    pub p95: f64,
    /// 99th percentile (upper bucket edge).
    pub p99: f64,
}

/// A streaming, exactly-mergeable histogram over a fixed log-spaced
/// bucket layout.
///
/// ```
/// use xrbench_score::FixedHistogram;
///
/// let mut h = FixedHistogram::new();
/// for v in [0.001, 0.002, 0.002, 0.050] {
///     h.record(v);
/// }
/// let q = h.quantiles();
/// assert!(q.p50 >= 0.002 && q.p50 < 0.00225); // within one sub-bucket
/// assert!(q.p99 >= 0.050 && q.p99 < 0.057);
/// assert_eq!(h.count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    counts: Vec<u64>,
    count: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a value belongs to, from its IEEE-754 bit pattern.
fn bucket_of(v: f64) -> usize {
    debug_assert!(
        v.is_finite() && v >= 0.0,
        "histogram values must be finite and non-negative"
    );
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP || v == 0.0 {
        return 0;
    }
    if exp >= MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// The exclusive upper edge of a resolved bucket; the underflow bucket
/// reports 0 (its values are below the layout's resolution) and the
/// overflow bucket reports infinity.
fn upper_edge(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let i = idx - 1;
    let exp = MIN_EXP + (i / SUBS) as i32;
    let sub = (i % SUBS) as f64;
    2.0f64.powi(exp) * (1.0 + (sub + 1.0) / SUBS as f64)
}

/// A bucket's representative midpoint, used when integrating a score
/// function over the distribution.
fn midpoint(idx: usize) -> f64 {
    if idx == 0 {
        return 2.0f64.powi(MIN_EXP - 1);
    }
    if idx >= NUM_BUCKETS - 1 {
        return 2.0f64.powi(MAX_EXP + 1);
    }
    let i = idx - 1;
    let exp = MIN_EXP + (i / SUBS) as i32;
    let sub = (i % SUBS) as f64;
    2.0f64.powi(exp) * (1.0 + (sub + 0.5) / SUBS as f64)
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
        }
    }

    /// Records one value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite.
    pub fn record(&mut self, v: f64) {
        assert!(
            v.is_finite() && v >= 0.0,
            "histogram values must be finite and non-negative, got {v}"
        );
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw bucket counters, in layout order (underflow, resolved
    /// buckets, overflow). Exactly [`NUM_BUCKETS`] entries. Together
    /// with [`FixedHistogram::from_buckets`] this lets a histogram
    /// cross a process boundary losslessly.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from raw bucket counters previously read
    /// via [`FixedHistogram::buckets`]. Returns `None` unless exactly
    /// [`NUM_BUCKETS`] counters are supplied; the total count is
    /// recomputed as their sum, so the round trip is exact.
    pub fn from_buckets(buckets: &[u64]) -> Option<Self> {
        if buckets.len() != NUM_BUCKETS {
            return None;
        }
        Some(Self {
            counts: buckets.to_vec(),
            count: buckets.iter().sum(),
        })
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram into this one — element-wise integer
    /// addition, so merging is associative, commutative, and exact.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`q` in `(0, 1]`) as the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` value — a deterministic
    /// overestimate within one sub-bucket (≈9% relative). Returns 0
    /// for an empty histogram or when the rank falls in the underflow
    /// bucket; returns infinity only when it falls in the overflow
    /// bucket (callers typically clamp with a tracked maximum).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.count == 0 {
            return 0.0;
        }
        // ceil(q * count), branch-free against float edge cases.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return upper_edge(idx);
            }
        }
        unreachable!("cumulative count reaches self.count");
    }

    /// The p50/p95/p99 triple.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }

    /// Aggregate scoring from the histogram alone: the expected value
    /// of `score` over the recorded distribution, evaluating `score`
    /// once per non-empty bucket at its midpoint. This is how a fleet
    /// scores millions of inferences without retaining them — e.g.
    /// `h.expected_score(|lat| rt_score(lat, slack, params))` — with
    /// the same ≈9% per-bucket quantization bound as the percentiles.
    /// Returns 0 for an empty histogram.
    pub fn expected_score(&self, score: impl Fn(f64) -> f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                sum += c as f64 * score(midpoint(idx));
            }
        }
        sum / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut last = 0;
        let mut v = 1e-7;
        while v < 64.0 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket regressed at {v}");
            last = b;
            v *= 1.07;
        }
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(1e-9), 0);
        assert_eq!(bucket_of(100.0), NUM_BUCKETS - 1);
    }

    #[test]
    fn upper_edges_bound_their_bucket() {
        for v in [1e-5, 0.001, 0.0163, 0.25, 1.0, 7.5] {
            let b = bucket_of(v);
            assert!(v < upper_edge(b), "value {v} above its edge");
            // And the edge is within one sub-bucket (factor 2^(1/8)
            // loosened to ×1.15) of the value.
            assert!(upper_edge(b) <= v * 1.15, "edge too loose for {v}");
        }
    }

    #[test]
    fn percentile_walks_the_distribution() {
        let mut h = FixedHistogram::new();
        for _ in 0..99 {
            h.record(0.001);
        }
        h.record(1.0);
        assert!(h.percentile(0.5) < 0.0012);
        assert!(h.percentile(0.99) < 0.0012);
        assert!(h.percentile(1.0) >= 1.0);
        let q = h.quantiles();
        assert!(q.p50 < 0.0012 && q.p95 < 0.0012 && q.p99 < 0.0012);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        for i in 1..200u32 {
            a.record(f64::from(i) * 1e-4);
            b.record(f64::from(i) * 3e-3);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = FixedHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.expected_score(|_| 1.0), 0.0);
        let mut m = FixedHistogram::new();
        m.merge(&h);
        assert!(m.is_empty());
    }

    #[test]
    fn expected_score_integrates_midpoints() {
        let mut h = FixedHistogram::new();
        for _ in 0..10 {
            h.record(0.004);
        }
        // A step function that is 1 below 10 ms: every bucket midpoint
        // for 4 ms values sits below 10 ms.
        let s = h.expected_score(|v| if v < 0.010 { 1.0 } else { 0.0 });
        assert_eq!(s, 1.0);
        // Through the real sigmoid, scores stay in [0, 1].
        let params = crate::RtParams::default();
        let rt = h.expected_score(|lat| crate::rt_score(lat, 0.010, params));
        assert!((0.0..=1.0).contains(&rt));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_values_rejected() {
        FixedHistogram::new().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        FixedHistogram::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinity_rejected() {
        FixedHistogram::new().record(f64::INFINITY);
    }

    #[test]
    fn negative_zero_lands_in_the_underflow_bucket() {
        let mut h = FixedHistogram::new();
        h.record(-0.0);
        h.record(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), 0.0);
        // Bucketing is sign-of-zero blind, so merge order can't leak
        // which worker saw the −0.0.
        let mut a = FixedHistogram::new();
        a.record(-0.0);
        let mut b = FixedHistogram::new();
        b.record(0.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_rejected() {
        let _ = FixedHistogram::new().percentile(0.0);
    }

    #[test]
    fn buckets_round_trip_exactly() {
        let mut h = FixedHistogram::new();
        for v in [0.0005, 0.002, 0.002, 0.050, 1.5, 100.0] {
            h.record(v);
        }
        let rebuilt = FixedHistogram::from_buckets(h.buckets()).unwrap();
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), h.count());
        // Wrong layout length is rejected, not silently padded.
        assert!(FixedHistogram::from_buckets(&[0; NUM_BUCKETS - 1]).is_none());
        assert!(FixedHistogram::from_buckets(&[]).is_none());
    }
}
