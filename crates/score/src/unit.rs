//! The four unit scores (Box 2), each bounded to `[0, 1]`.

/// Parameters of the real-time score sigmoid (Definition 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtParams {
    /// Deadline-sensitivity constant `k`, in units of 1/millisecond.
    ///
    /// The paper's default is `k = 15`: the score is effectively 1
    /// when the inference finishes ~0.5 ms inside its slack window and
    /// effectively 0 when it overruns by ~0.5 ms (§B.1's "±0.5 ms for
    /// a deadline of 10 ms" design point), with a smooth transition in
    /// between. `k = 0` makes the score deadline-insensitive (always
    /// 0.5); `k → ∞` makes it a step function at the deadline.
    pub k_per_ms: f64,
}

impl Default for RtParams {
    fn default() -> Self {
        Self { k_per_ms: 15.0 }
    }
}

/// Real-time score (Definition 10):
/// `RtScore = 1 / (1 + exp(k · (Linf − Tsl)))`,
/// with the latency and slack supplied in **seconds**.
///
/// A latency well inside the slack window scores ~1; a latency well
/// beyond it scores ~0; at exactly the deadline the score is 0.5.
///
/// Negative slack (the input itself arrived after the deadline) is
/// handled naturally: any positive latency then scores below 0.5.
pub fn rt_score(latency_s: f64, slack_s: f64, params: RtParams) -> f64 {
    debug_assert!(latency_s >= 0.0, "latency must be non-negative");
    let x_ms = (latency_s - slack_s) * 1e3;
    // Guard against exp overflow for large overruns.
    let exponent = (params.k_per_ms * x_ms).clamp(-700.0, 700.0);
    1.0 / (1.0 + exponent.exp())
}

/// Parameters of the energy score (Definition 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// The maximum energy allowed per inference, `Emax`, in joules.
    /// Paper default: 1500 mJ.
    pub emax_j: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self { emax_j: 1.5 }
    }
}

/// Energy score (Definition 11): `(Emax − E) / Emax`, clamped to
/// `[0, 1]` so inferences that exceed `Emax` score zero rather than
/// going negative.
pub fn energy_score(energy_j: f64, params: EnergyParams) -> f64 {
    debug_assert!(energy_j >= 0.0, "energy must be non-negative");
    ((params.emax_j - energy_j) / params.emax_j).clamp(0.0, 1.0)
}

/// Whether a model quality metric is higher- or lower-is-better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Accuracy-like metrics.
    HigherIsBetter,
    /// Error-like metrics.
    LowerIsBetter,
}

/// Parameters of the accuracy score (Definition 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyParams {
    /// Numerical-stability epsilon for lower-is-better ratios.
    /// Paper default: 1e-6.
    pub epsilon: f64,
}

impl Default for AccuracyParams {
    fn default() -> Self {
        Self { epsilon: 1e-6 }
    }
}

/// Accuracy score (Definition 12): the ratio of measured to target
/// model quality, capped at 1.
///
/// For higher-is-better metrics the raw score is `measured / target`;
/// for lower-is-better metrics it is `target / (measured + ε)`.
/// The paper's Box 2 writes `max(1, raw)`, which would make the score
/// unbounded-below-useless; the accompanying text and the `[0, 1]`
/// range requirement make clear the intent is `min(1, raw)`, which is
/// what we implement (also clamped at 0).
pub fn accuracy_score(measured: f64, target: f64, kind: MetricKind, params: AccuracyParams) -> f64 {
    debug_assert!(target > 0.0, "quality target must be positive");
    let raw = match kind {
        MetricKind::HigherIsBetter => measured / target,
        MetricKind::LowerIsBetter => target / (measured + params.epsilon),
    };
    raw.clamp(0.0, 1.0)
}

/// QoE score (Definition 13): the fraction of streamed frames a model
/// actually processed, `NumFrm_exec / NumFrm`.
///
/// # Panics
///
/// Panics if `executed > total`.
pub fn qoe_score(executed_frames: u64, total_frames: u64) -> f64 {
    assert!(
        executed_frames <= total_frames,
        "executed ({executed_frames}) cannot exceed streamed ({total_frames}) frames"
    );
    if total_frames == 0 {
        return 0.0;
    }
    executed_frames as f64 / total_frames as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_score_is_half_at_deadline() {
        let s = rt_score(0.010, 0.010, RtParams::default());
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rt_score_saturates_half_ms_around_deadline() {
        // §B.1 design point: ±0.5 ms around a 10 ms deadline.
        let early = rt_score(0.0095, 0.010, RtParams::default());
        let late = rt_score(0.0105, 0.010, RtParams::default());
        assert!(early > 0.999, "0.5 ms inside: {early}");
        assert!(late < 0.001, "0.5 ms beyond: {late}");
    }

    #[test]
    fn rt_score_k_zero_is_flat_half() {
        for lat in [0.0, 0.005, 0.02, 1.0] {
            let s = rt_score(lat, 0.010, RtParams { k_per_ms: 0.0 });
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn rt_score_monotone_decreasing_in_latency() {
        let mut prev = 1.1;
        for i in 0..100 {
            let lat = i as f64 * 0.0005;
            let s = rt_score(lat, 0.015, RtParams::default());
            assert!(s <= prev);
            prev = s;
        }
    }

    #[test]
    fn rt_score_no_overflow_on_huge_overrun() {
        let s = rt_score(10.0, 0.001, RtParams::default());
        assert!((0.0..1e-10).contains(&s));
        assert!(s.is_finite());
    }

    #[test]
    fn rt_score_negative_slack_penalized() {
        let s = rt_score(0.001, -0.005, RtParams::default());
        assert!(s < 0.5);
    }

    #[test]
    fn energy_score_linear_and_clamped() {
        let p = EnergyParams::default();
        assert!((energy_score(0.0, p) - 1.0).abs() < 1e-12);
        assert!((energy_score(0.75, p) - 0.5).abs() < 1e-12);
        assert!((energy_score(1.5, p) - 0.0).abs() < 1e-12);
        // Over Emax clamps to 0 instead of going negative.
        assert_eq!(energy_score(3.0, p), 0.0);
    }

    #[test]
    fn accuracy_hib_caps_at_one() {
        let p = AccuracyParams::default();
        let s = accuracy_score(95.0, 90.0, MetricKind::HigherIsBetter, p);
        assert_eq!(s, 1.0);
        let s2 = accuracy_score(45.0, 90.0, MetricKind::HigherIsBetter, p);
        assert!((s2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_lib_uses_inverse_ratio() {
        let p = AccuracyParams::default();
        // Error twice the target → score 0.5.
        let s = accuracy_score(17.58, 8.79, MetricKind::LowerIsBetter, p);
        assert!((s - 0.5).abs() < 1e-4);
        // Error at target → 1.
        let s2 = accuracy_score(8.79, 8.79, MetricKind::LowerIsBetter, p);
        assert!((s2 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn accuracy_lib_epsilon_prevents_div_by_zero() {
        let p = AccuracyParams::default();
        let s = accuracy_score(0.0, 3.39, MetricKind::LowerIsBetter, p);
        assert!(s.is_finite());
        assert_eq!(s, 1.0); // zero error is perfect (capped at 1)
    }

    #[test]
    fn qoe_is_fraction_processed() {
        assert!((qoe_score(27, 30) - 0.9).abs() < 1e-12);
        assert_eq!(qoe_score(0, 30), 0.0);
        assert_eq!(qoe_score(30, 30), 1.0);
        assert_eq!(qoe_score(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn qoe_rejects_excess_executed() {
        let _ = qoe_score(31, 30);
    }
}
