//! # xrbench-score
//!
//! The XRBench scoring metrics (paper §3.7, Box 2, and appendix B):
//! four unit scores — real-time, energy, accuracy, and quality of
//! experience (QoE) — each bounded to `[0, 1]`, and their hierarchical
//! aggregation into per-inference, per-model, per-usage-scenario, and
//! overall benchmark (XRBench Score) levels (Figure 4).
//!
//! This crate is deliberately free of workload/hardware types: it
//! consumes plain numbers so that any runtime (simulator, cost model,
//! or a real system) can feed it.
//!
//! ## Example
//!
//! ```
//! use xrbench_score::{rt_score, energy_score, RtParams, EnergyParams};
//!
//! // An inference that finishes 2 ms before its slack window closes.
//! let rt = rt_score(0.008, 0.010, RtParams::default());
//! assert!(rt > 0.99);
//! let en = energy_score(0.3, EnergyParams::default());
//! assert!((en - 0.8).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod histogram;
mod unit;

pub use aggregate::{
    benchmark_score, per_model_score, scenario_score, session_breakdown, session_score,
    InferenceScore, ModelOutcome, ScenarioBreakdown,
};
pub use histogram::{FixedHistogram, Quantiles, NUM_BUCKETS};
pub use unit::{
    accuracy_score, energy_score, qoe_score, rt_score, AccuracyParams, EnergyParams, MetricKind,
    RtParams,
};
