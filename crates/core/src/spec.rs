//! Spec-driven benchmark runs: hardware selection and run documents.
//!
//! This module is the top of the declarative workload subsystem: a
//! **run document** is one JSON file that names everything a benchmark
//! run needs — the evaluated system, the workload (suite catalog,
//! session, or fleet), and the run parameters — and
//! [`RunDocument::from_json_str`] turns it into a ready-to-execute
//! value. Executing a run document goes through exactly the same
//! library entry points ([`crate::run_suite_catalog`],
//! [`Harness::run_session`], [`Harness::run_fleet`]) a Rust caller
//! uses, so the reports are bit-for-bit identical to the programmatic
//! path.
//!
//! ## Hardware schema
//!
//! ```json
//! { "accelerator": { "id": "J", "pes": 8192 } }
//! { "uniform": { "engines": 2, "latency_s": 0.001, "energy_j": 0.001 } }
//! { "table": { "engines": 2, "label": "measured-soc",
//!              "engine_labels": ["WS@2048", "OS@2048"],
//!              "costs": [ { "model": "HT", "engine": 0,
//!                           "latency_s": 0.002, "energy_j": 0.01 } ] } }
//! ```
//!
//! `accelerator` instantiates a Table 5 configuration (`"A"`–`"M"`) at
//! a PE count through the analytical cost model; `table` is an
//! explicit `(model, engine) → cost` measurement table; `uniform` is
//! the test provider. Cost tables are checked up front to cover every
//! model the workload dispatches, so a hole fails at load time with a
//! named `(model, engine)` pair instead of mid-simulation.
//!
//! ## Run document schema
//!
//! ```json
//! { "kind": "suite",   "hardware": {...}, "repeats": 10,
//!   "seed": 3233923584, "duration_s": 1.0,
//!   "include_builtin": true, "scenarios": [ ... ] }
//! { "kind": "session", "hardware": {...}, "scheduler": "latency-greedy",
//!   "scenarios": [ ... ], "session": { ... } }
//! { "kind": "fleet",   "hardware": {...}, "workers": 8,
//!   "recovery": "requeue", "scenarios": [ ... ], "fleet": { ... } }
//! ```
//!
//! `seed` / `duration_s` default to the harness defaults; `repeats`
//! defaults to 10 (the quickstart's suite configuration); `scheduler`
//! defaults to `latency-greedy` (the paper default); `workers`
//! defaults to the machine's parallelism — legal because the fleet
//! report is proven byte-identical for any worker count; `recovery`
//! (fleet documents only) defaults to `drop` and selects what happens
//! to in-flight work on engines lost to a device group's injected
//! fault process.

use std::collections::BTreeSet;

use serde::de::Cursor;

use xrbench_accel::{config_by_id, AcceleratorSystem};
use xrbench_models::ModelId;
use xrbench_sim::{
    CostProvider, FailoverAware, InferenceCost, LatencyGreedy, LeastLoaded, RecoveryPolicy,
    RoundRobin, Scheduler, SlackAwareEdf, TableProvider, UniformProvider,
};
use xrbench_workload::spec::{
    extend_catalog, model_from_value, parse_json, session_from_value, SpecError,
};
use xrbench_workload::{ScenarioCatalog, SessionSpec};

use crate::harness::Harness;
use crate::report::{BenchmarkReport, SessionReport};
use crate::suite::run_suite_catalog;

/// A declarative hardware selection: what system the workload runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemSpec {
    /// A Table 5 accelerator configuration at a total PE count,
    /// evaluated through the analytical cost model.
    Accelerator {
        /// The Table 5 identifier, `'A'..='M'`.
        id: char,
        /// Total PEs across sub-accelerators (the paper uses 4096 and
        /// 8192).
        pes: u64,
    },
    /// Identical cost on every engine (the test provider).
    Uniform {
        /// Number of engines.
        engines: usize,
        /// Per-inference latency in seconds.
        latency_s: f64,
        /// Per-inference energy in joules.
        energy_j: f64,
    },
    /// An explicit `(model, engine) → cost` measurement table.
    Table {
        /// Number of engines.
        engines: usize,
        /// Optional system label for reports.
        label: Option<String>,
        /// Optional per-engine labels.
        engine_labels: Vec<String>,
        /// The registered costs.
        costs: Vec<(ModelId, usize, InferenceCost)>,
    },
}

/// A [`TableProvider`]/[`UniformProvider`] wrapper carrying a custom
/// system label for reports.
#[derive(Debug)]
struct LabeledProvider<P> {
    inner: P,
    label: String,
}

impl<P: CostProvider> CostProvider for LabeledProvider<P> {
    fn num_engines(&self) -> usize {
        self.inner.num_engines()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn engine_label(&self, engine: usize) -> String {
        self.inner.engine_label(engine)
    }

    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
        self.inner.cost(model, engine)
    }
}

impl SystemSpec {
    /// Decodes a hardware selection.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for unknown accelerator ids,
    /// out-of-range PE/engine counts, non-positive latencies, unknown
    /// model names, or out-of-range engine indices in a cost table.
    pub fn from_value(cursor: &Cursor<'_>) -> Result<Self, SpecError> {
        cursor.deny_unknown_fields(&["accelerator", "uniform", "table"])?;
        let accelerator = cursor.opt_field("accelerator")?;
        let uniform = cursor.opt_field("uniform")?;
        let table = cursor.opt_field("table")?;
        let given = [&accelerator, &uniform, &table]
            .iter()
            .filter(|c| c.is_some())
            .count();
        if given != 1 {
            return Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: "exactly one of `accelerator`, `uniform`, or `table` is required"
                    .to_string(),
            });
        }

        if let Some(acc) = accelerator {
            acc.deny_unknown_fields(&["id", "pes"])?;
            let id_cursor = acc.field("id")?;
            let id_str = id_cursor.as_str()?;
            let id = match id_str.chars().next() {
                Some(c) if id_str.chars().count() == 1 => c,
                _ => {
                    return Err(SpecError::Invalid {
                        path: id_cursor.path().to_string(),
                        message: format!(
                            "accelerator id must be a single letter A-M, got `{id_str}`"
                        ),
                    })
                }
            };
            if config_by_id(id).is_none() {
                return Err(SpecError::Invalid {
                    path: id_cursor.path().to_string(),
                    message: format!("unknown accelerator `{id}` (Table 5 defines A-M)"),
                });
            }
            let pes_cursor = acc.field("pes")?;
            let pes: u64 = pes_cursor.get()?;
            if pes == 0 {
                return Err(SpecError::Invalid {
                    path: pes_cursor.path().to_string(),
                    message: "pes must be at least 1".to_string(),
                });
            }
            return Ok(SystemSpec::Accelerator {
                id: id.to_ascii_uppercase(),
                pes,
            });
        }

        if let Some(uni) = uniform {
            uni.deny_unknown_fields(&["engines", "latency_s", "energy_j"])?;
            let engines = positive_engines(&uni.field("engines")?)?;
            let latency_cursor = uni.field("latency_s")?;
            let latency_s: f64 = latency_cursor.get()?;
            if !(latency_s.is_finite() && latency_s > 0.0) {
                return Err(SpecError::Invalid {
                    path: latency_cursor.path().to_string(),
                    message: format!("latency must be positive and finite, got {latency_s}"),
                });
            }
            let energy_cursor = uni.field("energy_j")?;
            let energy_j: f64 = energy_cursor.get()?;
            if !(energy_j.is_finite() && energy_j >= 0.0) {
                return Err(SpecError::Invalid {
                    path: energy_cursor.path().to_string(),
                    message: format!("energy must be non-negative and finite, got {energy_j}"),
                });
            }
            return Ok(SystemSpec::Uniform {
                engines,
                latency_s,
                energy_j,
            });
        }

        let table = table.expect("one of the three forms is present");
        table.deny_unknown_fields(&["engines", "label", "engine_labels", "costs"])?;
        let engines = positive_engines(&table.field("engines")?)?;
        let label: Option<String> = table.get_opt_field("label")?;
        let engine_labels: Vec<String> = table.get_opt_field("engine_labels")?.unwrap_or_default();
        if !engine_labels.is_empty() && engine_labels.len() != engines {
            return Err(SpecError::Invalid {
                path: table.field("engine_labels")?.path().to_string(),
                message: format!(
                    "expected {engines} engine labels, got {}",
                    engine_labels.len()
                ),
            });
        }
        let mut costs = Vec::new();
        for entry in table.field("costs")?.items()? {
            entry.deny_unknown_fields(&["model", "engine", "latency_s", "energy_j"])?;
            let model = model_from_value(&entry.field("model")?)?;
            let engine_cursor = entry.field("engine")?;
            let engine: usize = engine_cursor.get()?;
            if engine >= engines {
                return Err(SpecError::Invalid {
                    path: engine_cursor.path().to_string(),
                    message: format!("engine index {engine} out of range (engines: {engines})"),
                });
            }
            let latency_cursor = entry.field("latency_s")?;
            let latency_s: f64 = latency_cursor.get()?;
            if !(latency_s.is_finite() && latency_s > 0.0) {
                return Err(SpecError::Invalid {
                    path: latency_cursor.path().to_string(),
                    message: format!("latency must be positive and finite, got {latency_s}"),
                });
            }
            let energy_cursor = entry.field("energy_j")?;
            let energy_j: f64 = energy_cursor.get()?;
            if !(energy_j.is_finite() && energy_j >= 0.0) {
                return Err(SpecError::Invalid {
                    path: energy_cursor.path().to_string(),
                    message: format!("energy must be non-negative and finite, got {energy_j}"),
                });
            }
            costs.push((
                model,
                engine,
                InferenceCost {
                    latency_s,
                    energy_j,
                },
            ));
        }
        Ok(SystemSpec::Table {
            engines,
            label,
            engine_labels,
            costs,
        })
    }

    /// Instantiates the selected system.
    pub fn build(&self) -> Box<dyn CostProvider + Send + Sync> {
        match self {
            SystemSpec::Accelerator { id, pes } => {
                let config = config_by_id(*id).expect("validated at decode time");
                Box::new(AcceleratorSystem::new(config, *pes))
            }
            SystemSpec::Uniform {
                engines,
                latency_s,
                energy_j,
            } => Box::new(UniformProvider::new(*engines, *latency_s, *energy_j)),
            SystemSpec::Table {
                engines,
                label,
                engine_labels,
                costs,
            } => {
                let mut table = TableProvider::new(*engines);
                for (i, l) in engine_labels.iter().enumerate() {
                    table.set_label(i, l.clone());
                }
                for &(model, engine, cost) in costs {
                    table.set(model, engine, cost);
                }
                match label {
                    Some(label) => Box::new(LabeledProvider {
                        inner: table,
                        label: label.clone(),
                    }),
                    None => Box::new(table),
                }
            }
        }
    }

    /// Checks that a cost table covers every `(model, engine)` pair
    /// the workload can dispatch (no-op for the other variants, which
    /// are total by construction).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] naming the first missing pair.
    pub fn check_coverage(&self, models_used: &BTreeSet<ModelId>) -> Result<(), SpecError> {
        let SystemSpec::Table { engines, costs, .. } = self else {
            return Ok(());
        };
        for &model in models_used {
            for engine in 0..*engines {
                if !costs.iter().any(|(m, e, _)| *m == model && *e == engine) {
                    return Err(SpecError::Invalid {
                        path: "$.hardware.table.costs".to_string(),
                        message: format!(
                            "no cost registered for {model} on engine {engine}, \
                             but the workload dispatches it"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

fn positive_engines(cursor: &Cursor<'_>) -> Result<usize, SpecError> {
    let engines: usize = cursor.get()?;
    if engines == 0 {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "engines must be at least 1".to_string(),
        });
    }
    Ok(engines)
}

/// A declarative scheduler selection, by report name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerSpec {
    /// The paper default: dispatch to the fastest free engine.
    #[default]
    LatencyGreedy,
    /// Cycle engines regardless of cost.
    RoundRobin,
    /// Earliest-deadline-first with slack awareness.
    SlackAwareEdf,
    /// Pick the engine with the least queued work.
    LeastLoaded,
    /// EDF ordering, avoiding engines with the worst outage history
    /// (for fault-injected runs).
    FailoverAware,
}

impl SchedulerSpec {
    /// Decodes a scheduler name — the same names the reports print
    /// (`latency-greedy`, `round-robin`, `slack-edf`, `least-loaded`,
    /// `failover-aware`).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for unknown names.
    pub fn from_value(cursor: &Cursor<'_>) -> Result<Self, SpecError> {
        let name = cursor.as_str()?;
        match name {
            "latency-greedy" => Ok(Self::LatencyGreedy),
            "round-robin" => Ok(Self::RoundRobin),
            "slack-edf" => Ok(Self::SlackAwareEdf),
            "least-loaded" => Ok(Self::LeastLoaded),
            "failover-aware" => Ok(Self::FailoverAware),
            other => Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: format!(
                    "unknown scheduler `{other}` (expected latency-greedy, \
                     round-robin, slack-edf, least-loaded, or failover-aware)"
                ),
            }),
        }
    }

    /// The scheduler's report name (`latency-greedy`, `round-robin`,
    /// `slack-edf`, `least-loaded`, `failover-aware`) — the inverse
    /// of [`SchedulerSpec::from_value`].
    pub fn name(&self) -> &'static str {
        match self {
            Self::LatencyGreedy => "latency-greedy",
            Self::RoundRobin => "round-robin",
            Self::SlackAwareEdf => "slack-edf",
            Self::LeastLoaded => "least-loaded",
            Self::FailoverAware => "failover-aware",
        }
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Self::LatencyGreedy => Box::new(LatencyGreedy::new()),
            Self::RoundRobin => Box::new(RoundRobin::new()),
            Self::SlackAwareEdf => Box::new(SlackAwareEdf::new()),
            Self::LeastLoaded => Box::new(LeastLoaded::new()),
            Self::FailoverAware => Box::new(FailoverAware::new()),
        }
    }
}

/// Shared run parameters: seed and duration overrides for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunParams {
    /// RNG seed; `None` keeps the harness default.
    pub seed: Option<u64>,
    /// Run duration in seconds; `None` keeps the harness default (1 s).
    pub duration_s: Option<f64>,
}

impl RunParams {
    pub(crate) fn from_value(cursor: &Cursor<'_>) -> Result<Self, SpecError> {
        let seed: Option<u64> = cursor.get_opt_field("seed")?;
        let duration_s = match cursor.opt_field("duration_s")? {
            Some(c) => {
                let v: f64 = c.get()?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(SpecError::Invalid {
                        path: c.path().to_string(),
                        message: format!("duration must be positive and finite, got {v}"),
                    });
                }
                Some(v)
            }
            None => None,
        };
        Ok(Self { seed, duration_s })
    }

    /// The harness these parameters configure.
    pub fn harness(&self) -> Harness {
        let mut h = Harness::new();
        if let Some(seed) = self.seed {
            h = h.with_seed(seed);
        }
        if let Some(duration_s) = self.duration_s {
            h = h.with_duration(duration_s);
        }
        h
    }
}

/// A decoded `"kind": "suite"` run document.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The evaluated system.
    pub system: SystemSpec,
    /// Run parameters (seed, duration).
    pub params: RunParams,
    /// Repeats for dynamic scenarios (default 10, the quickstart
    /// configuration).
    pub repeats: u32,
    /// The suite catalog: builtins (unless opted out) plus the
    /// document's local scenarios, in order.
    pub catalog: ScenarioCatalog,
}

impl SuiteRun {
    /// Executes the suite exactly as [`crate::run_suite_catalog`]
    /// would.
    #[deprecated(note = "execute documents through `Runner::run` instead")]
    #[doc(hidden)]
    pub fn run(&self) -> BenchmarkReport {
        self.execute()
    }

    pub(crate) fn execute(&self) -> BenchmarkReport {
        let system = self.system.build();
        run_suite_catalog(
            &self.params.harness(),
            system.as_ref(),
            self.repeats,
            &self.catalog,
        )
    }
}

/// A decoded `"kind": "session"` run document.
#[derive(Debug, Clone)]
pub struct SessionRun {
    /// The evaluated system.
    pub system: SystemSpec,
    /// Run parameters (seed, duration).
    pub params: RunParams,
    /// The scheduler (default latency-greedy).
    pub scheduler: SchedulerSpec,
    /// The multi-user session.
    pub session: SessionSpec,
}

impl SessionRun {
    /// Executes the session exactly as [`Harness::run_session`] would.
    #[deprecated(note = "execute documents through `Runner::run` instead")]
    #[doc(hidden)]
    pub fn run(&self) -> SessionReport {
        self.execute()
    }

    pub(crate) fn execute(&self) -> SessionReport {
        let system = self.system.build();
        self.params.harness().run_session(
            &self.session,
            system.as_ref(),
            self.scheduler.build().as_mut(),
        )
    }
}

/// A decoded `"kind": "fleet"` run document.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The evaluated system.
    pub system: SystemSpec,
    /// Run parameters (seed, duration).
    pub params: RunParams,
    /// Worker threads; `None` uses the machine's parallelism (the
    /// fleet report is byte-identical for any worker count).
    pub workers: Option<usize>,
    /// Recovery policy for in-flight work on engines lost to injected
    /// faults (default `drop`; ignored by fault-free groups).
    pub recovery: RecoveryPolicy,
    /// The fleet topology.
    pub fleet: xrbench_fleet::FleetSpec,
}

impl FleetRun {
    /// Executes the fleet exactly as
    /// [`Harness::run_fleet_with_recovery`] would.
    #[deprecated(note = "execute documents through `Runner::run` instead")]
    #[doc(hidden)]
    pub fn run(&self) -> xrbench_fleet::FleetReport {
        self.execute()
    }

    pub(crate) fn execute(&self) -> xrbench_fleet::FleetReport {
        let system = self.system.build();
        self.params.harness().run_fleet_with_recovery(
            &self.fleet,
            system.as_ref(),
            self.effective_workers(),
            self.recovery,
        )
    }

    /// Runs one shard of the fleet: the sessions whose global
    /// `(group, replica)` coordinates fall in shard `shard` of
    /// `num_shards`, seeded exactly as [`FleetRun::run`] would seed
    /// them. The returned [`xrbench_fleet::ShardState`] serializes
    /// over a pipe and merges back through
    /// [`FleetRun::merge_shards`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards` (same contract as
    /// [`Harness::run_fleet`] otherwise).
    pub fn run_shard(&self, shard: u32, num_shards: u32) -> xrbench_fleet::ShardState {
        let system = self.system.build();
        self.params.harness().run_fleet_shard(
            &self.fleet,
            system.as_ref(),
            self.effective_workers(),
            self.recovery,
            shard,
            num_shards,
        )
    }

    /// Merges shard states produced by [`FleetRun::run_shard`] (in
    /// any order, possibly in other processes) into the final report
    /// — byte-identical to [`FleetRun::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the states do not form a
    /// complete, consistent partition of this fleet.
    pub fn merge_shards(
        &self,
        states: &[xrbench_fleet::ShardState],
    ) -> Result<xrbench_fleet::FleetReport, SpecError> {
        let system = self.system.build();
        xrbench_fleet::merge_fleet_shards(
            &self.fleet,
            &system.label(),
            xrbench_sim::LatencyGreedy::new().name(),
            states,
        )
    }

    /// Runs the fleet once per recovery policy under identical fault
    /// seeds (see [`Harness::compare_fleet_policies`]).
    pub fn compare_policies(&self) -> xrbench_fleet::PolicyComparisonReport {
        let system = self.system.build();
        self.params.harness().compare_fleet_policies(
            &self.fleet,
            system.as_ref(),
            self.effective_workers(),
        )
    }

    fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(xrbench_fleet::default_workers)
    }
}

/// A parsed, validated run document of any kind.
#[derive(Debug, Clone)]
pub enum RunDocument {
    /// A whole-suite run.
    Suite(SuiteRun),
    /// A multi-user session run.
    Session(SessionRun),
    /// A fleet run.
    Fleet(FleetRun),
    /// A design-space sweep.
    Sweep(crate::sweep::SweepDocument),
}

impl RunDocument {
    /// Parses and validates a run document against the builtin
    /// scenario catalog.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed JSON, unknown kinds,
    /// shape problems, any scenario/session/fleet error from the
    /// embedded workload documents, or a cost table that does not
    /// cover the models the workload dispatches.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json_str_with_catalog(text, &ScenarioCatalog::builtin())
    }

    /// [`RunDocument::from_json_str`] against an explicit base
    /// catalog.
    ///
    /// # Errors
    ///
    /// See [`RunDocument::from_json_str`].
    pub fn from_json_str_with_catalog(
        text: &str,
        catalog: &ScenarioCatalog,
    ) -> Result<Self, SpecError> {
        let value = parse_json(text)?;
        let cursor = Cursor::root(&value);
        let kind_cursor = cursor.field("kind")?;
        match kind_cursor.as_str()? {
            "suite" => Self::decode_suite(&cursor, catalog).map(RunDocument::Suite),
            "session" => Self::decode_session(&cursor, catalog).map(RunDocument::Session),
            "fleet" => Self::decode_fleet(&cursor, catalog).map(RunDocument::Fleet),
            "sweep" => {
                crate::sweep::SweepDocument::from_value(&cursor, catalog).map(RunDocument::Sweep)
            }
            other => Err(SpecError::Invalid {
                path: kind_cursor.path().to_string(),
                message: format!(
                    "unknown document kind `{other}` (expected suite, session, fleet, or sweep)"
                ),
            }),
        }
    }

    /// The document's kind (`suite`, `session`, `fleet`, `sweep`) —
    /// also the stem of the CLI subcommand that executes it.
    pub fn kind(&self) -> &'static str {
        match self {
            RunDocument::Suite(_) => "suite",
            RunDocument::Session(_) => "session",
            RunDocument::Fleet(_) => "fleet",
            RunDocument::Sweep(_) => "sweep",
        }
    }

    fn decode_suite(cursor: &Cursor<'_>, base: &ScenarioCatalog) -> Result<SuiteRun, SpecError> {
        cursor.deny_unknown_fields(&[
            "kind",
            "hardware",
            "repeats",
            "seed",
            "duration_s",
            "include_builtin",
            "scenarios",
        ])?;
        let system = SystemSpec::from_value(&cursor.field("hardware")?)?;
        let params = RunParams::from_value(cursor)?;
        let repeats = match cursor.opt_field("repeats")? {
            Some(c) => {
                let r: u32 = c.get()?;
                if r == 0 {
                    return Err(SpecError::Invalid {
                        path: c.path().to_string(),
                        message: "repeats must be at least 1".to_string(),
                    });
                }
                r
            }
            None => 10,
        };
        let include_builtin: bool = cursor.get_opt_field("include_builtin")?.unwrap_or(true);
        let start = if include_builtin {
            base.clone()
        } else {
            ScenarioCatalog::new()
        };
        let catalog = extend_catalog(cursor, &start)?;
        if catalog.is_empty() {
            return Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: "suite catalog is empty (include_builtin is false and no \
                          scenarios are defined)"
                    .to_string(),
            });
        }
        let used: BTreeSet<ModelId> = catalog
            .iter()
            .flat_map(|s| s.models.iter().map(|m| m.model))
            .collect();
        system.check_coverage(&used)?;
        Ok(SuiteRun {
            system,
            params,
            repeats,
            catalog,
        })
    }

    fn decode_session(
        cursor: &Cursor<'_>,
        base: &ScenarioCatalog,
    ) -> Result<SessionRun, SpecError> {
        cursor.deny_unknown_fields(&[
            "kind",
            "hardware",
            "scheduler",
            "seed",
            "duration_s",
            "scenarios",
            "session",
        ])?;
        let system = SystemSpec::from_value(&cursor.field("hardware")?)?;
        let params = RunParams::from_value(cursor)?;
        let scheduler = match cursor.opt_field("scheduler")? {
            Some(c) => SchedulerSpec::from_value(&c)?,
            None => SchedulerSpec::default(),
        };
        let catalog = extend_catalog(cursor, base)?;
        let session = session_from_value(&cursor.field("session")?, &catalog)?;
        let used: BTreeSet<ModelId> = session
            .users
            .iter()
            .flat_map(|u| u.spec.models.iter().map(|m| m.model))
            .collect();
        system.check_coverage(&used)?;
        Ok(SessionRun {
            system,
            params,
            scheduler,
            session,
        })
    }

    fn decode_fleet(cursor: &Cursor<'_>, base: &ScenarioCatalog) -> Result<FleetRun, SpecError> {
        cursor.deny_unknown_fields(&[
            "kind",
            "hardware",
            "workers",
            "recovery",
            "seed",
            "duration_s",
            "scenarios",
            "fleet",
        ])?;
        let system = SystemSpec::from_value(&cursor.field("hardware")?)?;
        let params = RunParams::from_value(cursor)?;
        let workers = match cursor.opt_field("workers")? {
            Some(c) => {
                let w: usize = c.get()?;
                if w == 0 {
                    return Err(SpecError::Invalid {
                        path: c.path().to_string(),
                        message: "workers must be at least 1".to_string(),
                    });
                }
                Some(w)
            }
            None => None,
        };
        let recovery = match cursor.opt_field("recovery")? {
            Some(c) => {
                let name = c.as_str()?;
                RecoveryPolicy::parse(name).ok_or_else(|| SpecError::Invalid {
                    path: c.path().to_string(),
                    message: format!(
                        "unknown recovery policy `{name}` (expected drop, requeue, or migrate)"
                    ),
                })?
            }
            None => RecoveryPolicy::default(),
        };
        let catalog = extend_catalog(cursor, base)?;
        let fleet = xrbench_fleet::specfile::fleet_from_value(&cursor.field("fleet")?, &catalog)?;
        let used: BTreeSet<ModelId> = fleet
            .groups
            .iter()
            .flat_map(|g| g.session.users.iter())
            .flat_map(|u| u.spec.models.iter().map(|m| m.model))
            .collect();
        system.check_coverage(&used)?;
        Ok(FleetRun {
            system,
            params,
            workers,
            recovery,
            fleet,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use xrbench_sim::{SlackAwareEdf, UniformProvider};
    use xrbench_workload::{SessionSpec, UsageScenario};

    const UNIFORM_HW: &str = r#""hardware": { "uniform":
        { "engines": 2, "latency_s": 0.001, "energy_j": 0.001 } }"#;

    #[test]
    fn suite_document_reproduces_the_library_path() {
        let doc = RunDocument::from_json_str(&format!(
            r#"{{ "kind": "suite", {UNIFORM_HW}, "repeats": 3 }}"#
        ))
        .unwrap();
        let RunDocument::Suite(suite) = doc else {
            panic!("expected suite");
        };
        assert_eq!(suite.repeats, 3);
        let report = suite.run();
        let system = UniformProvider::new(2, 0.001, 0.001);
        let expected = crate::run_suite(&Harness::new(), &system, 3);
        assert_eq!(report, expected);
        assert_eq!(report.to_json(), expected.to_json());
    }

    #[test]
    fn session_document_reproduces_the_library_path() {
        let doc = RunDocument::from_json_str(&format!(
            r#"{{ "kind": "session", {UNIFORM_HW},
                  "scheduler": "slack-edf", "seed": 7,
                  "session": {{ "name": "party", "uniform":
                       {{ "scenario": "VR Gaming", "users": 4, "stagger_s": 0.01 }} }} }}"#
        ))
        .unwrap();
        let RunDocument::Session(run) = doc else {
            panic!("expected session");
        };
        let report = run.run();
        let system = UniformProvider::new(2, 0.001, 0.001);
        let session = SessionSpec::uniform("party", UsageScenario::VrGaming.spec(), 4, 0.01);
        let expected =
            Harness::new()
                .with_seed(7)
                .run_session(&session, &system, &mut SlackAwareEdf::new());
        assert_eq!(report, expected);
        assert_eq!(report.scheduler, "slack-edf");
    }

    #[test]
    fn fleet_document_reproduces_the_library_path() {
        let doc = RunDocument::from_json_str(&format!(
            r#"{{ "kind": "fleet", {UNIFORM_HW}, "workers": 2,
                  "fleet": {{ "name": "arcade", "groups": [
                      {{ "name": "vr", "replicas": 4, "session":
                           {{ "name": "party", "uniform":
                                {{ "scenario": "VR Gaming", "users": 2,
                                   "stagger_s": 0.002 }} }} }} ] }} }}"#
        ))
        .unwrap();
        let RunDocument::Fleet(run) = doc else {
            panic!("expected fleet");
        };
        let report = run.run();
        let system = UniformProvider::new(2, 0.001, 0.001);
        let fleet = xrbench_fleet::FleetSpec::new("arcade").group(
            "vr",
            SessionSpec::uniform("party", UsageScenario::VrGaming.spec(), 2, 0.002),
            4,
        );
        // The worker count cannot change the report (PR 4 invariant),
        // so the document's `workers: 2` matches any library run.
        let expected = Harness::new().run_fleet(&fleet, &system, 1);
        assert_eq!(report, expected);
    }

    #[test]
    fn faulted_fleet_document_reproduces_the_library_path() {
        use xrbench_sim::{FaultProcess, RecoveryPolicy};
        let doc = RunDocument::from_json_str(&format!(
            r#"{{ "kind": "fleet", {UNIFORM_HW}, "workers": 2,
                  "recovery": "requeue",
                  "fleet": {{ "name": "churn", "groups": [
                      {{ "name": "vr", "replicas": 3, "session":
                           {{ "name": "party", "uniform":
                                {{ "scenario": "VR Gaming", "users": 2,
                                   "stagger_s": 0.002 }} }},
                         "faults": {{ "failure_rate_per_s": 3.0,
                                      "mean_downtime_s": 0.05 }} }} ] }} }}"#
        ))
        .unwrap();
        let RunDocument::Fleet(run) = doc else {
            panic!("expected fleet");
        };
        assert_eq!(run.recovery, RecoveryPolicy::Requeue);
        let report = run.run();
        let system = UniformProvider::new(2, 0.001, 0.001);
        let fleet = xrbench_fleet::FleetSpec::new("churn").group_faulted(
            "vr",
            SessionSpec::uniform("party", UsageScenario::VrGaming.spec(), 2, 0.002),
            3,
            FaultProcess {
                failure_rate_per_s: 3.0,
                mean_downtime_s: 0.05,
                ..FaultProcess::default()
            },
        );
        let expected =
            Harness::new().run_fleet_with_recovery(&fleet, &system, 1, RecoveryPolicy::Requeue);
        assert_eq!(report, expected);
        // The policy comparison runs off the same decoded document.
        let cmp = run.compare_policies();
        assert_eq!(cmp.policies.len(), 3);
        assert_eq!(
            cmp.policy("requeue").unwrap().executed_inferences,
            expected.executed_inferences
        );
    }

    #[test]
    fn failover_aware_scheduler_decodes_and_builds() {
        let value = parse_json(r#""failover-aware""#).unwrap();
        let spec = SchedulerSpec::from_value(&Cursor::root(&value)).unwrap();
        assert_eq!(spec, SchedulerSpec::FailoverAware);
        assert_eq!(spec.build().name(), "failover-aware");
    }

    #[test]
    fn accelerator_hardware_builds_the_table5_system() {
        let value = parse_json(r#"{ "accelerator": { "id": "j", "pes": 4096 } }"#).unwrap();
        let spec = SystemSpec::from_value(&Cursor::root(&value)).unwrap();
        assert_eq!(spec, SystemSpec::Accelerator { id: 'J', pes: 4096 });
        let system = spec.build();
        assert_eq!(system.num_engines(), 2);
        assert!(system.label().contains("J [HDA]"), "{}", system.label());
    }

    #[test]
    fn table_hardware_round_trips_costs_and_labels() {
        let value = parse_json(
            r#"{ "table": { "engines": 2, "label": "soc",
                  "engine_labels": ["WS@1", "OS@1"],
                  "costs": [
                    { "model": "HT", "engine": 0, "latency_s": 0.002, "energy_j": 0.01 },
                    { "model": "HT", "engine": 1, "latency_s": 0.004, "energy_j": 0.02 }
                  ] } }"#,
        )
        .unwrap();
        let spec = SystemSpec::from_value(&Cursor::root(&value)).unwrap();
        let system = spec.build();
        assert_eq!(system.label(), "soc");
        assert_eq!(system.engine_label(1), "OS@1");
        assert_eq!(system.cost(ModelId::HandTracking, 0).latency_s, 0.002);
    }

    #[test]
    fn incomplete_cost_tables_fail_at_load_time() {
        // VR Gaming dispatches HT/ES/GE; the table only costs HT.
        let err = RunDocument::from_json_str(
            r#"{ "kind": "session",
                 "hardware": { "table": { "engines": 1, "costs": [
                     { "model": "HT", "engine": 0,
                       "latency_s": 0.001, "energy_j": 0.001 } ] } },
                 "session": { "name": "s", "uniform":
                     { "scenario": "VR Gaming", "users": 1 } } }"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("no cost registered for ES"),
            "{err}"
        );
    }

    #[test]
    fn document_rejections_never_panic() {
        for (text, needle) in [
            ("{", "invalid JSON"),
            (r#"{ "kind": "party" }"#, "unknown document kind `party`"),
            (r#"{ "hardware": {} }"#, "missing required field `kind`"),
            (
                r#"{ "kind": "suite", "hardware": { "accelerator":
                     { "id": "Z", "pes": 4096 } } }"#,
                "unknown accelerator `Z`",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "accelerator":
                     { "id": "J", "pes": 0 } } }"#,
                "pes must be at least 1",
            ),
            (
                r#"{ "kind": "suite", "hardware": {} }"#,
                "exactly one of `accelerator`, `uniform`, or `table`",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 0, "latency_s": 0.001, "energy_j": 0.0 } } }"#,
                "engines must be at least 1",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 1, "latency_s": -0.5, "energy_j": 0.0 } } }"#,
                "latency must be positive",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "table": { "engines": 1, "costs": [
                     { "model": "HT", "engine": 0,
                       "latency_s": 0.001, "energy_j": -5.0 } ] } } }"#,
                "energy must be non-negative",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "repeats": 0 }"#,
                "repeats must be at least 1",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "include_builtin": false }"#,
                "suite catalog is empty",
            ),
            (
                r#"{ "kind": "session", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "scheduler": "fifo",
                     "session": { "name": "s", "uniform":
                         { "scenario": "VR Gaming", "users": 1 } } }"#,
                "unknown scheduler `fifo`",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "duration_s": 0.0 }"#,
                "duration must be positive",
            ),
            (
                r#"{ "kind": "suite", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "repeat": 3 }"#,
                "unknown field `repeat`",
            ),
            (
                r#"{ "kind": "fleet", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "recovery": "teleport",
                     "fleet": { "name": "f", "groups": [
                         { "name": "a", "replicas": 1, "session":
                             { "name": "s", "uniform":
                                 { "scenario": "VR Gaming", "users": 1 } } } ] } }"#,
                "unknown recovery policy `teleport`",
            ),
            (
                r#"{ "kind": "session", "hardware": { "uniform":
                     { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
                     "recovery": "drop",
                     "session": { "name": "s", "uniform":
                         { "scenario": "VR Gaming", "users": 1 } } }"#,
                "unknown field `recovery`",
            ),
        ] {
            let err = RunDocument::from_json_str(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn suite_local_scenarios_extend_the_builtins() {
        let doc = RunDocument::from_json_str(&format!(
            r#"{{ "kind": "suite", {UNIFORM_HW}, "repeats": 1,
                  "scenarios": [ {{ "name": "Fitness", "models": [
                      {{ "model": "HT", "target_fps": 30.0 }} ] }} ] }}"#
        ))
        .unwrap();
        let RunDocument::Suite(suite) = doc else {
            panic!("expected suite");
        };
        assert_eq!(suite.catalog.len(), 8);
        assert!(suite.catalog.contains("Fitness"));
        let report = suite.run();
        assert_eq!(report.scenarios.len(), 8);
    }
}
