//! A minimal deterministic fork/join helper: map a job list across a
//! bounded set of `std::thread` workers, returning results in job
//! order.
//!
//! Workers claim job indices from a shared atomic counter and write
//! each result into its pre-assigned slot, so the output order is the
//! input order no matter how the OS schedules the workers — the
//! property the suite runner and the figure sweeps rely on for
//! bit-for-bit reproducibility. Worker panics propagate out of the
//! enclosing `std::thread::scope`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count for benchmark sweeps:
/// `max(available_parallelism, 2)`, so a fan-out is exercised even on
/// a single-core host (workers then time-slice).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Maps `f` over `jobs` using up to `workers` threads, preserving job
/// order in the returned vector.
///
/// # Panics
///
/// Panics if `workers == 0`, or propagates the first worker panic.
pub fn parallel_map<T, R, F>(jobs: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "workers must be at least 1");
    let workers = workers.min(jobs.len());
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next_job = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(idx) else {
                    break;
                };
                let result = f(job);
                *slots[idx].lock().expect("slot lock poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 7] {
            let out = parallel_map(&jobs, workers, |&j| j * j);
            let expect: Vec<u64> = jobs.iter().map(|&j| j * j).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u64> = parallel_map(&[], 4, |&j: &u64| j);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_is_at_least_two() {
        assert!(default_workers() >= 2);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_rejected() {
        let _ = parallel_map(&[1u64], 0, |&j| j);
    }
}
