//! # xrbench-core
//!
//! The XRBench benchmark harness (paper Figure 2): it wires together
//! the workload descriptions (`xrbench-workload`), the benchmark
//! runtime (`xrbench-sim`), the evaluated ML system (any
//! [`xrbench_sim::CostProvider`], typically an
//! [`xrbench_accel::AcceleratorSystem`]), and the scoring module
//! (`xrbench-score`), producing [`ScenarioReport`]s and whole-suite
//! [`BenchmarkReport`]s with the overall XRBench Score.
//!
//! The [`figures`] module regenerates the data behind every figure in
//! the paper's evaluation (Figures 5, 6, 7, and the appendix Figure 8).
//!
//! ## Example
//!
//! ```
//! use xrbench_core::Harness;
//! use xrbench_accel::{table5, AcceleratorSystem};
//! use xrbench_workload::UsageScenario;
//!
//! let cfg = table5().into_iter().find(|c| c.id == 'A').unwrap();
//! let system = AcceleratorSystem::new(cfg, 8192);
//! let report = Harness::new().run_scenario(UsageScenario::VrGaming, &system);
//! assert!(report.overall() >= 0.0 && report.overall() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod figures;
mod harness;
pub mod pareto;
pub mod pool;
mod report;
mod runner;
pub mod spec;
mod suite;
pub mod sweep;
mod timeline;

pub use error::{ErrorCode, XrError};
pub use harness::{Harness, ScoreParams};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use report::{
    BenchmarkReport, BreakdownReport, ModelReport, ScenarioReport, SessionReport, UserReport,
};
pub use runner::{RunReport, Runner};
pub use spec::{FleetRun, RunDocument, RunParams, SchedulerSpec, SessionRun, SuiteRun, SystemSpec};
pub use suite::{run_sessions, run_suite, run_suite_catalog};
#[allow(deprecated)]
pub use suite::{
    run_suite_catalog_serial, run_suite_catalog_with_workers, run_suite_parallel,
    run_suite_parallel_with_workers, run_suite_serial,
};
pub use sweep::{
    AxisMarginalReport, SweepDocument, SweepOptions, SweepOutcome, SweepPoint, SweepPointReport,
    SweepReport, SweepShardState, SweepStats, SweepWorkload, SweepWorkloadKind,
};
pub use timeline::render_timeline;
// The fleet layer's user-facing types, re-exported so harness users
// can build and consume fleets without naming the crate.
pub use xrbench_fleet::{DeviceGroup, FleetReport, FleetRunConfig, FleetSpec};
