//! The unified error surface: one `ErrorCode`-carrying hierarchy for
//! every failure the stack can report.
//!
//! Before this module existed, each layer grew its own error type —
//! [`SpecError`] for spec loading, [`ShardError`] for distributed
//! fleet children, analyzer refusals as ad-hoc strings, and raw
//! `std::io::Error` text for CLI file I/O — and every caller that
//! spanned layers (the CLI, the gates) had to juggle all four. The
//! [`Runner`](crate::Runner) entry point returns exactly one type,
//! [`XrError`], which wraps each legacy surface **without changing a
//! single rendered message**: `Display` parity with the pre-existing
//! error strings is pinned by the CLI's golden stderr tests, so the
//! unification is invisible to users and fixtures.
//!
//! Every error carries a stable machine-readable [`ErrorCode`]
//! category and maps to a process exit code (`1` for run errors —
//! usage errors are the CLI's own `2` and never reach this type).

use std::fmt;

use xrbench_fleet::ShardError;
use xrbench_workload::SpecError;

/// Stable machine-readable categories for [`XrError`].
///
/// Codes are coarse on purpose: they classify *which surface* failed,
/// not the individual diagnostic (spec diagnostics carry JSON paths,
/// analyzer findings carry `XA###` codes of their own).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// A spec document failed to load or validate ([`SpecError`]).
    Spec,
    /// The static analyzer refused the run (`--strict` with errors).
    Analysis,
    /// A distributed shard child failed ([`ShardError`]) or shard
    /// states did not merge.
    Shard,
    /// File or process I/O failed (unreadable spec, unwritable
    /// report, un-execable child binary).
    Io,
}

impl ErrorCode {
    /// The stable lowercase name (`spec`, `analysis`, `shard`, `io`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Spec => "spec",
            ErrorCode::Analysis => "analysis",
            ErrorCode::Shard => "shard",
            ErrorCode::Io => "io",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any error a [`Runner`](crate::Runner) run can produce.
///
/// `Display` reproduces the wrapped surface's rendering verbatim —
/// callers that previously formatted a `SpecError` or `ShardError`
/// get byte-identical text from the wrapping `XrError`.
#[derive(Debug)]
pub enum XrError {
    /// A spec document failed to load or validate.
    Spec(SpecError),
    /// The static analyzer found errors and the caller asked for
    /// strict execution. Carries the rendered `XA###` diagnostics,
    /// one per line.
    Infeasible {
        /// The rendered error-severity diagnostics.
        diagnostics: Vec<String>,
    },
    /// A distributed shard child failed after its retry.
    Shard(ShardError),
    /// File I/O failed. `message` is the full pre-formatted
    /// diagnostic (e.g. `cannot read specs/x.json: No such file`),
    /// matching the strings the CLI always printed.
    Io {
        /// The complete diagnostic text.
        message: String,
    },
}

impl XrError {
    /// The error's stable category code.
    pub fn code(&self) -> ErrorCode {
        match self {
            XrError::Spec(_) => ErrorCode::Spec,
            XrError::Infeasible { .. } => ErrorCode::Analysis,
            XrError::Shard(_) => ErrorCode::Shard,
            XrError::Io { .. } => ErrorCode::Io,
        }
    }

    /// The process exit code this error maps to (always `1`: run
    /// errors; usage errors never reach this type).
    pub fn exit_code(&self) -> i32 {
        1
    }

    /// Builds an I/O error from an action, a path, and the OS error —
    /// rendered exactly as the CLI's historical diagnostics
    /// (`cannot <action> <path>: <err>`).
    pub fn io(action: &str, path: impl fmt::Display, err: impl fmt::Display) -> Self {
        XrError::Io {
            message: format!("cannot {action} {path}: {err}"),
        }
    }
}

impl fmt::Display for XrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Parity: the wrapped surfaces render themselves.
            XrError::Spec(e) => e.fmt(f),
            XrError::Shard(e) => e.fmt(f),
            XrError::Io { message } => f.write_str(message),
            XrError::Infeasible { diagnostics } => {
                write!(
                    f,
                    "refusing statically-infeasible spec (--strict):\n{}",
                    diagnostics.join("\n")
                )
            }
        }
    }
}

impl std::error::Error for XrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XrError::Spec(e) => Some(e),
            XrError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for XrError {
    fn from(e: SpecError) -> Self {
        XrError::Spec(e)
    }
}

impl From<ShardError> for XrError {
    fn from(e: ShardError) -> Self {
        XrError::Shard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parity_with_wrapped_surfaces() {
        let spec = SpecError::Invalid {
            path: "$.kind".to_string(),
            message: "boom".to_string(),
        };
        let wrapped = XrError::from(spec.clone());
        assert_eq!(wrapped.to_string(), spec.to_string());
        assert_eq!(wrapped.code(), ErrorCode::Spec);

        let make_shard = || ShardError {
            shard: 3,
            message: "exit status 1".to_string(),
            stderr: "child said no".to_string(),
        };
        let wrapped = XrError::from(make_shard());
        assert_eq!(wrapped.to_string(), make_shard().to_string());
        assert_eq!(wrapped.code(), ErrorCode::Shard);
    }

    #[test]
    fn io_errors_render_the_historical_diagnostic() {
        let e = XrError::io("read", "specs/x.json", "No such file or directory");
        assert_eq!(
            e.to_string(),
            "cannot read specs/x.json: No such file or directory"
        );
        assert_eq!(e.code(), ErrorCode::Io);
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn infeasible_lists_diagnostics_line_per_line() {
        let e = XrError::Infeasible {
            diagnostics: vec!["error[XA001] a".to_string(), "error[XA002] b".to_string()],
        };
        let s = e.to_string();
        assert!(s.contains("--strict"));
        assert!(s.contains("error[XA001] a\nerror[XA002] b"), "{s}");
        assert_eq!(e.code(), ErrorCode::Analysis);
    }

    #[test]
    fn codes_have_stable_names() {
        for (code, name) in [
            (ErrorCode::Spec, "spec"),
            (ErrorCode::Analysis, "analysis"),
            (ErrorCode::Shard, "shard"),
            (ErrorCode::Io, "io"),
        ] {
            assert_eq!(code.as_str(), name);
            assert_eq!(code.to_string(), name);
        }
    }
}
