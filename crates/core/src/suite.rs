//! Whole-suite runs: all seven usage scenarios → XRBench Score.
//!
//! Two execution paths produce bit-for-bit identical reports:
//!
//! * [`run_suite_serial`] — one (scenario, repeat) run after another.
//! * [`run_suite_parallel`] — the same (scenario, repeat) job grid
//!   fanned across `std::thread` workers. Determinism holds because
//!   every job derives its seed from the harness seed exactly as the
//!   serial path does, results land in pre-assigned slots, and the
//!   order-sensitive float aggregation happens after the join, in
//!   serial order.
//!
//! [`run_suite`] is the public entry point and defaults to the
//! parallel path — the full 13-accelerator × 7-scenario sweeps behind
//! the figure binaries are embarrassingly parallel, and the suite is
//! the unit of work they repeat.

use xrbench_score::benchmark_score;
use xrbench_sim::CostProvider;
use xrbench_workload::UsageScenario;

use crate::harness::Harness;
use crate::report::{BenchmarkReport, ScenarioReport};

/// One (scenario, repeat) cell of the suite's job grid.
#[derive(Debug, Clone, Copy)]
struct SuiteJob {
    scenario_idx: usize,
    scenario: UsageScenario,
    seed_offset: u32,
}

/// Builds the suite's job grid in deterministic order: scenarios in
/// Table 2 order, repeats in seed order. Dynamic scenarios (those with
/// probabilistic cascades) are averaged over `repeats` independent
/// seeds; static scenarios run once, as their outcome is
/// seed-independent up to jitter.
fn suite_jobs(repeats: u32) -> Vec<SuiteJob> {
    let mut jobs = Vec::new();
    for (scenario_idx, scenario) in UsageScenario::ALL.into_iter().enumerate() {
        let runs = if scenario.is_dynamic() { repeats } else { 1 };
        for seed_offset in 0..runs {
            jobs.push(SuiteJob {
                scenario_idx,
                scenario,
                seed_offset,
            });
        }
    }
    jobs
}

/// Runs one job exactly as the serial path would.
fn run_job(harness: &Harness, system: &dyn CostProvider, job: SuiteJob) -> ScenarioReport {
    let h = harness.clone().with_seed(
        harness
            .sim_config()
            .seed
            .wrapping_add(u64::from(job.seed_offset)),
    );
    h.run_scenario(job.scenario, system)
}

/// Aggregates per-job reports (grouped by scenario, in run order) into
/// the final benchmark report.
fn assemble(system_label: String, per_scenario: Vec<Vec<ScenarioReport>>) -> BenchmarkReport {
    let scenarios: Vec<ScenarioReport> = per_scenario.into_iter().map(average_reports).collect();
    let overall: Vec<f64> = scenarios.iter().map(|s| s.overall()).collect();
    BenchmarkReport {
        system: system_label,
        xrbench_score: benchmark_score(&overall),
        scenarios,
    }
}

/// Runs the full benchmark suite `Ω` (all usage scenarios) on one
/// system and aggregates the overall XRBench Score (Definition 16).
///
/// This is the parallel path by default (see [`run_suite_parallel`]);
/// it produces bit-for-bit the same report as [`run_suite_serial`].
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn run_suite(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
) -> BenchmarkReport {
    run_suite_parallel(harness, system, repeats)
}

/// Serial reference implementation of the suite run.
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn run_suite_serial(
    harness: &Harness,
    system: &dyn CostProvider,
    repeats: u32,
) -> BenchmarkReport {
    assert!(repeats > 0, "repeats must be at least 1");
    let mut per_scenario: Vec<Vec<ScenarioReport>> =
        (0..UsageScenario::ALL.len()).map(|_| Vec::new()).collect();
    for job in suite_jobs(repeats) {
        per_scenario[job.scenario_idx].push(run_job(harness, system, job));
    }
    assemble(system.label(), per_scenario)
}

/// Parallel suite run: fans the (scenario × repeat) job grid across
/// `std::thread` workers and aggregates deterministically.
///
/// Worker count is `max(available_parallelism, 2)` capped at the job
/// count, so the sweep always exercises a real multi-worker fan-out
/// (workers time-slice on a single-core host).
///
/// # Panics
///
/// Panics if `repeats == 0`, or propagates a panic from a worker.
pub fn run_suite_parallel(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
) -> BenchmarkReport {
    run_suite_parallel_with_workers(harness, system, repeats, crate::pool::default_workers())
}

/// [`run_suite_parallel`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `repeats == 0` or `workers == 0`, or propagates a panic
/// from a worker.
pub fn run_suite_parallel_with_workers(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
    workers: usize,
) -> BenchmarkReport {
    assert!(repeats > 0, "repeats must be at least 1");
    let jobs = suite_jobs(repeats);
    let reports = crate::pool::parallel_map(&jobs, workers, |job| run_job(harness, system, *job));

    // Regroup into (scenario, run-order) exactly like the serial path:
    // `suite_jobs` emits jobs grouped by scenario in seed order and
    // `parallel_map` preserves job order, so a linear walk restores
    // both orders.
    let mut per_scenario: Vec<Vec<ScenarioReport>> =
        (0..UsageScenario::ALL.len()).map(|_| Vec::new()).collect();
    for (job, report) in jobs.iter().zip(reports) {
        per_scenario[job.scenario_idx].push(report);
    }
    assemble(system.label(), per_scenario)
}

/// Averages the numeric fields of repeated runs of the same scenario,
/// keeping the first run's structural fields.
fn average_reports(mut reports: Vec<ScenarioReport>) -> ScenarioReport {
    let n = reports.len() as f64;
    if reports.len() == 1 {
        return reports.remove(0);
    }
    let mut acc = reports.remove(0);
    for r in &reports {
        acc.breakdown.realtime_score += r.breakdown.realtime_score;
        acc.breakdown.energy_score += r.breakdown.energy_score;
        acc.breakdown.accuracy_score += r.breakdown.accuracy_score;
        acc.breakdown.qoe_score += r.breakdown.qoe_score;
        acc.breakdown.overall_score += r.breakdown.overall_score;
        acc.drop_rate += r.drop_rate;
        acc.total_energy_mj += r.total_energy_mj;
        acc.mean_utilization += r.mean_utilization;
        for (am, rm) in acc.models.iter_mut().zip(&r.models) {
            am.per_model_score += rm.per_model_score;
            am.qoe += rm.qoe;
            am.mean_latency_ms += rm.mean_latency_ms;
            am.mean_energy_mj += rm.mean_energy_mj;
            am.total_frames += rm.total_frames;
            am.executed_frames += rm.executed_frames;
            am.dropped_frames += rm.dropped_frames;
            am.untriggered_frames += rm.untriggered_frames;
            am.missed_deadlines += rm.missed_deadlines;
        }
    }
    acc.breakdown.realtime_score /= n;
    acc.breakdown.energy_score /= n;
    acc.breakdown.accuracy_score /= n;
    acc.breakdown.qoe_score /= n;
    acc.breakdown.overall_score /= n;
    acc.drop_rate /= n;
    acc.total_energy_mj /= n;
    acc.mean_utilization /= n;
    for am in &mut acc.models {
        am.per_model_score /= n;
        am.qoe /= n;
        am.mean_latency_ms /= n;
        am.mean_energy_mj /= n;
        // Frame counters are averaged too (rounded), so an averaged
        // report reads like a single representative run.
        am.total_frames = (am.total_frames as f64 / n).round() as u64;
        am.executed_frames = (am.executed_frames as f64 / n).round() as u64;
        am.dropped_frames = (am.dropped_frames as f64 / n).round() as u64;
        am.untriggered_frames = (am.untriggered_frames as f64 / n).round() as u64;
        am.missed_deadlines = (am.missed_deadlines as f64 / n).round() as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;

    #[test]
    fn suite_covers_all_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 3);
        assert_eq!(b.scenarios.len(), 7);
        assert!(b.xrbench_score > 0.9);
    }

    #[test]
    fn xrbench_score_is_mean_of_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 2);
        let mean: f64 =
            b.scenarios.iter().map(|s| s.overall()).sum::<f64>() / b.scenarios.len() as f64;
        assert!((b.xrbench_score - mean).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new();
        let serial = run_suite_serial(&h, &p, 4);
        for workers in [1, 2, 5] {
            let parallel = run_suite_parallel_with_workers(&h, &p, 4, workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite(&Harness::new(), &p, 0);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected_serial() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite_serial(&Harness::new(), &p, 0);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite_parallel_with_workers(&Harness::new(), &p, 1, 0);
    }
}
