//! Whole-suite runs: all seven usage scenarios → XRBench Score.

use xrbench_score::benchmark_score;
use xrbench_sim::CostProvider;
use xrbench_workload::UsageScenario;

use crate::harness::Harness;
use crate::report::BenchmarkReport;

/// Runs the full benchmark suite `Ω` (all usage scenarios) on one
/// system and aggregates the overall XRBench Score (Definition 16).
///
/// Dynamic scenarios (those with probabilistic cascades) are averaged
/// over `repeats` independent seeds; static scenarios are run once, as
/// their outcome is seed-independent up to jitter.
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn run_suite(harness: &Harness, system: &dyn CostProvider, repeats: u32) -> BenchmarkReport {
    assert!(repeats > 0, "repeats must be at least 1");
    let mut scenarios = Vec::with_capacity(UsageScenario::ALL.len());
    for scenario in UsageScenario::ALL {
        let runs = if scenario.is_dynamic() { repeats } else { 1 };
        let mut reports = Vec::with_capacity(runs as usize);
        for i in 0..runs {
            let h = harness
                .clone()
                .with_seed(harness.sim_config().seed.wrapping_add(i as u64));
            reports.push(h.run_scenario(scenario, system));
        }
        scenarios.push(average_reports(reports));
    }
    let overall: Vec<f64> = scenarios.iter().map(|s| s.overall()).collect();
    BenchmarkReport {
        system: system.label(),
        xrbench_score: benchmark_score(&overall),
        scenarios,
    }
}

/// Averages the numeric fields of repeated runs of the same scenario,
/// keeping the first run's structural fields.
fn average_reports(mut reports: Vec<crate::report::ScenarioReport>) -> crate::report::ScenarioReport {
    let n = reports.len() as f64;
    if reports.len() == 1 {
        return reports.remove(0);
    }
    let mut acc = reports.remove(0);
    for r in &reports {
        acc.breakdown.realtime_score += r.breakdown.realtime_score;
        acc.breakdown.energy_score += r.breakdown.energy_score;
        acc.breakdown.accuracy_score += r.breakdown.accuracy_score;
        acc.breakdown.qoe_score += r.breakdown.qoe_score;
        acc.breakdown.overall_score += r.breakdown.overall_score;
        acc.drop_rate += r.drop_rate;
        acc.total_energy_mj += r.total_energy_mj;
        acc.mean_utilization += r.mean_utilization;
        for (am, rm) in acc.models.iter_mut().zip(&r.models) {
            am.per_model_score += rm.per_model_score;
            am.qoe += rm.qoe;
            am.mean_latency_ms += rm.mean_latency_ms;
            am.mean_energy_mj += rm.mean_energy_mj;
            am.total_frames += rm.total_frames;
            am.executed_frames += rm.executed_frames;
            am.dropped_frames += rm.dropped_frames;
            am.untriggered_frames += rm.untriggered_frames;
            am.missed_deadlines += rm.missed_deadlines;
        }
    }
    acc.breakdown.realtime_score /= n;
    acc.breakdown.energy_score /= n;
    acc.breakdown.accuracy_score /= n;
    acc.breakdown.qoe_score /= n;
    acc.breakdown.overall_score /= n;
    acc.drop_rate /= n;
    acc.total_energy_mj /= n;
    acc.mean_utilization /= n;
    for am in &mut acc.models {
        am.per_model_score /= n;
        am.qoe /= n;
        am.mean_latency_ms /= n;
        am.mean_energy_mj /= n;
        // Frame counters are averaged too (rounded), so an averaged
        // report reads like a single representative run.
        am.total_frames = (am.total_frames as f64 / n).round() as u64;
        am.executed_frames = (am.executed_frames as f64 / n).round() as u64;
        am.dropped_frames = (am.dropped_frames as f64 / n).round() as u64;
        am.untriggered_frames = (am.untriggered_frames as f64 / n).round() as u64;
        am.missed_deadlines = (am.missed_deadlines as f64 / n).round() as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;

    #[test]
    fn suite_covers_all_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 3);
        assert_eq!(b.scenarios.len(), 7);
        assert!(b.xrbench_score > 0.9);
    }

    #[test]
    fn xrbench_score_is_mean_of_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 2);
        let mean: f64 =
            b.scenarios.iter().map(|s| s.overall()).sum::<f64>() / b.scenarios.len() as f64;
        assert!((b.xrbench_score - mean).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite(&Harness::new(), &p, 0);
    }
}
