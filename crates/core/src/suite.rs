//! Whole-suite runs: a scenario catalog → XRBench Score.
//!
//! The suite `Ω` is a [`ScenarioCatalog`] — by default the seven
//! Table 2 scenarios, but any catalog with user-defined scenarios
//! registered through `ScenarioBuilder` runs identically. Two
//! execution paths produce bit-for-bit identical reports:
//!
//! * [`run_suite_serial`] — one (scenario, repeat) run after another.
//! * [`run_suite_parallel`] — the same (scenario, repeat) job grid
//!   fanned across `std::thread` workers. Determinism holds because
//!   every job derives its seed from the harness seed exactly as the
//!   serial path does, results land in pre-assigned slots, and the
//!   order-sensitive float aggregation happens after the join, in
//!   serial order.
//!
//! [`run_suite`] is the public entry point and defaults to the
//! parallel path over the built-in catalog — the full 13-accelerator ×
//! 7-scenario sweeps behind the figure binaries are embarrassingly
//! parallel, and the suite is the unit of work they repeat.
//! [`run_sessions`] is the session-aware parallel path: a batch of
//! multi-user sessions fanned across the same worker pool.
//!
//! The historical per-strategy entry points ([`run_suite_serial`],
//! [`run_suite_parallel`], and the `_with_workers` variants) are
//! deprecated shims: serial/parallel equivalence is proven, so the
//! strategy is an implementation detail and [`run_suite`] /
//! [`run_suite_catalog`] (or [`crate::Runner`]) are the API.

use xrbench_score::benchmark_score;
use xrbench_sim::{CostProvider, LatencyGreedy};
use xrbench_workload::{ScenarioCatalog, ScenarioSpec, SessionSpec};

use crate::harness::Harness;
use crate::report::{BenchmarkReport, ScenarioReport, SessionReport};

/// One (scenario, repeat) cell of the suite's job grid.
#[derive(Debug, Clone, Copy)]
struct SuiteJob {
    scenario_idx: usize,
    seed_offset: u32,
}

/// Builds the suite's job grid in deterministic order: scenarios in
/// catalog order, repeats in seed order. Dynamic scenarios (those with
/// probabilistic cascades) are averaged over `repeats` independent
/// seeds; static scenarios run once, as their outcome is
/// seed-independent up to jitter.
fn suite_jobs(specs: &[&ScenarioSpec], repeats: u32) -> Vec<SuiteJob> {
    let mut jobs = Vec::new();
    for (scenario_idx, spec) in specs.iter().enumerate() {
        let runs = if spec.is_dynamic() { repeats } else { 1 };
        for seed_offset in 0..runs {
            jobs.push(SuiteJob {
                scenario_idx,
                seed_offset,
            });
        }
    }
    jobs
}

/// Runs one job exactly as the serial path would.
fn run_job(
    harness: &Harness,
    system: &dyn CostProvider,
    spec: &ScenarioSpec,
    job: SuiteJob,
) -> ScenarioReport {
    let h = harness.clone().with_seed(
        harness
            .sim_config()
            .seed
            .wrapping_add(u64::from(job.seed_offset)),
    );
    h.run_spec(spec, system, &mut LatencyGreedy::new()).0
}

/// Aggregates per-job reports (grouped by scenario, in run order) into
/// the final benchmark report.
fn assemble(system_label: String, per_scenario: Vec<Vec<ScenarioReport>>) -> BenchmarkReport {
    let scenarios: Vec<ScenarioReport> = per_scenario.into_iter().map(average_reports).collect();
    let overall: Vec<f64> = scenarios.iter().map(|s| s.overall()).collect();
    BenchmarkReport {
        system: system_label,
        xrbench_score: benchmark_score(&overall),
        scenarios,
    }
}

/// Runs the full benchmark suite `Ω` (the built-in catalog: all seven
/// Table 2 usage scenarios) on one system and aggregates the overall
/// XRBench Score (Definition 16).
///
/// This is the parallel path by default (see [`run_suite_parallel`]);
/// it produces bit-for-bit the same report as [`run_suite_serial`].
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn run_suite(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
) -> BenchmarkReport {
    catalog_parallel_impl(
        harness,
        system,
        repeats,
        &ScenarioCatalog::builtin(),
        crate::pool::default_workers(),
    )
}

/// [`run_suite`] over an explicit [`ScenarioCatalog`]: user-defined
/// scenarios registered in the catalog are benchmarked exactly like
/// the built-ins, in registration order.
///
/// # Panics
///
/// Panics if `repeats == 0` or the catalog is empty.
pub fn run_suite_catalog(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
    catalog: &ScenarioCatalog,
) -> BenchmarkReport {
    catalog_parallel_impl(
        harness,
        system,
        repeats,
        catalog,
        crate::pool::default_workers(),
    )
}

/// Serial reference implementation of the suite run over the built-in
/// catalog.
///
/// # Panics
///
/// Panics if `repeats == 0`.
#[deprecated(note = "byte-identical to `run_suite`; use it (or `Runner::run`) instead")]
#[doc(hidden)]
pub fn run_suite_serial(
    harness: &Harness,
    system: &dyn CostProvider,
    repeats: u32,
) -> BenchmarkReport {
    catalog_serial_impl(harness, system, repeats, &ScenarioCatalog::builtin())
}

/// Serial reference implementation over an explicit catalog.
///
/// # Panics
///
/// Panics if `repeats == 0` or the catalog is empty.
#[deprecated(note = "byte-identical to `run_suite_catalog`; use it (or `Runner::run`) instead")]
#[doc(hidden)]
pub fn run_suite_catalog_serial(
    harness: &Harness,
    system: &dyn CostProvider,
    repeats: u32,
    catalog: &ScenarioCatalog,
) -> BenchmarkReport {
    catalog_serial_impl(harness, system, repeats, catalog)
}

/// The serial execution strategy (the reference the parallel path is
/// proven against).
pub(crate) fn catalog_serial_impl(
    harness: &Harness,
    system: &dyn CostProvider,
    repeats: u32,
    catalog: &ScenarioCatalog,
) -> BenchmarkReport {
    assert!(repeats > 0, "repeats must be at least 1");
    assert!(!catalog.is_empty(), "catalog must not be empty");
    let specs: Vec<&ScenarioSpec> = catalog.iter().collect();
    let mut per_scenario: Vec<Vec<ScenarioReport>> = (0..specs.len()).map(|_| Vec::new()).collect();
    for job in suite_jobs(&specs, repeats) {
        per_scenario[job.scenario_idx].push(run_job(harness, system, specs[job.scenario_idx], job));
    }
    assemble(system.label(), per_scenario)
}

/// Parallel suite run over the built-in catalog: fans the (scenario ×
/// repeat) job grid across `std::thread` workers and aggregates
/// deterministically.
///
/// Worker count is `max(available_parallelism, 2)` capped at the job
/// count, so the sweep always exercises a real multi-worker fan-out
/// (workers time-slice on a single-core host).
///
/// # Panics
///
/// Panics if `repeats == 0`, or propagates a panic from a worker.
#[deprecated(note = "byte-identical to `run_suite`; use it (or `Runner::run`) instead")]
#[doc(hidden)]
pub fn run_suite_parallel(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
) -> BenchmarkReport {
    catalog_parallel_impl(
        harness,
        system,
        repeats,
        &ScenarioCatalog::builtin(),
        crate::pool::default_workers(),
    )
}

/// [`run_suite_parallel`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `repeats == 0` or `workers == 0`, or propagates a panic
/// from a worker.
#[deprecated(note = "the report is byte-identical for any worker count; use `run_suite` instead")]
#[doc(hidden)]
pub fn run_suite_parallel_with_workers(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
    workers: usize,
) -> BenchmarkReport {
    catalog_parallel_impl(
        harness,
        system,
        repeats,
        &ScenarioCatalog::builtin(),
        workers,
    )
}

/// [`run_suite_catalog`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `repeats == 0`, `workers == 0`, or the catalog is empty;
/// propagates a panic from a worker.
#[deprecated(
    note = "the report is byte-identical for any worker count; use `run_suite_catalog` instead"
)]
#[doc(hidden)]
pub fn run_suite_catalog_with_workers(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
    catalog: &ScenarioCatalog,
    workers: usize,
) -> BenchmarkReport {
    catalog_parallel_impl(harness, system, repeats, catalog, workers)
}

/// The parallel execution strategy: fans the job grid across the
/// worker pool and regroups deterministically.
pub(crate) fn catalog_parallel_impl(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    repeats: u32,
    catalog: &ScenarioCatalog,
    workers: usize,
) -> BenchmarkReport {
    assert!(repeats > 0, "repeats must be at least 1");
    assert!(!catalog.is_empty(), "catalog must not be empty");
    let specs: Vec<&ScenarioSpec> = catalog.iter().collect();
    let jobs = suite_jobs(&specs, repeats);
    let reports = crate::pool::parallel_map(&jobs, workers, |job| {
        run_job(harness, system, specs[job.scenario_idx], *job)
    });

    // Regroup into (scenario, run-order) exactly like the serial path:
    // `suite_jobs` emits jobs grouped by scenario in seed order and
    // `parallel_map` preserves job order, so a linear walk restores
    // both orders.
    let mut per_scenario: Vec<Vec<ScenarioReport>> = (0..specs.len()).map(|_| Vec::new()).collect();
    for (job, report) in jobs.iter().zip(reports) {
        per_scenario[job.scenario_idx].push(report);
    }
    assemble(system.label(), per_scenario)
}

/// The session-aware parallel path: runs a batch of multi-user
/// sessions (each a merged concurrent request stream over the shared
/// engines, under the default latency-greedy scheduler) fanned across
/// the worker pool. Reports come back in input order with per-user
/// and aggregate score breakdowns.
///
/// # Panics
///
/// Panics if `sessions` is empty, or propagates a panic from a worker
/// (e.g. a session with no users).
pub fn run_sessions(
    harness: &Harness,
    system: &(dyn CostProvider + Sync),
    sessions: &[SessionSpec],
) -> Vec<SessionReport> {
    assert!(!sessions.is_empty(), "at least one session required");
    let workers = crate::pool::default_workers().min(sessions.len());
    crate::pool::parallel_map(sessions, workers, |session| {
        harness.run_session(session, system, &mut LatencyGreedy::new())
    })
}

/// Averages the numeric fields of repeated runs of the same scenario,
/// keeping the first run's structural fields.
fn average_reports(mut reports: Vec<ScenarioReport>) -> ScenarioReport {
    let n = reports.len() as f64;
    if reports.len() == 1 {
        return reports.remove(0);
    }
    let mut acc = reports.remove(0);
    for r in &reports {
        acc.breakdown.realtime_score += r.breakdown.realtime_score;
        acc.breakdown.energy_score += r.breakdown.energy_score;
        acc.breakdown.accuracy_score += r.breakdown.accuracy_score;
        acc.breakdown.qoe_score += r.breakdown.qoe_score;
        acc.breakdown.overall_score += r.breakdown.overall_score;
        acc.drop_rate += r.drop_rate;
        acc.total_energy_mj += r.total_energy_mj;
        acc.mean_utilization += r.mean_utilization;
        for (am, rm) in acc.models.iter_mut().zip(&r.models) {
            am.per_model_score += rm.per_model_score;
            am.qoe += rm.qoe;
            am.mean_latency_ms += rm.mean_latency_ms;
            am.mean_energy_mj += rm.mean_energy_mj;
            am.total_frames += rm.total_frames;
            am.executed_frames += rm.executed_frames;
            am.dropped_frames += rm.dropped_frames;
            am.untriggered_frames += rm.untriggered_frames;
            am.missed_deadlines += rm.missed_deadlines;
        }
    }
    acc.breakdown.realtime_score /= n;
    acc.breakdown.energy_score /= n;
    acc.breakdown.accuracy_score /= n;
    acc.breakdown.qoe_score /= n;
    acc.breakdown.overall_score /= n;
    acc.drop_rate /= n;
    acc.total_energy_mj /= n;
    acc.mean_utilization /= n;
    for am in &mut acc.models {
        am.per_model_score /= n;
        am.qoe /= n;
        am.mean_latency_ms /= n;
        am.mean_energy_mj /= n;
        // Frame counters are averaged too (rounded), so an averaged
        // report reads like a single representative run.
        am.total_frames = (am.total_frames as f64 / n).round() as u64;
        am.executed_frames = (am.executed_frames as f64 / n).round() as u64;
        am.dropped_frames = (am.dropped_frames as f64 / n).round() as u64;
        am.untriggered_frames = (am.untriggered_frames as f64 / n).round() as u64;
        am.missed_deadlines = (am.missed_deadlines as f64 / n).round() as u64;
    }
    acc
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;
    use xrbench_workload::{ScenarioBuilder, UsageScenario};

    #[test]
    fn suite_covers_all_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 3);
        assert_eq!(b.scenarios.len(), 7);
        assert!(b.xrbench_score > 0.9);
    }

    #[test]
    fn xrbench_score_is_mean_of_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite(&Harness::new(), &p, 2);
        let mean: f64 =
            b.scenarios.iter().map(|s| s.overall()).sum::<f64>() / b.scenarios.len() as f64;
        assert!((b.xrbench_score - mean).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new();
        let serial = run_suite_serial(&h, &p, 4);
        for workers in [1, 2, 5] {
            let parallel = run_suite_parallel_with_workers(&h, &p, 4, workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn builtin_catalog_matches_default_suite() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new();
        let default = run_suite(&h, &p, 3);
        let catalog = run_suite_catalog(&h, &p, 3, &ScenarioCatalog::builtin());
        assert_eq!(default, catalog);
    }

    #[test]
    fn custom_scenarios_run_through_the_suite() {
        use xrbench_models::ModelId::*;
        let mut catalog = ScenarioCatalog::builtin();
        catalog
            .register(
                ScenarioBuilder::new("Workbench Assistant")
                    .describe("hands + depth")
                    .model(HandTracking, 30.0)
                    .model(DepthEstimation, 30.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let p = UniformProvider::new(2, 0.001, 0.001);
        let b = run_suite_catalog(&Harness::new(), &p, 2, &catalog);
        assert_eq!(b.scenarios.len(), 8);
        let custom = b.scenario("Workbench Assistant").expect("registered");
        assert_eq!(custom.models.len(), 2);
        assert!(custom.overall() > 0.9);
        // The built-in prefix is unchanged by the extra registration.
        let builtin_only = run_suite(&Harness::new(), &p, 2);
        assert_eq!(&b.scenarios[..7], &builtin_only.scenarios[..]);
    }

    #[test]
    fn catalog_serial_matches_parallel() {
        use xrbench_models::ModelId::*;
        let mut catalog = ScenarioCatalog::new();
        catalog.register(UsageScenario::VrGaming.spec()).unwrap();
        catalog
            .register(
                ScenarioBuilder::new("Tiny")
                    .model(KeywordDetection, 3.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let p = UniformProvider::new(2, 0.002, 0.001);
        let h = Harness::new();
        let serial = run_suite_catalog_serial(&h, &p, 3, &catalog);
        let parallel = run_suite_catalog(&h, &p, 3, &catalog);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sessions_run_in_parallel_batches() {
        let p = UniformProvider::new(4, 0.001, 0.001);
        let h = Harness::new();
        let sessions: Vec<_> = (1..=3u32)
            .map(|n| {
                SessionSpec::uniform(
                    format!("party-{n}"),
                    UsageScenario::ArGaming.spec(),
                    n,
                    0.01,
                )
            })
            .collect();
        let reports = run_sessions(&h, &p, &sessions);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.session, format!("party-{}", i + 1));
            assert_eq!(r.num_users, i + 1);
            assert_eq!(r.users.len(), i + 1);
        }
        // Batch results are identical to individual runs.
        let solo = h.run_session(&sessions[1], &p, &mut LatencyGreedy::new());
        assert_eq!(reports[1], solo);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite(&Harness::new(), &p, 0);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn zero_repeats_rejected_serial() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite_serial(&Harness::new(), &p, 0);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite_parallel_with_workers(&Harness::new(), &p, 1, 0);
    }

    #[test]
    #[should_panic(expected = "catalog")]
    fn empty_catalog_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_suite_catalog(&Harness::new(), &p, 1, &ScenarioCatalog::new());
    }

    #[test]
    #[should_panic(expected = "session")]
    fn empty_session_batch_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let _ = run_sessions(&Harness::new(), &p, &[]);
    }
}
