//! The benchmark harness: run a scenario, score the timeline.

use xrbench_models::{quality_for, ModelId, QualityType};
use xrbench_score::{
    accuracy_score, energy_score, rt_score, scenario_score, AccuracyParams, EnergyParams,
    InferenceScore, MetricKind, ModelOutcome, RtParams,
};
use xrbench_sim::{CostProvider, LatencyGreedy, Scheduler, SimConfig, SimResult, Simulator};
use xrbench_workload::{ScenarioSpec, SessionSpec, UsageScenario};

use crate::report::{
    BreakdownReport, DropBreakdownReport, ModelDropReport, ModelReport, ScenarioReport,
    SessionReport, UserReport,
};

/// Scoring parameters for all four unit scores.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScoreParams {
    /// Real-time sigmoid parameters (k = 15/ms by default).
    pub rt: RtParams,
    /// Energy score parameters (Emax = 1500 mJ by default).
    pub energy: EnergyParams,
    /// Accuracy score parameters (ε = 1e-6 by default).
    pub accuracy: AccuracyParams,
}

/// Orchestrates workload generation, simulation, and scoring
/// (Figure 2's "Benchmark Framework").
#[derive(Debug, Clone)]
pub struct Harness {
    sim: SimConfig,
    score: ScoreParams,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness with the paper defaults: 1 s runs, k = 15,
    /// Emax = 1500 mJ.
    pub fn new() -> Self {
        Self {
            sim: SimConfig::default(),
            score: ScoreParams::default(),
        }
    }

    /// Overrides the RNG seed (jitter + cascade draws).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Overrides the run duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        self.sim.duration_s = duration_s;
        self
    }

    /// Overrides the scoring parameters.
    pub fn with_score_params(mut self, score: ScoreParams) -> Self {
        self.score = score;
        self
    }

    /// The simulator configuration in use.
    pub fn sim_config(&self) -> SimConfig {
        self.sim
    }

    /// Runs one usage scenario with the default latency-greedy
    /// scheduler and returns its report.
    pub fn run_scenario(
        &self,
        scenario: UsageScenario,
        system: &dyn CostProvider,
    ) -> ScenarioReport {
        self.run_spec(&scenario.spec(), system, &mut LatencyGreedy::new())
            .0
    }

    /// Runs an explicit scenario specification under an explicit
    /// scheduler, returning both the scored report and the raw
    /// simulation result (execution timeline) for deep dives.
    pub fn run_spec(
        &self,
        spec: &ScenarioSpec,
        system: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> (ScenarioReport, SimResult) {
        let scheduler_name = scheduler.name();
        let sim = Simulator::new(self.sim);
        let result = sim.run(spec, system, scheduler);
        let report = self.score_result(spec, system, scheduler_name, &result);
        (report, result)
    }

    /// Runs a multi-user session: all users' merged request streams
    /// share the system's engines concurrently, and the report breaks
    /// scores down per user plus a session-level aggregate
    /// (`xrbench_score::session_breakdown` / `session_score`).
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, session user ids are not
    /// unique, or the system has no engines.
    pub fn run_session(
        &self,
        session: &SessionSpec,
        system: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SessionReport {
        let scheduler_name = scheduler.name();
        let sim = Simulator::new(self.sim);
        let result = sim.run_session(session, system, scheduler);
        self.assemble_session_report(session, system, scheduler_name, &result)
    }

    /// [`Harness::run_session`] under an injected availability process
    /// (engine churn, preemption, throttling): the fault timeline is
    /// derived deterministically from the harness seed, and in-flight
    /// work on a lost engine is recovered per `policy`. Revoked frames
    /// surface as `preempted` / `device_lost` in the per-user and
    /// session drop breakdowns. A quiet process is bit-identical to
    /// [`Harness::run_session`].
    ///
    /// # Panics
    ///
    /// Same contract as [`Harness::run_session`], plus an invalid
    /// fault process (see [`xrbench_sim::FaultProcess::validate`]).
    pub fn run_session_faulted(
        &self,
        session: &SessionSpec,
        system: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        faults: &xrbench_sim::FaultProcess,
        policy: xrbench_sim::RecoveryPolicy,
    ) -> SessionReport {
        let scheduler_name = scheduler.name();
        let sim = Simulator::new(self.sim);
        let result = sim.run_session_faulted(session, system, scheduler, faults, policy);
        self.assemble_session_report(session, system, scheduler_name, &result)
    }

    /// Scores and assembles a simulated session into its report.
    fn assemble_session_report(
        &self,
        session: &SessionSpec,
        system: &dyn CostProvider,
        scheduler_name: &str,
        result: &xrbench_sim::SessionSimResult,
    ) -> SessionReport {
        let mut users = Vec::with_capacity(session.users.len());
        let mut session_drops = DropBreakdownReport::default();
        for u in &session.users {
            let r = result
                .user(u.user)
                .expect("simulator returns every session user");
            let report = self.score_result(&u.spec, system, scheduler_name, r);
            let model_drops: Vec<ModelDropReport> = u
                .spec
                .models
                .iter()
                .map(|sm| {
                    let st = r.stats.get(&sm.model).cloned().unwrap_or_default();
                    ModelDropReport {
                        model: sm.model.abbrev().to_string(),
                        drops: DropBreakdownReport {
                            superseded: st.dropped_superseded,
                            upstream_dropped: st.dropped_upstream,
                            starved: st.dropped_starved,
                            preempted: st.dropped_preempted,
                            device_lost: st.dropped_device_lost,
                        },
                    }
                })
                .collect();
            for m in &model_drops {
                session_drops.add(&m.drops);
            }
            users.push(UserReport {
                user: u.user,
                start_offset_s: u.start_offset_s,
                model_drops,
                report,
            });
        }
        let breakdowns: Vec<xrbench_score::ScenarioBreakdown> =
            users.iter().map(|u| u.report.breakdown.into()).collect();
        let aggregate = BreakdownReport::from(xrbench_score::session_breakdown(&breakdowns));
        SessionReport {
            session: session.name.clone(),
            system: system.label(),
            scheduler: scheduler_name.to_string(),
            num_users: users.len(),
            span_s: result.span_s,
            // The session score is the aggregate's overall (the mean
            // of per-user overalls) — one aggregation path, surfaced
            // under the name the suite-level score uses.
            session_score: aggregate.overall_score,
            aggregate,
            total_energy_mj: result.total_energy_j() * 1e3,
            mean_utilization: result.mean_utilization(),
            drop_rate: result.drop_rate(),
            drops: session_drops,
            users,
        }
    }

    /// Runs a **fleet**: `Σ replicas` independent device sessions
    /// (each its own [`xrbench_fleet::FleetSpec`] group replica with a
    /// derived seed, simulated against its own replica of `system`)
    /// across a bounded worker pool, folding every result into a
    /// streaming, exactly-mergeable aggregate. Memory stays
    /// O(workers × groups) and the returned
    /// [`xrbench_fleet::FleetReport`] is bit-identical for any
    /// `workers` value — see `xrbench-fleet` and `DESIGN.md`.
    ///
    /// The harness's seed, duration, and score parameters apply to
    /// every device session, exactly as they would in
    /// [`Harness::run_session`].
    ///
    /// # Panics
    ///
    /// Panics if the fleet has no groups, `workers == 0`, or the
    /// system has no engines.
    pub fn run_fleet(
        &self,
        fleet: &xrbench_fleet::FleetSpec,
        system: &(dyn CostProvider + Sync),
        workers: usize,
    ) -> xrbench_fleet::FleetReport {
        self.run_fleet_with_recovery(
            fleet,
            system,
            workers,
            xrbench_sim::RecoveryPolicy::default(),
        )
    }

    /// [`Harness::run_fleet`] with an explicit recovery policy for
    /// fault-injected device groups (groups without a fault process
    /// are unaffected — a fully fault-free fleet is bit-identical
    /// under every policy).
    ///
    /// # Panics
    ///
    /// Same contract as [`Harness::run_fleet`].
    pub fn run_fleet_with_recovery(
        &self,
        fleet: &xrbench_fleet::FleetSpec,
        system: &(dyn CostProvider + Sync),
        workers: usize,
        recovery: xrbench_sim::RecoveryPolicy,
    ) -> xrbench_fleet::FleetReport {
        xrbench_fleet::run_fleet(fleet, system, &self.fleet_config(workers, recovery))
    }

    /// Runs a fault-injected fleet once per
    /// [`xrbench_sim::RecoveryPolicy`] — identical spec, seeds, and
    /// outage schedules — and tabulates the outcomes
    /// (see [`xrbench_fleet::compare_recovery_policies`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Harness::run_fleet`].
    pub fn compare_fleet_policies(
        &self,
        fleet: &xrbench_fleet::FleetSpec,
        system: &(dyn CostProvider + Sync),
        workers: usize,
    ) -> xrbench_fleet::PolicyComparisonReport {
        let config = self.fleet_config(workers, xrbench_sim::RecoveryPolicy::default());
        xrbench_fleet::compare_recovery_policies(fleet, system, &config)
    }

    /// Runs shard `shard` of `num_shards` of a fleet — the same
    /// sessions [`Harness::run_fleet_with_recovery`] would seed for
    /// the global `(group, replica)` coordinates that fall in the
    /// shard — and returns the partial state
    /// ([`xrbench_fleet::ShardState`]) ready to cross a process
    /// boundary (see [`xrbench_fleet::merge_fleet_shards`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Harness::run_fleet`], plus
    /// `shard < num_shards`.
    pub fn run_fleet_shard(
        &self,
        fleet: &xrbench_fleet::FleetSpec,
        system: &(dyn CostProvider + Sync),
        workers: usize,
        recovery: xrbench_sim::RecoveryPolicy,
        shard: u32,
        num_shards: u32,
    ) -> xrbench_fleet::ShardState {
        xrbench_fleet::run_fleet_shard(
            fleet,
            system,
            &self.fleet_config(workers, recovery),
            shard,
            num_shards,
        )
    }

    fn fleet_config(
        &self,
        workers: usize,
        recovery: xrbench_sim::RecoveryPolicy,
    ) -> xrbench_fleet::FleetRunConfig {
        xrbench_fleet::FleetRunConfig {
            sim: self.sim,
            rt: self.score.rt,
            energy: self.score.energy,
            accuracy: self.score.accuracy,
            workers,
            recovery,
        }
    }

    /// Scores an existing simulation result against a scenario spec.
    pub fn score_result(
        &self,
        spec: &ScenarioSpec,
        system: &dyn CostProvider,
        scheduler_name: &str,
        result: &SimResult,
    ) -> ScenarioReport {
        let mut outcomes: Vec<ModelOutcome> = Vec::with_capacity(spec.models.len());
        let mut model_reports: Vec<ModelReport> = Vec::with_capacity(spec.models.len());

        for sm in &spec.models {
            let stats = result.stats.get(&sm.model).cloned().unwrap_or_default();
            let mut scores = Vec::with_capacity(stats.executed_frames as usize);
            let mut lat_sum = 0.0;
            let mut energy_sum = 0.0;
            for rec in result.records_for(sm.model) {
                scores.push(self.score_inference(
                    sm.model,
                    rec.latency_s(),
                    rec.slack_s(),
                    rec.energy_j,
                ));
                lat_sum += rec.latency_s();
                energy_sum += rec.energy_j;
            }
            let n = scores.len().max(1) as f64;
            let outcome = ModelOutcome {
                inference_scores: scores,
                total_frames: stats.total_frames,
            };
            model_reports.push(ModelReport {
                model: sm.model.abbrev().to_string(),
                target_fps: sm.target_fps,
                total_frames: stats.total_frames,
                executed_frames: stats.executed_frames,
                dropped_frames: stats.dropped_frames,
                untriggered_frames: stats.untriggered_frames,
                missed_deadlines: stats.missed_deadlines,
                mean_latency_ms: lat_sum / n * 1e3,
                mean_energy_mj: energy_sum / n * 1e3,
                per_model_score: outcome.per_model(),
                qoe: outcome.qoe(),
            });
            outcomes.push(outcome);
        }

        let breakdown = scenario_score(&outcomes);
        ScenarioReport {
            scenario: spec.name.clone(),
            system: system.label(),
            scheduler: scheduler_name.to_string(),
            breakdown: BreakdownReport::from(breakdown),
            models: model_reports,
            drop_rate: result.drop_rate(),
            total_energy_mj: result.total_energy_j() * 1e3,
            mean_utilization: result.mean_utilization(),
        }
    }

    /// Scores a single inference (Definition 14's three factors).
    pub fn score_inference(
        &self,
        model: ModelId,
        latency_s: f64,
        slack_s: f64,
        energy_j: f64,
    ) -> InferenceScore {
        let q = quality_for(model);
        let kind = match q.quality_type {
            QualityType::HigherIsBetter => MetricKind::HigherIsBetter,
            QualityType::LowerIsBetter => MetricKind::LowerIsBetter,
        };
        InferenceScore::new(
            rt_score(latency_s, slack_s, self.score.rt),
            energy_score(energy_j, self.score.energy),
            accuracy_score(q.measured, q.target, kind, self.score.accuracy),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;

    #[test]
    fn fast_cheap_system_scores_near_one() {
        let p = UniformProvider::new(2, 0.0005, 0.001);
        let r = Harness::new().run_scenario(UsageScenario::VrGaming, &p);
        assert!(r.breakdown.realtime_score > 0.99, "{:?}", r.breakdown);
        assert!(r.breakdown.energy_score > 0.99);
        assert!(r.breakdown.qoe_score > 0.99);
        assert!(r.breakdown.accuracy_score > 0.99);
        assert!(r.overall() > 0.98);
        assert_eq!(r.drop_rate, 0.0);
    }

    #[test]
    fn slow_system_scores_poorly() {
        // 100 ms per inference: every deadline blown, frames dropped.
        let p = UniformProvider::new(1, 0.1, 0.001);
        let r = Harness::new().run_scenario(UsageScenario::VrGaming, &p);
        assert!(r.breakdown.realtime_score < 0.05, "{:?}", r.breakdown);
        assert!(r.breakdown.qoe_score < 0.5);
        assert!(r.overall() < 0.05);
    }

    #[test]
    fn expensive_inferences_zero_energy_score() {
        // 2 J per inference > Emax of 1.5 J.
        let p = UniformProvider::new(2, 0.0005, 2.0);
        let r = Harness::new().run_scenario(UsageScenario::VrGaming, &p);
        assert_eq!(r.breakdown.energy_score, 0.0);
        assert_eq!(r.overall(), 0.0);
        // Real-time score is unaffected — breakdown analysis works.
        assert!(r.breakdown.realtime_score > 0.99);
    }

    #[test]
    fn report_lists_every_scenario_model() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let r = Harness::new().run_scenario(UsageScenario::ArAssistant, &p);
        assert_eq!(r.models.len(), 6);
        for abbrev in ["KD", "SR", "SS", "OD", "DE", "DR"] {
            assert!(r.model(abbrev).is_some(), "{abbrev} missing");
        }
    }

    #[test]
    fn seed_controls_reproducibility() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let a = Harness::new()
            .with_seed(1)
            .run_scenario(UsageScenario::ArAssistant, &p);
        let b = Harness::new()
            .with_seed(1)
            .run_scenario(UsageScenario::ArAssistant, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn score_inference_triple_in_range() {
        let h = Harness::new();
        let s = h.score_inference(ModelId::HandTracking, 0.005, 0.010, 0.1);
        assert!(s.realtime > 0.99);
        assert!((s.energy - (1.5 - 0.1) / 1.5).abs() < 1e-12);
        assert_eq!(s.accuracy, 1.0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn invalid_duration_rejected() {
        let _ = Harness::new().with_duration(-1.0);
    }

    #[test]
    fn harness_runs_fleets() {
        use xrbench_fleet::FleetSpec;
        use xrbench_workload::SessionSpec;

        let p = UniformProvider::new(4, 0.001, 0.001);
        let session = SessionSpec::uniform("party", UsageScenario::VrGaming.spec(), 4, 0.002);
        let fleet = FleetSpec::uniform("arcade", session, 6);
        let h = Harness::new();
        let a = h.run_fleet(&fleet, &p, 1);
        let b = h.run_fleet(&fleet, &p, 4);
        assert_eq!(a, b, "worker count must not change the report");
        assert_eq!(a.num_sessions, 6);
        assert_eq!(a.num_users, 24);
        assert!(a.fleet_score > 0.9, "uncontended VR fleet scores high");
        assert_eq!(a.scheduler, "latency-greedy");
    }

    #[test]
    fn session_report_surfaces_drop_reasons() {
        use xrbench_sim::LatencyGreedy;
        use xrbench_workload::SessionSpec;

        // 8 users on one slow engine: drops are guaranteed, and every
        // drop must be attributed to a cause in the report.
        let p = UniformProvider::new(1, 0.004, 0.001);
        let session = SessionSpec::uniform("crowd", UsageScenario::VrGaming.spec(), 8, 0.005);
        let r = Harness::new().run_session(&session, &p, &mut LatencyGreedy::new());

        let total_dropped: u64 = r
            .users
            .iter()
            .flat_map(|u| u.report.models.iter())
            .map(|m| m.dropped_frames)
            .sum();
        assert!(total_dropped > 0, "contention must drop frames");
        assert_eq!(r.drops.total(), total_dropped);

        let mut sum = crate::report::DropBreakdownReport::default();
        for u in &r.users {
            // Per-user totals line up with the user's scenario report.
            let user_dropped: u64 = u.report.models.iter().map(|m| m.dropped_frames).sum();
            assert_eq!(u.drops().total(), user_dropped, "user {}", u.user);
            // model_drops mirrors the scenario's model order.
            let names: Vec<&str> = u.model_drops.iter().map(|m| m.model.as_str()).collect();
            let expected: Vec<&str> = u.report.models.iter().map(|m| m.model.as_str()).collect();
            assert_eq!(names, expected);
            sum.add(&u.drops());
        }
        assert_eq!(sum, r.drops);

        // The causes serialize with the report — and a fault-free run
        // never mentions the fault-only counters.
        let json = r.to_json();
        assert!(json.contains("\"superseded\""));
        assert!(json.contains("\"upstream_dropped\""));
        assert!(json.contains("\"starved\""));
        assert!(!json.contains("preempted"));
        assert!(!json.contains("device_lost"));
    }

    fn churny() -> xrbench_sim::FaultProcess {
        xrbench_sim::FaultProcess {
            failure_rate_per_s: 3.0,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 6.0,
            mean_preemption_s: 0.02,
            throttle: None,
        }
    }

    #[test]
    fn faulted_session_surfaces_fault_drops() {
        use xrbench_sim::{LatencyGreedy, RecoveryPolicy};
        use xrbench_workload::SessionSpec;

        let p = UniformProvider::new(2, 0.002, 0.001);
        let session = SessionSpec::uniform("churn", UsageScenario::VrGaming.spec(), 4, 0.005);
        let h = Harness::new();
        let r = h.run_session_faulted(
            &session,
            &p,
            &mut LatencyGreedy::new(),
            &churny(),
            RecoveryPolicy::Drop,
        );
        assert!(r.drops.fault_total() > 0, "{:?}", r.drops);
        // Fault drops roll up from per-model, per-user accounting.
        let mut sum = crate::report::DropBreakdownReport::default();
        for u in &r.users {
            sum.add(&u.drops());
        }
        assert_eq!(sum, r.drops);
        let json = r.to_json();
        assert!(json.contains("\"preempted\"") || json.contains("\"device_lost\""));

        // A quiet process is bit-identical to the fault-free path.
        let quiet = h.run_session_faulted(
            &session,
            &p,
            &mut LatencyGreedy::new(),
            &xrbench_sim::FaultProcess::default(),
            RecoveryPolicy::Drop,
        );
        let clean = h.run_session(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(quiet, clean);
        assert_eq!(quiet.to_json(), clean.to_json());
    }

    #[test]
    fn harness_compares_recovery_policies() {
        use xrbench_fleet::FleetSpec;
        use xrbench_workload::SessionSpec;

        let p = UniformProvider::new(2, 0.002, 0.001);
        let fleet = FleetSpec::new("churn").group_faulted(
            "vr",
            SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 2, 0.002),
            3,
            churny(),
        );
        let h = Harness::new();
        let cmp = h.compare_fleet_policies(&fleet, &p, 2);
        assert_eq!(cmp.policies.len(), 3);
        assert!(cmp.policy("drop").unwrap().preempted > 0);
        // Per-policy rows reproduce the dedicated entry point.
        let requeue =
            h.run_fleet_with_recovery(&fleet, &p, 4, xrbench_sim::RecoveryPolicy::Requeue);
        let row = cmp.policy("requeue").unwrap();
        assert_eq!(row.executed_inferences, requeue.executed_inferences);
        assert_eq!(row.fleet_score, requeue.fleet_score);
    }
}
