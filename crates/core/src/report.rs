//! Benchmark reports: machine-readable results with score breakdowns
//! and detailed per-model statistics (the "Benchmark Outputs" box of
//! Figure 2).

use serde::Serialize;

use xrbench_score::ScenarioBreakdown;

/// Per-model results within one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelReport {
    /// The model's two-letter abbreviation.
    pub model: String,
    /// Target processing rate (FPS) in this scenario.
    pub target_fps: f64,
    /// Frames streamed-and-triggered (`NumFrm`).
    pub total_frames: u64,
    /// Frames executed (`NumFrm_exec`).
    pub executed_frames: u64,
    /// Frames dropped.
    pub dropped_frames: u64,
    /// Frames deactivated by a failed cascade trigger.
    pub untriggered_frames: u64,
    /// Executed frames delivered past their deadline.
    pub missed_deadlines: u64,
    /// Mean end-to-end latency of executed frames, in milliseconds.
    pub mean_latency_ms: f64,
    /// Mean energy per executed inference, in millijoules.
    pub mean_energy_mj: f64,
    /// Per-model score (mean per-inference score; 0 if all dropped).
    pub per_model_score: f64,
    /// QoE score (executed / total).
    pub qoe: f64,
}

/// The outcome of running one usage scenario on one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// Scenario display name.
    pub scenario: String,
    /// Evaluated system label (e.g. `"J [HDA] WS + OS @ 4096 PEs"`).
    pub system: String,
    /// Scheduler name.
    pub scheduler: String,
    /// The Figure 5-style breakdown (realtime / energy / accuracy /
    /// QoE component means and the overall scenario score).
    #[serde(flatten)]
    pub breakdown: BreakdownReport,
    /// Per-model details.
    pub models: Vec<ModelReport>,
    /// Overall frame-drop rate.
    pub drop_rate: f64,
    /// Total energy over the run (mJ).
    pub total_energy_mj: f64,
    /// Mean engine utilization (the metric §4.2.2 warns about).
    pub mean_utilization: f64,
}

/// Serializable mirror of [`xrbench_score::ScenarioBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakdownReport {
    /// Mean real-time score.
    pub realtime_score: f64,
    /// Mean energy score.
    pub energy_score: f64,
    /// Mean accuracy score.
    pub accuracy_score: f64,
    /// Mean QoE score.
    pub qoe_score: f64,
    /// Overall usage-scenario score.
    pub overall_score: f64,
}

impl From<ScenarioBreakdown> for BreakdownReport {
    fn from(b: ScenarioBreakdown) -> Self {
        Self {
            realtime_score: b.realtime,
            energy_score: b.energy,
            accuracy_score: b.accuracy,
            qoe_score: b.qoe,
            overall_score: b.overall,
        }
    }
}

impl From<BreakdownReport> for ScenarioBreakdown {
    fn from(b: BreakdownReport) -> Self {
        Self {
            realtime: b.realtime_score,
            energy: b.energy_score,
            accuracy: b.accuracy_score,
            qoe: b.qoe_score,
            overall: b.overall_score,
        }
    }
}

impl ScenarioReport {
    /// The overall scenario score.
    pub fn overall(&self) -> f64 {
        self.breakdown.overall_score
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields are serializable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

// Keep `breakdown` available under its score-crate type too.
impl ScenarioReport {
    /// Looks up a model's report by abbreviation.
    pub fn model(&self, abbrev: &str) -> Option<&ModelReport> {
        self.models.iter().find(|m| m.model == abbrev)
    }
}

/// Frame drops split by cause — the accounting a session dispatcher
/// tunes against: `superseded` means the system fell behind and the
/// freshness policy discarded stale inputs, `upstream_dropped` means a
/// cascade collapsed, `starved` means the run ended with work still
/// queued. Fault-injected runs add `preempted` / `device_lost`:
/// in-flight work revoked by an engine outage under the `drop`
/// recovery policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropBreakdownReport {
    /// Frames superseded by a newer frame of the same model.
    pub superseded: u64,
    /// Dependent frames whose upstream frame was itself dropped.
    pub upstream_dropped: u64,
    /// Frames still queued when the run ended.
    pub starved: u64,
    /// In-flight frames revoked by an engine preemption.
    pub preempted: u64,
    /// In-flight frames revoked by an engine failure.
    pub device_lost: u64,
}

// Hand-written so the fault counters appear only when a fault process
// actually revoked work: fault-free reports keep the pre-fault wire
// format byte-for-byte (the golden fixtures pin it).
impl Serialize for DropBreakdownReport {
    fn to_json_value(&self) -> serde::json::JsonValue {
        let mut obj = vec![
            ("superseded".to_string(), self.superseded.to_json_value()),
            (
                "upstream_dropped".to_string(),
                self.upstream_dropped.to_json_value(),
            ),
            ("starved".to_string(), self.starved.to_json_value()),
        ];
        if self.preempted > 0 {
            obj.push(("preempted".to_string(), self.preempted.to_json_value()));
        }
        if self.device_lost > 0 {
            obj.push(("device_lost".to_string(), self.device_lost.to_json_value()));
        }
        serde::json::JsonValue::Object(obj)
    }
}

impl DropBreakdownReport {
    /// Total drops across all causes.
    pub fn total(&self) -> u64 {
        self.superseded + self.upstream_dropped + self.starved + self.preempted + self.device_lost
    }

    /// Drops attributable to injected faults (preemption + churn).
    pub fn fault_total(&self) -> u64 {
        self.preempted + self.device_lost
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &DropBreakdownReport) {
        self.superseded += other.superseded;
        self.upstream_dropped += other.upstream_dropped;
        self.starved += other.starved;
        self.preempted += other.preempted;
        self.device_lost += other.device_lost;
    }
}

/// One model's drop-cause split within a user's session slice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelDropReport {
    /// The model's two-letter abbreviation.
    pub model: String,
    /// The drop-cause split.
    #[serde(flatten)]
    pub drops: DropBreakdownReport,
}

/// One user's slice of a multi-user session run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserReport {
    /// Dense user id within the session.
    pub user: u32,
    /// When this user joined, relative to session start (s).
    pub start_offset_s: f64,
    /// Per-model drop causes, in scenario-model order.
    pub model_drops: Vec<ModelDropReport>,
    /// The user's full scenario report, scored against the shared
    /// engines over the session span.
    pub report: ScenarioReport,
}

impl UserReport {
    /// This user's drop-cause totals across models.
    pub fn drops(&self) -> DropBreakdownReport {
        let mut total = DropBreakdownReport::default();
        for m in &self.model_drops {
            total.add(&m.drops);
        }
        total
    }
}

/// The outcome of running a multi-user [`xrbench_workload::SessionSpec`]
/// on one system: per-user score breakdowns plus session aggregates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionReport {
    /// Session display name.
    pub session: String,
    /// Evaluated system label.
    pub system: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Number of users simulated concurrently.
    pub num_users: usize,
    /// Session span: last join offset plus run duration (s).
    pub span_s: f64,
    /// The session score: mean of per-user overall scores.
    pub session_score: f64,
    /// Component-wise mean breakdown across users.
    pub aggregate: BreakdownReport,
    /// Total energy across all users (mJ).
    pub total_energy_mj: f64,
    /// Mean utilization of the shared engines over the span.
    pub mean_utilization: f64,
    /// Frame-drop rate across all users.
    pub drop_rate: f64,
    /// Session-wide drop causes, summed over users and models.
    pub drops: DropBreakdownReport,
    /// Per-user reports, in user-id order.
    pub users: Vec<UserReport>,
}

impl SessionReport {
    /// One user's report, if present.
    pub fn user(&self, user: u32) -> Option<&UserReport> {
        self.users.iter().find(|u| u.user == user)
    }

    /// The worst-served user (minimum overall score) — the fairness
    /// number a session dispatcher is judged by.
    pub fn worst_user(&self) -> Option<&UserReport> {
        self.users.iter().min_by(|a, b| {
            a.report
                .overall()
                .total_cmp(&b.report.overall())
                .then(a.user.cmp(&b.user))
        })
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// The outcome of running the whole suite (all usage scenarios) on one
/// system: the mandatory overall XRBench Score plus the optional
/// breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchmarkReport {
    /// Evaluated system label.
    pub system: String,
    /// One report per usage scenario, in Table 2 order.
    pub scenarios: Vec<ScenarioReport>,
    /// The overall XRBench Score (Definition 16).
    pub xrbench_score: f64,
}

impl BenchmarkReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Looks up one scenario's report by display name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.scenario == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_breakdown() -> BreakdownReport {
        BreakdownReport {
            realtime_score: 0.9,
            energy_score: 0.8,
            accuracy_score: 1.0,
            qoe_score: 0.95,
            overall_score: 0.68,
        }
    }

    #[test]
    fn scenario_report_serializes_flattened() {
        let r = ScenarioReport {
            scenario: "VR Gaming".into(),
            system: "A@4096".into(),
            scheduler: "latency-greedy".into(),
            breakdown: dummy_breakdown(),
            models: vec![],
            drop_rate: 0.0,
            total_energy_mj: 12.0,
            mean_utilization: 0.4,
        };
        let json = r.to_json();
        assert!(json.contains("\"overall_score\": 0.68"));
        assert!(json.contains("\"realtime_score\": 0.9"));
        assert!(r.model("HT").is_none());
    }

    #[test]
    fn benchmark_report_lookup() {
        let s = ScenarioReport {
            scenario: "AR Gaming".into(),
            system: "J@4096".into(),
            scheduler: "latency-greedy".into(),
            breakdown: dummy_breakdown(),
            models: vec![],
            drop_rate: 0.1,
            total_energy_mj: 1.0,
            mean_utilization: 0.2,
        };
        let b = BenchmarkReport {
            system: "J@4096".into(),
            scenarios: vec![s],
            xrbench_score: 0.68,
        };
        assert!(b.scenario("AR Gaming").is_some());
        assert!(b.scenario("VR Gaming").is_none());
        assert!(b.to_json().contains("xrbench_score"));
    }
}
