//! Regeneration of the paper's evaluation figures.
//!
//! Each function returns plain data rows; the `xrbench-bench` binaries
//! print them in figure-shaped tables (and EXPERIMENTS.md records the
//! paper-vs-measured comparison).

use serde::Serialize;

use xrbench_accel::{table5, AcceleratorSystem};
use xrbench_score::{rt_score, RtParams};
use xrbench_sim::{LatencyGreedy, SimResult};
use xrbench_workload::UsageScenario;

use crate::harness::Harness;
use crate::report::ScenarioReport;

/// One bar group of Figure 5: the score breakdown for one accelerator
/// on one usage scenario at one PE count.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure5Row {
    /// Total PE count (4096 or 8192).
    pub pes: u64,
    /// Accelerator id `A`–`M`.
    pub accel: char,
    /// Accelerator style ("FDA"/"SFDA"/"HDA").
    pub style: String,
    /// Scenario name, or `"Average"` for the Figure 5(h) panel.
    pub scenario: String,
    /// Mean real-time score.
    pub realtime: f64,
    /// Mean energy score.
    pub energy: f64,
    /// Mean QoE score.
    pub qoe: f64,
    /// Overall scenario score (XRBench Score contribution).
    pub overall: f64,
}

/// Computes the Figure 5 data: score breakdowns for all 13 Table 5
/// accelerators × {4K, 8K} PEs × all 7 usage scenarios, plus the
/// per-accelerator `"Average"` rows of Figure 5(h).
///
/// Dynamic scenarios are averaged over `repeats` seeds. The
/// 26-cell accelerator × PE-count grid is fanned across `std::thread`
/// workers (each cell runs its suite serially, so the grid itself is
/// the unit of parallelism and workers never oversubscribe); row
/// values are identical to a serial evaluation.
pub fn figure5(harness: &Harness, repeats: u32) -> Vec<Figure5Row> {
    let configs = table5();
    let grid: Vec<(u64, usize)> = [4096u64, 8192]
        .iter()
        .flat_map(|&pes| (0..configs.len()).map(move |ci| (pes, ci)))
        .collect();

    let per_cell =
        crate::pool::parallel_map(&grid, crate::pool::default_workers(), |&(pes, ci)| {
            let cfg = &configs[ci];
            let system = AcceleratorSystem::new(cfg.clone(), pes);
            let bench = crate::suite::catalog_serial_impl(
                harness,
                &system,
                repeats,
                &xrbench_workload::ScenarioCatalog::builtin(),
            );
            let mut out: Vec<Figure5Row> = bench
                .scenarios
                .iter()
                .map(|s| Figure5Row {
                    pes,
                    accel: cfg.id,
                    style: cfg.style.to_string(),
                    scenario: s.scenario.clone(),
                    realtime: s.breakdown.realtime_score,
                    energy: s.breakdown.energy_score,
                    qoe: s.breakdown.qoe_score,
                    overall: s.breakdown.overall_score,
                })
                .collect();
            let n = out.len() as f64;
            out.push(Figure5Row {
                pes,
                accel: cfg.id,
                style: cfg.style.to_string(),
                scenario: "Average".to_string(),
                realtime: out.iter().map(|r| r.realtime).sum::<f64>() / n,
                energy: out.iter().map(|r| r.energy).sum::<f64>() / n,
                qoe: out.iter().map(|r| r.qoe).sum::<f64>() / n,
                overall: out.iter().map(|r| r.overall).sum::<f64>() / n,
            });
            out
        });

    let mut rows: Vec<Figure5Row> = per_cell.into_iter().flatten().collect();
    rows.sort_by(|a, b| {
        (a.pes, a.accel, a.scenario.clone()).cmp(&(b.pes, b.accel, b.scenario.clone()))
    });
    rows
}

/// The Figure 6 deep dive: the AR Gaming execution timelines and
/// scores of accelerator J (WS+OS HDA) at 4K and 8K PEs.
#[derive(Debug)]
pub struct Figure6Data {
    /// Report + timeline at 4096 PEs.
    pub four_k: (ScenarioReport, SimResult),
    /// Report + timeline at 8192 PEs.
    pub eight_k: (ScenarioReport, SimResult),
}

/// Computes the Figure 6 data.
pub fn figure6(harness: &Harness) -> Figure6Data {
    let cfg = table5()
        .into_iter()
        .find(|c| c.id == 'J')
        .expect("J exists");
    let run = |pes: u64| {
        let system = AcceleratorSystem::new(cfg.clone(), pes);
        harness.run_spec(
            &UsageScenario::ArGaming.spec(),
            &system,
            &mut LatencyGreedy::new(),
        )
    };
    Figure6Data {
        four_k: run(4096),
        eight_k: run(8192),
    }
}

/// One point of Figure 7: scores for one accelerator at one ES → GE
/// cascading probability (VR Gaming, 4K PEs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure7Row {
    /// Accelerator id (`B` or `J` in the paper).
    pub accel: char,
    /// Total PE count (4096 = the paper's setting; 512 = the
    /// constrained variant where our cost model shows the dynamic
    /// effects more clearly).
    pub pes: u64,
    /// ES → GE trigger probability.
    pub probability: f64,
    /// Mean real-time score across runs.
    pub realtime: f64,
    /// Mean energy score across runs.
    pub energy: f64,
    /// Mean QoE score across runs.
    pub qoe: f64,
    /// Mean overall score across runs.
    pub overall: f64,
}

/// Computes the Figure 7 data: the cascading-probability sweep
/// (25%..100%) for accelerators B and J with 4K PEs on VR Gaming,
/// averaged over `runs` experiments (the paper uses 200).
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn figure7(harness: &Harness, runs: u32) -> Vec<Figure7Row> {
    assert!(runs > 0, "need at least one run");
    let configs = table5();
    let mut rows = Vec::new();
    for (id, pes) in [('B', 4096), ('J', 4096), ('B', 512), ('J', 512)] {
        let cfg = configs.iter().find(|c| c.id == id).expect("id exists");
        let system = AcceleratorSystem::new(cfg.clone(), pes);
        for prob in [0.25, 0.5, 0.75, 1.0] {
            let spec = UsageScenario::VrGaming
                .spec()
                .with_eye_cascade_probability(prob);
            let (mut rt, mut en, mut qoe, mut ov) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..runs {
                let h = harness
                    .clone()
                    .with_seed(harness.sim_config().seed.wrapping_add(i as u64));
                let (report, _) = h.run_spec(&spec, &system, &mut LatencyGreedy::new());
                rt += report.breakdown.realtime_score;
                en += report.breakdown.energy_score;
                qoe += report.breakdown.qoe_score;
                ov += report.breakdown.overall_score;
            }
            let n = runs as f64;
            rows.push(Figure7Row {
                accel: id,
                pes,
                probability: prob,
                realtime: rt / n,
                energy: en / n,
                qoe: qoe / n,
                overall: ov / n,
            });
        }
    }
    rows
}

/// One curve of Figure 8: the real-time score as a function of
/// latency for a given `k`, with a 1-second slack window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure8Curve {
    /// The sensitivity constant `k` (per-second units, as plotted in
    /// the paper's appendix figure).
    pub k: f64,
    /// `(latency_s, score)` samples over `0..=2` seconds.
    pub samples: Vec<(f64, f64)>,
}

/// Computes the Figure 8 data: the real-time score function for
/// `k ∈ {0, 1, 15, 50}` over latencies 0–2 s with a 1 s deadline.
pub fn figure8() -> Vec<Figure8Curve> {
    [0.0, 1.0, 15.0, 50.0]
        .iter()
        .map(|&k| {
            let samples = (0..=100)
                .map(|i| {
                    let lat = i as f64 * 0.02;
                    // k is per-second here; RtParams wants per-ms.
                    let s = rt_score(lat, 1.0, RtParams { k_per_ms: k / 1e3 });
                    (lat, s)
                })
                .collect();
            Figure8Curve { k, samples }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_shapes() {
        let curves = figure8();
        assert_eq!(curves.len(), 4);
        // k = 0 → flat 0.5 everywhere.
        for (_, s) in &curves[0].samples {
            assert!((s - 0.5).abs() < 1e-12);
        }
        // k = 50 → ~1 well before the deadline, ~0 well after.
        let k50 = &curves[3];
        assert!(k50.samples[10].1 > 0.99); // latency 0.2 s
        assert!(k50.samples[90].1 < 0.01); // latency 1.8 s

        // All curves cross 0.5 at the deadline.
        for c in &curves {
            let at_deadline = c.samples[50].1;
            assert!((at_deadline - 0.5).abs() < 1e-9, "k={}", c.k);
        }
        // Larger k → steeper: score just before deadline is higher.
        let just_before: Vec<f64> = curves.iter().map(|c| c.samples[45].1).collect();
        assert!(just_before[1] < just_before[2]);
        assert!(just_before[2] < just_before[3]);
    }

    #[test]
    fn figure6_shows_4k_dropping_more_than_8k() {
        let h = Harness::new();
        let data = figure6(&h);
        let d4 = data.four_k.0.drop_rate;
        let d8 = data.eight_k.0.drop_rate;
        assert!(
            d4 > d8,
            "4K should drop more frames than 8K (got {d4:.3} vs {d8:.3})"
        );
        assert!(
            data.four_k.0.overall() < data.eight_k.0.overall(),
            "8K should outscore 4K on AR Gaming"
        );
    }

    #[test]
    fn figure7_rows_cover_sweep() {
        let h = Harness::new();
        let rows = figure7(&h, 3);
        assert_eq!(rows.len(), 16);
        for r in &rows {
            assert!(r.overall >= 0.0 && r.overall <= 1.0);
            assert!(r.qoe >= 0.0 && r.qoe <= 1.0);
        }
    }
}
