//! Design-space exploration: `kind: "sweep"` run documents.
//!
//! XRBench's headline use-case (§5, Table 5) is hardware/scheduler
//! design-space exploration: the same workloads evaluated across
//! accelerator configurations, PE scalings, and schedulers, with the
//! per-axis scores laid out for Pareto-frontier analysis. A
//! [`SweepDocument`] declares the axes once —
//!
//! ```json
//! { "kind": "sweep", "name": "default",
//!   "accelerators": ["J", "C"], "base_pes": 8192,
//!   "pe_scaling": [1.0, 0.5],
//!   "schedulers": ["latency-greedy", "round-robin", "slack-edf"],
//!   "recovery": ["drop", "requeue"],
//!   "workloads": [ { "scenario": "VR Gaming" },
//!                  { "fleet": { ... } },
//!                  { "scenario_seeds": [7, 8] } ] }
//! ```
//!
//! — and the cross-product expands into a deterministic, globally
//! indexed **point list** (workloads outermost, recovery innermost).
//! Because the point list has the same flat-slice shape as the fleet
//! shard plan, process-level sharding (`--shards N` cuts the list at
//! `[⌊kP/N⌋, ⌊(k+1)P/N⌋)`) and mid-sweep resumption (a versioned
//! checkpoint file holding completed points as IEEE-754 bit patterns)
//! compose with the executor for free, and both are proven
//! byte-identical to a straight-through run.
//!
//! ## Cache keying
//!
//! Each point evaluates through the existing engines
//! ([`Harness::run_spec`](crate::Harness::run_spec),
//! [`Harness::run_session`](crate::Harness::run_session), the fleet
//! shard executor), but the executor first consults a memo cache
//! keyed by `w<workload>|<id>@<pes>|<scheduler>|<recovery>`. The
//! recovery component collapses to `-` whenever the workload provably
//! cannot observe the recovery policy — scenario and session
//! workloads always, and fleets whose device groups all have quiet
//! (or no) fault processes, by the fault-free bit-identity invariant.
//! A sweep whose recovery axis is `["drop", "requeue"]` over
//! fault-free workloads therefore evaluates each simulation once and
//! serves the other half of its points from cache.
//!
//! ## Report
//!
//! [`SweepReport`] carries every point's score, energy, drop rate,
//! and statically derated capacity (PEs × mean availability ×
//! throttle capacity), plus two [`crate::pareto`] frontiers — score
//! vs energy and score vs derated capacity, both treating the second
//! axis as a cost — and per-axis marginals (mean/best score per axis
//! value).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use serde::de::Cursor;
use serde::json::JsonValue;
use serde::Serialize;

use xrbench_accel::config_by_id;
use xrbench_fleet::{
    default_workers, fleet_to_json, merge_fleet_shards, run_fleet_shard_with, FleetRunConfig,
    FleetSpec,
};
use xrbench_sim::RecoveryPolicy;
use xrbench_workload::spec::{
    extend_catalog, parse_json, scenario_to_json, session_from_value, session_to_json, SpecError,
};
use xrbench_workload::{ScenarioCatalog, ScenarioSpace, ScenarioSpec, SessionSpec};

use crate::error::XrError;
use crate::pareto::{pareto_frontier, ParetoPoint};
use crate::spec::{RunParams, SchedulerSpec, SystemSpec};

/// Wire-format version tag for sweep checkpoint files.
const SWEEP_CHECKPOINT_VERSION: u64 = 1;
/// Wire-format version tag for [`SweepShardState`] documents.
const SWEEP_STATE_VERSION: u64 = 1;

/// One workload a sweep evaluates at every hardware/scheduler point.
#[derive(Debug, Clone)]
pub enum SweepWorkloadKind {
    /// A single-user scenario run.
    Scenario(ScenarioSpec),
    /// A multi-user session run.
    Session(SessionSpec),
    /// A device-fleet run.
    Fleet(FleetSpec),
}

/// A named workload entry of a [`SweepDocument`].
#[derive(Debug, Clone)]
pub struct SweepWorkload {
    /// Display name (unique within the sweep; defaults to the
    /// embedded spec's own name).
    pub name: String,
    /// The workload itself.
    pub kind: SweepWorkloadKind,
}

/// One point of the expanded design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Global index into the point list (workloads outermost,
    /// recovery innermost).
    pub index: usize,
    /// Index into [`SweepDocument::workloads`].
    pub workload: usize,
    /// Table 5 accelerator id (`'A'`–`'M'`).
    pub accelerator: char,
    /// PE count after scaling (`round(base_pes × factor)`, min 1).
    pub pes: u64,
    /// The scheduler under evaluation.
    pub scheduler: SchedulerSpec,
    /// The recovery policy under evaluation (observable only by
    /// fault-injected fleets).
    pub recovery: RecoveryPolicy,
}

/// The three metrics the executor records per point, exact to the bit
/// across checkpoint and shard wire formats.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PointMetrics {
    score: f64,
    total_energy_mj: f64,
    drop_rate: f64,
}

/// A decoded `"kind": "sweep"` run document: the design-space axes.
#[derive(Debug, Clone)]
pub struct SweepDocument {
    /// Sweep display name (default `"sweep"`).
    pub name: String,
    /// Run parameters (seed, duration) shared by every point.
    pub params: RunParams,
    /// PE count at scaling factor 1.0 (default 8192).
    pub base_pes: u64,
    /// Table 5 accelerator ids, in declaration order.
    pub accelerators: Vec<char>,
    /// PE scaling factors (default `[1.0]`).
    pub pe_scaling: Vec<f64>,
    /// Schedulers under evaluation (default latency-greedy only).
    pub schedulers: Vec<SchedulerSpec>,
    /// Recovery policies under evaluation (default drop only).
    pub recovery: Vec<RecoveryPolicy>,
    /// The workloads, each evaluated at every hardware × scheduler ×
    /// recovery point.
    pub workloads: Vec<SweepWorkload>,
}

/// Execution options for [`SweepDocument::run_with`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint file: completed points are persisted here after
    /// every evaluation, and an existing file (for the same document)
    /// is loaded back before running, so a killed sweep resumes
    /// where it stopped.
    pub checkpoint: Option<PathBuf>,
    /// Stop after completing this many points (from the front of the
    /// point list) without producing a report — a deterministic
    /// "killed mid-run" for exercising resumption.
    pub limit: Option<usize>,
}

/// Executor counters for one [`SweepDocument::run_with`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Total points in the sweep.
    pub points: usize,
    /// Points evaluated by simulation in this call.
    pub evaluated: usize,
    /// Points served from the memo cache in this call.
    pub cache_hits: usize,
    /// Points restored from the checkpoint file.
    pub resumed: usize,
}

/// The result of [`SweepDocument::run_with`]: the report (when the
/// sweep ran to completion) plus executor counters.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The folded report; `None` when a [`SweepOptions::limit`]
    /// stopped the sweep early.
    pub report: Option<SweepReport>,
    /// Cache/evaluation counters.
    pub stats: SweepStats,
}

/// One completed point in a [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPointReport {
    /// Global point index.
    pub index: usize,
    /// Workload display name.
    pub workload: String,
    /// Hardware label (`J@8192`).
    pub accelerator: String,
    /// Scheduler report name.
    pub scheduler: String,
    /// Recovery policy name.
    pub recovery: String,
    /// The workload's overall score (XRBench scenario score, session
    /// score, or fleet score).
    pub score: f64,
    /// Total energy over the run, millijoules.
    pub total_energy_mj: f64,
    /// Fraction of triggered frames dropped.
    pub drop_rate: f64,
    /// Static capacity proxy: PEs × mean availability × throttle
    /// capacity, averaged over fleet replicas (plain PEs for
    /// scenario/session workloads).
    pub derated_capacity: f64,
}

/// Mean/best score over the points sharing one axis value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AxisMarginalReport {
    /// Axis name (`workload`, `accelerator`, `scheduler`, `recovery`).
    pub axis: String,
    /// The axis value (e.g. `J@4096`).
    pub value: String,
    /// Number of points with this value.
    pub points: usize,
    /// Mean score over those points.
    pub mean_score: f64,
    /// Best score over those points.
    pub best_score: f64,
}

/// The folded output of a sweep: every point's metrics, two Pareto
/// frontiers, and per-axis marginals.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// Sweep display name.
    pub sweep: String,
    /// Total points.
    pub num_points: usize,
    /// Distinct simulations the point list requires after memo-cache
    /// deduplication (a static property of the document).
    pub distinct_evaluations: usize,
    /// Every point, in global index order.
    pub points: Vec<SweepPointReport>,
    /// Indices of the score-vs-energy Pareto frontier (energy treated
    /// as a cost).
    pub pareto_score_energy: Vec<usize>,
    /// Indices of the score-vs-derated-capacity Pareto frontier
    /// (capacity treated as a cost).
    pub pareto_score_capacity: Vec<usize>,
    /// Per-axis marginal scores, in axis declaration order.
    pub marginals: Vec<AxisMarginalReport>,
}

impl SweepReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// One shard's completed points, serializable over a pipe and
/// mergeable back into the full report via
/// [`SweepDocument::merge_shards`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepShardState {
    /// This shard's index, `0 ≤ shard < num_shards`.
    pub shard: u32,
    /// Total shard count of the partition.
    pub num_shards: u32,
    /// Fingerprint of the document that produced this state.
    pub fingerprint: u64,
    /// Completed `(global index, metrics)` rows.
    rows: Vec<(usize, PointMetrics)>,
    /// Points this shard evaluated by simulation (informational).
    pub evaluated: usize,
    /// Points this shard served from its memo cache (informational).
    pub cache_hits: usize,
}

/// The flat-index range `[⌊kP/N⌋, ⌊(k+1)P/N⌋)` shard `k` owns — the
/// same cut rule as the fleet shard plan.
fn shard_range(total: usize, shard: u32, num_shards: u32) -> (usize, usize) {
    let p = total as u64;
    let n = u64::from(num_shards);
    let start = (u64::from(shard) * p / n) as usize;
    let end = ((u64::from(shard) + 1) * p / n) as usize;
    (start, end)
}

impl SweepDocument {
    /// Decodes a sweep document body (the `kind` field is the
    /// dispatcher's business) against a base scenario catalog.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for shape problems, unknown
    /// accelerators/schedulers/policies, duplicate axis values,
    /// unresolved scenario references, or any error from the embedded
    /// session/fleet documents.
    pub fn from_value(cursor: &Cursor<'_>, base: &ScenarioCatalog) -> Result<Self, SpecError> {
        cursor.deny_unknown_fields(&[
            "kind",
            "name",
            "seed",
            "duration_s",
            "scenarios",
            "accelerators",
            "base_pes",
            "pe_scaling",
            "schedulers",
            "recovery",
            "workloads",
        ])?;
        let name: String = cursor
            .get_opt_field("name")?
            .unwrap_or_else(|| "sweep".to_string());
        let params = RunParams::from_value(cursor)?;
        let catalog = extend_catalog(cursor, base)?;

        let accelerators = decode_accelerators(&cursor.field("accelerators")?)?;
        let base_pes = match cursor.opt_field("base_pes")? {
            Some(c) => {
                let pes: u64 = c.get()?;
                if pes == 0 {
                    return Err(SpecError::Invalid {
                        path: c.path().to_string(),
                        message: "base_pes must be at least 1".to_string(),
                    });
                }
                pes
            }
            None => 8192,
        };
        let pe_scaling = match cursor.opt_field("pe_scaling")? {
            Some(c) => decode_pe_scaling(&c)?,
            None => vec![1.0],
        };
        let schedulers = match cursor.opt_field("schedulers")? {
            Some(c) => decode_schedulers(&c)?,
            None => vec![SchedulerSpec::default()],
        };
        let recovery = match cursor.opt_field("recovery")? {
            Some(c) => decode_recovery(&c)?,
            None => vec![RecoveryPolicy::default()],
        };
        let workloads = decode_workloads(&cursor.field("workloads")?, &catalog)?;

        Ok(Self {
            name,
            params,
            base_pes,
            accelerators,
            pe_scaling,
            schedulers,
            recovery,
            workloads,
        })
    }

    /// The hardware axis expanded to `(id, pes)` pairs, in
    /// declaration order (accelerators outer, scaling inner).
    pub fn hardware_points(&self) -> Vec<(char, u64)> {
        let mut out = Vec::with_capacity(self.accelerators.len() * self.pe_scaling.len());
        for &id in &self.accelerators {
            for &factor in &self.pe_scaling {
                out.push((id, self.scaled_pes(factor)));
            }
        }
        out
    }

    fn scaled_pes(&self, factor: f64) -> u64 {
        let pes = (self.base_pes as f64 * factor).round();
        if pes < 1.0 {
            1
        } else {
            pes as u64
        }
    }

    /// Expands the axes into the deterministic, globally indexed
    /// point list: workloads → accelerators → pe_scaling → schedulers
    /// → recovery, innermost fastest.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for workload in 0..self.workloads.len() {
            for &accelerator in &self.accelerators {
                for &factor in &self.pe_scaling {
                    let pes = self.scaled_pes(factor);
                    for &scheduler in &self.schedulers {
                        for &recovery in &self.recovery {
                            points.push(SweepPoint {
                                index: points.len(),
                                workload,
                                accelerator,
                                pes,
                                scheduler,
                                recovery,
                            });
                        }
                    }
                }
            }
        }
        points
    }

    /// Whether the recovery axis is provably unobservable for
    /// workload `w`: scenario/session workloads never consult it, and
    /// a fleet whose groups all have quiet (or no) fault processes is
    /// bit-identical under every policy.
    fn recovery_invariant(&self, w: usize) -> bool {
        match &self.workloads[w].kind {
            SweepWorkloadKind::Scenario(_) | SweepWorkloadKind::Session(_) => true,
            SweepWorkloadKind::Fleet(spec) => spec
                .groups
                .iter()
                .all(|g| g.faults.as_ref().is_none_or(|p| p.is_quiet())),
        }
    }

    /// The memo-cache key of a point:
    /// `w<workload>|<id>@<pes>|<scheduler>|<recovery>`, with the
    /// recovery component collapsed to `-` when the workload cannot
    /// observe it.
    pub fn cache_key(&self, point: &SweepPoint) -> String {
        let recovery = if self.recovery_invariant(point.workload) {
            "-"
        } else {
            point.recovery.as_str()
        };
        format!(
            "w{}|{}@{}|{}|{}",
            point.workload,
            point.accelerator,
            point.pes,
            point.scheduler.name(),
            recovery
        )
    }

    /// Distinct simulations the point list requires after memo-cache
    /// deduplication — a static property of the document.
    pub fn distinct_evaluations(&self) -> usize {
        let keys: BTreeSet<String> = self.points().iter().map(|p| self.cache_key(p)).collect();
        keys.len()
    }

    /// A stable FNV-1a fingerprint of the whole document (axes, run
    /// parameters, and canonical workload serializations), used to
    /// reject checkpoints and shard states produced by a different
    /// document.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        text.push_str(&self.name);
        text.push('\x1f');
        if let Some(seed) = self.params.seed {
            text.push_str(&seed.to_string());
        }
        text.push('\x1f');
        if let Some(duration_s) = self.params.duration_s {
            text.push_str(&duration_s.to_bits().to_string());
        }
        text.push('\x1f');
        text.push_str(&self.base_pes.to_string());
        for &id in &self.accelerators {
            text.push('\x1f');
            text.push(id);
        }
        for &factor in &self.pe_scaling {
            text.push('\x1f');
            text.push_str(&factor.to_bits().to_string());
        }
        for scheduler in &self.schedulers {
            text.push('\x1f');
            text.push_str(scheduler.name());
        }
        for policy in &self.recovery {
            text.push('\x1f');
            text.push_str(policy.as_str());
        }
        for workload in &self.workloads {
            text.push('\x1f');
            text.push_str(&workload.name);
            text.push('\x1e');
            match &workload.kind {
                SweepWorkloadKind::Scenario(spec) => text.push_str(&scenario_to_json(spec)),
                SweepWorkloadKind::Session(spec) => text.push_str(&session_to_json(spec)),
                SweepWorkloadKind::Fleet(spec) => text.push_str(&fleet_to_json(spec)),
            }
        }
        fnv1a64(text.as_bytes())
    }

    /// Evaluates one point through the existing engines.
    fn evaluate(&self, point: &SweepPoint) -> PointMetrics {
        let system = SystemSpec::Accelerator {
            id: point.accelerator,
            pes: point.pes,
        }
        .build();
        let harness = self.params.harness();
        match &self.workloads[point.workload].kind {
            SweepWorkloadKind::Scenario(spec) => {
                let mut scheduler = point.scheduler.build();
                let (report, _) = harness.run_spec(spec, system.as_ref(), scheduler.as_mut());
                PointMetrics {
                    score: report.overall(),
                    total_energy_mj: report.total_energy_mj,
                    drop_rate: report.drop_rate,
                }
            }
            SweepWorkloadKind::Session(spec) => {
                let mut scheduler = point.scheduler.build();
                let report = harness.run_session(spec, system.as_ref(), scheduler.as_mut());
                PointMetrics {
                    score: report.session_score,
                    total_energy_mj: report.total_energy_mj,
                    drop_rate: report.drop_rate,
                }
            }
            SweepWorkloadKind::Fleet(spec) => {
                let config = FleetRunConfig {
                    sim: harness.sim_config(),
                    workers: default_workers(),
                    recovery: point.recovery,
                    ..FleetRunConfig::default()
                };
                let state = run_fleet_shard_with(
                    spec,
                    system.as_ref(),
                    &config,
                    &|| point.scheduler.build(),
                    0,
                    1,
                );
                let report =
                    merge_fleet_shards(spec, &system.label(), point.scheduler.name(), &[state])
                        .expect("a single shard is a complete partition");
                PointMetrics {
                    score: report.fleet_score,
                    total_energy_mj: report.total_energy_mj,
                    drop_rate: report.drop_rate,
                }
            }
        }
    }

    /// The static capacity proxy for one point: PEs for
    /// scenario/session workloads; for fleets, PEs derated by each
    /// group's mean availability (`1/(1+λ_f·d_f) · 1/(1+λ_p·d_p)`)
    /// and mean throttle capacity, replica-weighted.
    fn derated_capacity(&self, point: &SweepPoint) -> f64 {
        let pes = point.pes as f64;
        let SweepWorkloadKind::Fleet(spec) = &self.workloads[point.workload].kind else {
            return pes;
        };
        let mut weighted = 0.0;
        let mut replicas = 0.0;
        for group in &spec.groups {
            let r = f64::from(group.replicas);
            let derate = group.faults.as_ref().map_or(1.0, |p| {
                let avail_failure = 1.0 / (1.0 + p.failure_rate_per_s * p.mean_downtime_s);
                let avail_preempt = 1.0 / (1.0 + p.preemption_rate_per_s * p.mean_preemption_s);
                let throttle = p
                    .throttle
                    .as_ref()
                    .map_or(1.0, |t| t.duty * t.factor + (1.0 - t.duty));
                avail_failure * avail_preempt * throttle
            });
            weighted += r * derate;
            replicas += r;
        }
        pes * weighted / replicas
    }

    /// Runs the whole sweep in-process with no checkpointing.
    pub fn run(&self) -> SweepReport {
        self.run_with(&SweepOptions::default())
            .expect("no checkpoint I/O is configured")
            .report
            .expect("no limit is configured")
    }

    /// Runs the sweep with resumption/limit options.
    ///
    /// Points complete in global index order through the memo cache.
    /// With a checkpoint path, completed points are persisted after
    /// every evaluation and restored (and re-seeded into the cache)
    /// on the next call, making a kill-and-resume byte-identical to
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`XrError::Io`] for unreadable/unwritable checkpoint
    /// files and [`XrError::Spec`] for a corrupt checkpoint or one
    /// written by a different document (fingerprint mismatch).
    pub fn run_with(&self, options: &SweepOptions) -> Result<SweepOutcome, XrError> {
        let points = self.points();
        let fingerprint = self.fingerprint();
        let mut metrics: Vec<Option<PointMetrics>> = vec![None; points.len()];
        let mut cache: BTreeMap<String, PointMetrics> = BTreeMap::new();
        let mut stats = SweepStats {
            points: points.len(),
            ..SweepStats::default()
        };

        if let Some(path) = &options.checkpoint {
            if path.exists() {
                let text =
                    fs::read_to_string(path).map_err(|e| XrError::io("read", path.display(), e))?;
                for (index, m) in decode_checkpoint(&text, fingerprint, points.len())? {
                    if metrics[index].is_none() {
                        stats.resumed += 1;
                    }
                    metrics[index] = Some(m);
                    cache.insert(self.cache_key(&points[index]), m);
                }
            }
        }

        let completed_target = options.limit.unwrap_or(points.len()).min(points.len());
        for point in &points {
            if point.index >= completed_target {
                break;
            }
            if metrics[point.index].is_some() {
                continue;
            }
            let key = self.cache_key(point);
            let m = match cache.get(&key) {
                Some(&m) => {
                    stats.cache_hits += 1;
                    m
                }
                None => {
                    stats.evaluated += 1;
                    let m = self.evaluate(point);
                    cache.insert(key, m);
                    m
                }
            };
            metrics[point.index] = Some(m);
            if let Some(path) = &options.checkpoint {
                write_checkpoint(path, fingerprint, &metrics)?;
            }
        }

        let report = if metrics.iter().all(Option::is_some) {
            let all: Vec<PointMetrics> = metrics.into_iter().map(|m| m.expect("checked")).collect();
            Some(self.build_report(&points, &all))
        } else {
            None
        };
        Ok(SweepOutcome { report, stats })
    }

    /// Runs shard `shard` of `num_shards`: the points with global
    /// index in `[⌊kP/N⌋, ⌊(k+1)P/N⌋)`, memo-cached within the shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards`.
    pub fn run_shard(&self, shard: u32, num_shards: u32) -> SweepShardState {
        assert!(
            shard < num_shards,
            "shard {shard} out of range (num_shards: {num_shards})"
        );
        let points = self.points();
        let (start, end) = shard_range(points.len(), shard, num_shards);
        let mut cache: BTreeMap<String, PointMetrics> = BTreeMap::new();
        let mut evaluated = 0;
        let mut cache_hits = 0;
        let mut rows = Vec::with_capacity(end - start);
        for point in &points[start..end] {
            let key = self.cache_key(point);
            let m = match cache.get(&key) {
                Some(&m) => {
                    cache_hits += 1;
                    m
                }
                None => {
                    evaluated += 1;
                    let m = self.evaluate(point);
                    cache.insert(key, m);
                    m
                }
            };
            rows.push((point.index, m));
        }
        SweepShardState {
            shard,
            num_shards,
            fingerprint: self.fingerprint(),
            rows,
            evaluated,
            cache_hits,
        }
    }

    /// Merges shard states produced by [`SweepDocument::run_shard`]
    /// (in any order, possibly in other processes) into the final
    /// report — byte-identical to [`SweepDocument::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`XrError::Spec`] when the states do not form a
    /// complete, consistent partition of this sweep's point list, or
    /// were produced by a different document.
    pub fn merge_shards(&self, states: &[SweepShardState]) -> Result<SweepReport, XrError> {
        let invalid = |message: String| {
            XrError::Spec(SpecError::Invalid {
                path: "sweep-state".to_string(),
                message,
            })
        };
        let points = self.points();
        let fingerprint = self.fingerprint();
        let Some(first) = states.first() else {
            return Err(invalid("no shard states to merge".to_string()));
        };
        let num_shards = first.num_shards;
        if states.len() as u64 != u64::from(num_shards) {
            return Err(invalid(format!(
                "expected {num_shards} shard states, got {}",
                states.len()
            )));
        }
        let mut seen = vec![false; num_shards as usize];
        let mut metrics: Vec<Option<PointMetrics>> = vec![None; points.len()];
        for state in states {
            if state.num_shards != num_shards {
                return Err(invalid(format!(
                    "inconsistent shard counts: {} vs {num_shards}",
                    state.num_shards
                )));
            }
            if state.shard >= num_shards {
                return Err(invalid(format!(
                    "shard {} out of range (num_shards: {num_shards})",
                    state.shard
                )));
            }
            if seen[state.shard as usize] {
                return Err(invalid(format!("duplicate shard {}", state.shard)));
            }
            seen[state.shard as usize] = true;
            if state.fingerprint != fingerprint {
                return Err(invalid(format!(
                    "shard {} was produced by a different sweep document \
                     (fingerprint mismatch)",
                    state.shard
                )));
            }
            let (start, end) = shard_range(points.len(), state.shard, num_shards);
            if state.rows.len() != end - start {
                return Err(invalid(format!(
                    "shard {} carries {} points, expected {}",
                    state.shard,
                    state.rows.len(),
                    end - start
                )));
            }
            for &(index, m) in &state.rows {
                if index < start || index >= end {
                    return Err(invalid(format!(
                        "shard {} carries point {index}, outside its range \
                         [{start}, {end})",
                        state.shard
                    )));
                }
                metrics[index] = Some(m);
            }
        }
        let all: Vec<PointMetrics> = metrics
            .into_iter()
            .map(|m| m.expect("complete partition fills every point"))
            .collect();
        Ok(self.build_report(&points, &all))
    }

    /// Folds completed metrics into the report: Pareto frontiers and
    /// per-axis marginals.
    fn build_report(&self, points: &[SweepPoint], metrics: &[PointMetrics]) -> SweepReport {
        let point_reports: Vec<SweepPointReport> = points
            .iter()
            .zip(metrics)
            .map(|(point, m)| SweepPointReport {
                index: point.index,
                workload: self.workloads[point.workload].name.clone(),
                accelerator: format!("{}@{}", point.accelerator, point.pes),
                scheduler: point.scheduler.name().to_string(),
                recovery: point.recovery.as_str().to_string(),
                score: m.score,
                total_energy_mj: m.total_energy_mj,
                drop_rate: m.drop_rate,
                derated_capacity: self.derated_capacity(point),
            })
            .collect();

        let energy_points: Vec<ParetoPoint> = point_reports
            .iter()
            .map(|p| ParetoPoint::new(p.index.to_string(), vec![p.score, -p.total_energy_mj]))
            .collect();
        let capacity_points: Vec<ParetoPoint> = point_reports
            .iter()
            .map(|p| ParetoPoint::new(p.index.to_string(), vec![p.score, -p.derated_capacity]))
            .collect();

        type AxisSelect = fn(&SweepPointReport) -> &str;
        let mut marginals = Vec::new();
        let axes: [(&str, Vec<String>, AxisSelect); 4] = [
            (
                "workload",
                self.workloads.iter().map(|w| w.name.clone()).collect(),
                |p| &p.workload,
            ),
            (
                "accelerator",
                self.hardware_points()
                    .iter()
                    .map(|(id, pes)| format!("{id}@{pes}"))
                    .collect(),
                |p| &p.accelerator,
            ),
            (
                "scheduler",
                self.schedulers
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect(),
                |p| &p.scheduler,
            ),
            (
                "recovery",
                self.recovery
                    .iter()
                    .map(|r| r.as_str().to_string())
                    .collect(),
                |p| &p.recovery,
            ),
        ];
        for (axis, values, select) in axes {
            for value in values {
                let scores: Vec<f64> = point_reports
                    .iter()
                    .filter(|p| select(p) == value)
                    .map(|p| p.score)
                    .collect();
                if scores.is_empty() {
                    continue;
                }
                marginals.push(AxisMarginalReport {
                    axis: axis.to_string(),
                    value,
                    points: scores.len(),
                    mean_score: scores.iter().sum::<f64>() / scores.len() as f64,
                    best_score: scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                });
            }
        }

        SweepReport {
            sweep: self.name.clone(),
            num_points: point_reports.len(),
            distinct_evaluations: self.distinct_evaluations(),
            pareto_score_energy: pareto_frontier(&energy_points),
            pareto_score_capacity: pareto_frontier(&capacity_points),
            points: point_reports,
            marginals,
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding helpers
// ---------------------------------------------------------------------------

fn decode_accelerators(cursor: &Cursor<'_>) -> Result<Vec<char>, SpecError> {
    let mut out = Vec::new();
    for item in cursor.items()? {
        let text = item.as_str()?;
        let id = match text.chars().next() {
            Some(c) if text.chars().count() == 1 => c.to_ascii_uppercase(),
            _ => {
                return Err(SpecError::Invalid {
                    path: item.path().to_string(),
                    message: format!("accelerator id must be a single letter A-M, got `{text}`"),
                })
            }
        };
        if config_by_id(id).is_none() {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("unknown accelerator `{id}` (Table 5 defines A-M)"),
            });
        }
        if out.contains(&id) {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("duplicate accelerator `{id}`"),
            });
        }
        out.push(id);
    }
    if out.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "accelerators must name at least one Table 5 id".to_string(),
        });
    }
    Ok(out)
}

fn decode_pe_scaling(cursor: &Cursor<'_>) -> Result<Vec<f64>, SpecError> {
    let mut out: Vec<f64> = Vec::new();
    for item in cursor.items()? {
        let factor: f64 = item.get()?;
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("pe_scaling factors must be positive and finite, got {factor}"),
            });
        }
        if out.iter().any(|&f| f.to_bits() == factor.to_bits()) {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("duplicate pe_scaling factor {factor}"),
            });
        }
        out.push(factor);
    }
    if out.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "pe_scaling must list at least one factor".to_string(),
        });
    }
    Ok(out)
}

fn decode_schedulers(cursor: &Cursor<'_>) -> Result<Vec<SchedulerSpec>, SpecError> {
    let mut out = Vec::new();
    for item in cursor.items()? {
        let scheduler = SchedulerSpec::from_value(&item)?;
        if out.contains(&scheduler) {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("duplicate scheduler `{}`", scheduler.name()),
            });
        }
        out.push(scheduler);
    }
    if out.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "schedulers must list at least one scheduler".to_string(),
        });
    }
    Ok(out)
}

fn decode_recovery(cursor: &Cursor<'_>) -> Result<Vec<RecoveryPolicy>, SpecError> {
    let mut out = Vec::new();
    for item in cursor.items()? {
        let name = item.as_str()?;
        let policy = RecoveryPolicy::parse(name).ok_or_else(|| SpecError::Invalid {
            path: item.path().to_string(),
            message: format!(
                "unknown recovery policy `{name}` (expected drop, requeue, or migrate)"
            ),
        })?;
        if out.contains(&policy) {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: format!("duplicate recovery policy `{name}`"),
            });
        }
        out.push(policy);
    }
    if out.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "recovery must list at least one policy".to_string(),
        });
    }
    Ok(out)
}

fn decode_workloads(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<Vec<SweepWorkload>, SpecError> {
    let mut out: Vec<SweepWorkload> = Vec::new();
    for item in cursor.items()? {
        item.deny_unknown_fields(&["name", "scenario", "session", "fleet", "scenario_seeds"])?;
        let name: Option<String> = item.get_opt_field("name")?;
        let scenario = item.opt_field("scenario")?;
        let session = item.opt_field("session")?;
        let fleet = item.opt_field("fleet")?;
        let seeds = item.opt_field("scenario_seeds")?;
        let present = [
            scenario.is_some(),
            session.is_some(),
            fleet.is_some(),
            seeds.is_some(),
        ]
        .iter()
        .filter(|p| **p)
        .count();
        if present != 1 {
            return Err(SpecError::Invalid {
                path: item.path().to_string(),
                message: "exactly one of `scenario`, `session`, `fleet`, or \
                          `scenario_seeds` is required"
                    .to_string(),
            });
        }
        if let Some(c) = scenario {
            let wanted = c.as_str()?;
            let spec = catalog
                .get(wanted)
                .cloned()
                .ok_or_else(|| SpecError::UnknownScenario {
                    path: c.path().to_string(),
                    name: wanted.to_string(),
                    available: catalog.names().iter().map(|s| s.to_string()).collect(),
                })?;
            let name = name.unwrap_or_else(|| spec.name.clone());
            out.push(SweepWorkload {
                name,
                kind: SweepWorkloadKind::Scenario(spec),
            });
        } else if let Some(c) = session {
            let spec = session_from_value(&c, catalog)?;
            let name = name.unwrap_or_else(|| spec.name.clone());
            out.push(SweepWorkload {
                name,
                kind: SweepWorkloadKind::Session(spec),
            });
        } else if let Some(c) = fleet {
            let spec = xrbench_fleet::specfile::fleet_from_value(&c, catalog)?;
            let name = name.unwrap_or_else(|| spec.name.clone());
            out.push(SweepWorkload {
                name,
                kind: SweepWorkloadKind::Fleet(spec),
            });
        } else {
            let seeds = seeds.expect("exactly one field is present");
            let space = ScenarioSpace::default();
            let mut any = false;
            for seed_cursor in seeds.items()? {
                let seed: u64 = seed_cursor.get()?;
                let spec = space.sample(seed);
                let entry_name = match &name {
                    Some(prefix) => format!("{prefix}-{seed}"),
                    None => format!("sampled-{seed}"),
                };
                out.push(SweepWorkload {
                    name: entry_name,
                    kind: SweepWorkloadKind::Scenario(spec),
                });
                any = true;
            }
            if !any {
                return Err(SpecError::Invalid {
                    path: seeds.path().to_string(),
                    message: "scenario_seeds must list at least one seed".to_string(),
                });
            }
        }
    }
    if out.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "workloads must list at least one workload".to_string(),
        });
    }
    let mut names = BTreeSet::new();
    for workload in &out {
        if !names.insert(workload.name.as_str()) {
            return Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: format!("duplicate workload name `{}`", workload.name),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Wire formats (checkpoint + shard state)
// ---------------------------------------------------------------------------
//
// Same exactness rules as the fleet shard wire format: integers as
// decimal strings (the vendored JSON value is f64-backed), f64
// metrics as their IEEE-754 bit patterns, so a round-trip through a
// file or a pipe is bit-lossless and merged/resumed reports stay
// byte-identical to straight-through runs.

fn s(v: impl ToString) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn parse_int<T: std::str::FromStr>(cursor: &Cursor<'_>) -> Result<T, SpecError> {
    let text = cursor.as_str()?;
    text.parse().map_err(|_| SpecError::Invalid {
        path: cursor.path().to_string(),
        message: format!("expected a decimal integer string, got `{text}`"),
    })
}

fn row_value(index: usize, m: &PointMetrics) -> JsonValue {
    JsonValue::Array(vec![
        s(index),
        s(m.score.to_bits()),
        s(m.total_energy_mj.to_bits()),
        s(m.drop_rate.to_bits()),
    ])
}

fn row_from_value(
    cursor: &Cursor<'_>,
    num_points: usize,
) -> Result<(usize, PointMetrics), SpecError> {
    let cells = cursor.items()?;
    if cells.len() != 4 {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: format!("expected a 4-cell point row, got {} cells", cells.len()),
        });
    }
    let index: usize = parse_int(&cells[0])?;
    if index >= num_points {
        return Err(SpecError::Invalid {
            path: cells[0].path().to_string(),
            message: format!("point index {index} out of range (points: {num_points})"),
        });
    }
    Ok((
        index,
        PointMetrics {
            score: f64::from_bits(parse_int(&cells[1])?),
            total_energy_mj: f64::from_bits(parse_int(&cells[2])?),
            drop_rate: f64::from_bits(parse_int(&cells[3])?),
        },
    ))
}

fn write_checkpoint(
    path: &Path,
    fingerprint: u64,
    metrics: &[Option<PointMetrics>],
) -> Result<(), XrError> {
    let rows: Vec<JsonValue> = metrics
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.as_ref().map(|m| row_value(i, m)))
        .collect();
    let doc = obj(vec![
        ("xrbench_sweep_checkpoint", s(SWEEP_CHECKPOINT_VERSION)),
        ("fingerprint", s(fingerprint)),
        ("points", JsonValue::Array(rows)),
    ]);
    let mut text = serde_json::to_string(&doc).expect("checkpoint serialization cannot fail");
    text.push('\n');
    fs::write(path, text).map_err(|e| XrError::io("write", path.display(), e))
}

fn decode_checkpoint(
    text: &str,
    expected_fingerprint: u64,
    num_points: usize,
) -> Result<Vec<(usize, PointMetrics)>, XrError> {
    let (fingerprint, rows) = decode_checkpoint_inner(text, num_points)?;
    if fingerprint != expected_fingerprint {
        return Err(XrError::Spec(SpecError::Invalid {
            path: "$.fingerprint".to_string(),
            message: "checkpoint was written for a different sweep document \
                      (fingerprint mismatch)"
                .to_string(),
        }));
    }
    Ok(rows)
}

#[allow(clippy::type_complexity)]
fn decode_checkpoint_inner(
    text: &str,
    num_points: usize,
) -> Result<(u64, Vec<(usize, PointMetrics)>), SpecError> {
    let value = parse_json(text)?;
    let cursor = Cursor::root(&value);
    cursor.deny_unknown_fields(&["xrbench_sweep_checkpoint", "fingerprint", "points"])?;
    let version: u64 = parse_int(&cursor.field("xrbench_sweep_checkpoint")?)?;
    if version != SWEEP_CHECKPOINT_VERSION {
        return Err(SpecError::Invalid {
            path: "$.xrbench_sweep_checkpoint".to_string(),
            message: format!(
                "unsupported checkpoint version {version} (supported: \
                 {SWEEP_CHECKPOINT_VERSION})"
            ),
        });
    }
    let fingerprint: u64 = parse_int(&cursor.field("fingerprint")?)?;
    let mut rows = Vec::new();
    for item in cursor.field("points")?.items()? {
        rows.push(row_from_value(&item, num_points)?);
    }
    Ok((fingerprint, rows))
}

impl SweepShardState {
    /// Serializes the state for transport over a pipe.
    pub fn to_json(&self) -> String {
        let doc = obj(vec![
            ("xrbench_sweep_state", s(SWEEP_STATE_VERSION)),
            ("shard", s(self.shard)),
            ("num_shards", s(self.num_shards)),
            ("fingerprint", s(self.fingerprint)),
            (
                "points",
                JsonValue::Array(self.rows.iter().map(|(i, m)| row_value(*i, m)).collect()),
            ),
            ("evaluated", s(self.evaluated)),
            ("cache_hits", s(self.cache_hits)),
        ]);
        serde_json::to_string(&doc).expect("state serialization cannot fail")
    }

    /// Parses a state serialized by [`SweepShardState::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed JSON, an unsupported
    /// version tag, or shape problems.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let value = parse_json(text)?;
        let cursor = Cursor::root(&value);
        cursor.deny_unknown_fields(&[
            "xrbench_sweep_state",
            "shard",
            "num_shards",
            "fingerprint",
            "points",
            "evaluated",
            "cache_hits",
        ])?;
        let version: u64 = parse_int(&cursor.field("xrbench_sweep_state")?)?;
        if version != SWEEP_STATE_VERSION {
            return Err(SpecError::Invalid {
                path: "$.xrbench_sweep_state".to_string(),
                message: format!(
                    "unsupported sweep-state version {version} (supported: \
                     {SWEEP_STATE_VERSION})"
                ),
            });
        }
        let mut rows = Vec::new();
        for item in cursor.field("points")?.items()? {
            rows.push(row_from_value(&item, usize::MAX)?);
        }
        Ok(Self {
            shard: parse_int(&cursor.field("shard")?)?,
            num_shards: parse_int(&cursor.field("num_shards")?)?,
            fingerprint: parse_int(&cursor.field("fingerprint")?)?,
            rows,
            evaluated: parse_int(&cursor.field("evaluated")?)?,
            cache_hits: parse_int(&cursor.field("cache_hits")?)?,
        })
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunDocument;

    fn sweep(body: &str) -> SweepDocument {
        let doc = RunDocument::from_json_str(body).expect("valid sweep document");
        let RunDocument::Sweep(run) = doc else {
            panic!("expected a sweep document");
        };
        run
    }

    const SMALL_SWEEP: &str = r#"{
        "kind": "sweep", "name": "unit", "duration_s": 0.05,
        "accelerators": ["J"], "base_pes": 8192, "pe_scaling": [1.0, 0.5],
        "schedulers": ["latency-greedy", "round-robin"],
        "recovery": ["drop", "requeue"],
        "workloads": [ { "scenario": "VR Gaming" } ] }"#;

    #[test]
    fn points_expand_in_declaration_order_with_recovery_innermost() {
        let run = sweep(SMALL_SWEEP);
        let points = run.points();
        assert_eq!(points.len(), 8);
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        assert_eq!(points[0].pes, 8192);
        assert_eq!(points[0].scheduler, SchedulerSpec::LatencyGreedy);
        assert_eq!(points[0].recovery, RecoveryPolicy::Drop);
        assert_eq!(points[1].recovery, RecoveryPolicy::Requeue);
        assert_eq!(points[2].scheduler, SchedulerSpec::RoundRobin);
        assert_eq!(points[4].pes, 4096);
    }

    #[test]
    fn recovery_axis_collapses_in_cache_keys_for_faultless_workloads() {
        let run = sweep(SMALL_SWEEP);
        let points = run.points();
        assert_eq!(run.cache_key(&points[0]), run.cache_key(&points[1]));
        assert_ne!(run.cache_key(&points[0]), run.cache_key(&points[2]));
        assert_eq!(run.distinct_evaluations(), 4);
    }

    #[test]
    fn memo_cache_halves_the_evaluations() {
        let run = sweep(SMALL_SWEEP);
        let outcome = run.run_with(&SweepOptions::default()).unwrap();
        assert_eq!(outcome.stats.points, 8);
        assert_eq!(outcome.stats.evaluated, 4);
        assert_eq!(outcome.stats.cache_hits, 4);
        let report = outcome.report.expect("no limit configured");
        assert_eq!(report.num_points, 8);
        assert_eq!(report.distinct_evaluations, 4);
        // Identical metrics for the recovery-collapsed twin points.
        assert_eq!(report.points[0].score, report.points[1].score);
        assert_eq!(
            report.points[0].total_energy_mj,
            report.points[1].total_energy_mj
        );
    }

    #[test]
    fn sharded_runs_merge_byte_identically() {
        let run = sweep(SMALL_SWEEP);
        let straight = run.run();
        for num_shards in [1_u32, 3, 4, 8, 11] {
            let states: Vec<SweepShardState> = (0..num_shards)
                .map(|k| {
                    let text = run.run_shard(k, num_shards).to_json();
                    SweepShardState::from_json(&text).expect("round-trips")
                })
                .collect();
            let merged = run.merge_shards(&states).expect("complete partition");
            assert_eq!(merged.to_json(), straight.to_json(), "N={num_shards}");
        }
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_to_straight_run() {
        let run = sweep(SMALL_SWEEP);
        let straight = run.run();
        let dir = std::env::temp_dir().join(format!(
            "xrbench-sweep-test-{}-{}",
            std::process::id(),
            run.fingerprint()
        ));
        fs::create_dir_all(&dir).unwrap();
        let checkpoint = dir.join("ckpt.json");
        let _ = fs::remove_file(&checkpoint);

        let partial = run
            .run_with(&SweepOptions {
                checkpoint: Some(checkpoint.clone()),
                limit: Some(3),
            })
            .unwrap();
        assert!(partial.report.is_none());
        assert_eq!(partial.stats.evaluated + partial.stats.cache_hits, 3);

        let resumed = run
            .run_with(&SweepOptions {
                checkpoint: Some(checkpoint.clone()),
                limit: None,
            })
            .unwrap();
        assert_eq!(resumed.stats.resumed, 3);
        let report = resumed.report.expect("resumed to completion");
        assert_eq!(report.to_json(), straight.to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_from_a_different_document_are_rejected() {
        let run = sweep(SMALL_SWEEP);
        let other = sweep(&SMALL_SWEEP.replace("0.05", "0.04"));
        assert_ne!(run.fingerprint(), other.fingerprint());
        let dir = std::env::temp_dir().join(format!(
            "xrbench-sweep-fp-{}-{}",
            std::process::id(),
            run.fingerprint()
        ));
        fs::create_dir_all(&dir).unwrap();
        let checkpoint = dir.join("ckpt.json");
        let _ = fs::remove_file(&checkpoint);
        other
            .run_with(&SweepOptions {
                checkpoint: Some(checkpoint.clone()),
                limit: Some(1),
            })
            .unwrap();
        let err = run
            .run_with(&SweepOptions {
                checkpoint: Some(checkpoint.clone()),
                limit: None,
            })
            .unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn marginals_cover_every_axis_value() {
        let run = sweep(SMALL_SWEEP);
        let report = run.run();
        let axis_values: Vec<(String, String)> = report
            .marginals
            .iter()
            .map(|m| (m.axis.clone(), m.value.clone()))
            .collect();
        for expected in [
            ("workload", "VR Gaming"),
            ("accelerator", "J@8192"),
            ("accelerator", "J@4096"),
            ("scheduler", "latency-greedy"),
            ("scheduler", "round-robin"),
            ("recovery", "drop"),
            ("recovery", "requeue"),
        ] {
            assert!(
                axis_values.contains(&(expected.0.to_string(), expected.1.to_string())),
                "missing marginal {expected:?}"
            );
        }
        for marginal in &report.marginals {
            assert!(marginal.best_score >= marginal.mean_score - 1e-12);
            assert!(marginal.points > 0);
        }
    }

    #[test]
    fn pareto_fronts_are_non_empty_and_in_range() {
        let run = sweep(SMALL_SWEEP);
        let report = run.run();
        for front in [&report.pareto_score_energy, &report.pareto_score_capacity] {
            assert!(!front.is_empty());
            assert!(front.iter().all(|&i| i < report.num_points));
        }
    }

    #[test]
    fn scenario_seed_workloads_expand_through_the_scenario_space() {
        let run = sweep(
            r#"{ "kind": "sweep", "duration_s": 0.05,
                 "accelerators": ["J"],
                 "workloads": [ { "scenario_seeds": [7, 8] } ] }"#,
        );
        assert_eq!(run.workloads.len(), 2);
        assert_eq!(run.workloads[0].name, "sampled-7");
        assert_eq!(run.workloads[1].name, "sampled-8");
        assert_eq!(run.points().len(), 2);
    }

    #[test]
    fn sweep_document_rejections_name_the_problem() {
        let cases = [
            (
                r#"{ "kind": "sweep", "accelerators": [], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "at least one Table 5 id",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J", "J"], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "duplicate accelerator",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["Z"], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "unknown accelerator",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "pe_scaling": [0.0], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "positive and finite",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "schedulers": ["latency-greedy", "latency-greedy"], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "duplicate scheduler",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "recovery": ["vanish"], "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "unknown recovery policy",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "workloads": [] }"#,
                "at least one workload",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "workloads": [ { "scenario": "VR Gaming", "scenario_seeds": [1] } ] }"#,
                "exactly one of",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "workloads": [ { "scenario": "No Such Scenario" } ] }"#,
                "No Such Scenario",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "base_pes": 0, "workloads": [ { "scenario": "VR Gaming" } ] }"#,
                "base_pes must be at least 1",
            ),
            (
                r#"{ "kind": "sweep", "accelerators": ["J"], "workloads": [ { "scenario": "VR Gaming" }, { "scenario": "VR Gaming" } ] }"#,
                "duplicate workload name",
            ),
        ];
        for (body, needle) in cases {
            let err = RunDocument::from_json_str(body).expect_err(body);
            assert!(
                err.to_string().contains(needle),
                "expected `{needle}` in `{err}` for {body}"
            );
        }
    }
}
