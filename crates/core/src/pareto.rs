//! Pareto-frontier analysis over benchmark results.
//!
//! §3.7: "XRBench reveals all individual scores to users to facilitate
//! Pareto frontier analysis, in addition to XRBench Score." This
//! module finds the designs that are not dominated on a chosen set of
//! axes (e.g. real-time score vs energy score, or score vs total
//! energy).

/// One candidate design with named objective values.
///
/// All objectives are treated as **higher-is-better**; negate or
/// invert lower-is-better quantities (e.g. pass `-energy_mj`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Design label (e.g. `"J @ 8192 PEs"`).
    pub label: String,
    /// Objective values, higher is better.
    pub objectives: Vec<f64>,
}

impl ParetoPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty or contains non-finite values.
    pub fn new(label: impl Into<String>, objectives: Vec<f64>) -> Self {
        assert!(!objectives.is_empty(), "need at least one objective");
        assert!(
            objectives.iter().all(|v| v.is_finite()),
            "objectives must be finite"
        );
        Self {
            label: label.into(),
            objectives,
        }
    }

    /// Whether `self` dominates `other`: at least as good on every
    /// objective and strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        assert_eq!(
            self.objectives.len(),
            other.objectives.len(),
            "objective dimensionality mismatch"
        );
        let ge = self
            .objectives
            .iter()
            .zip(&other.objectives)
            .all(|(a, b)| a >= b);
        let gt = self
            .objectives
            .iter()
            .zip(&other.objectives)
            .any(|(a, b)| a > b);
        ge && gt
    }
}

/// Returns the indices of the non-dominated points, in input order.
///
/// # Panics
///
/// Panics if points have inconsistent objective counts.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(label: &str, objs: &[f64]) -> ParetoPoint {
        ParetoPoint::new(label, objs.to_vec())
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = p("a", &[1.0, 1.0]);
        let b = p("b", &[1.0, 1.0]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        let c = p("c", &[1.0, 2.0]);
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let points = vec![
            p("best-rt", &[0.9, 0.3]),
            p("best-energy", &[0.3, 0.9]),
            p("balanced", &[0.7, 0.7]),
            p("dominated", &[0.6, 0.6]),
            p("worst", &[0.1, 0.1]),
        ];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier, vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let points = vec![p("only", &[0.5])];
        assert_eq!(pareto_frontier(&points), vec![0]);
    }

    #[test]
    fn identical_points_all_survive() {
        let points = vec![p("x", &[0.5, 0.5]), p("y", &[0.5, 0.5])];
        assert_eq!(pareto_frontier(&points), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn empty_objectives_rejected() {
        let _ = ParetoPoint::new("bad", vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = ParetoPoint::new("bad", vec![f64::NAN]);
    }

    #[test]
    fn frontier_over_real_benchmark_axes() {
        // rt vs energy from a tiny synthetic sweep.
        let designs = [("A", 0.92, 0.91), ("B", 0.90, 0.92), ("C", 0.85, 0.85)];
        let points: Vec<ParetoPoint> = designs
            .iter()
            .map(|(l, rt, en)| p(l, &[*rt, *en]))
            .collect();
        let frontier = pareto_frontier(&points);
        let labels: Vec<&str> = frontier.iter().map(|&i| points[i].label.as_str()).collect();
        assert_eq!(labels, vec!["A", "B"]);
    }
}
