//! ASCII rendering of execution timelines (the Figure 6 view).

use std::collections::BTreeSet;

use xrbench_sim::SimResult;

/// Renders an execution timeline as ASCII art: one row per
/// (engine, model) pair, one column per time bucket; a filled cell
/// means the model was executing on that engine during that bucket.
///
/// `width` is the number of time buckets (columns).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_timeline(result: &SimResult, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let t_end = result
        .records
        .iter()
        .map(|r| r.t_end)
        .fold(result.duration_s, f64::max);
    let bucket = t_end / width as f64;
    let models: BTreeSet<_> = result.records.iter().map(|r| r.model).collect();

    let mut out = String::new();
    out.push_str(&format!(
        "time: 0 .. {:.0} ms   ({} engines)\n",
        t_end * 1e3,
        result.num_engines
    ));
    for engine in 0..result.num_engines {
        out.push_str(&format!("engine {engine}:\n"));
        for model in &models {
            let mut row = vec![b'.'; width];
            for rec in result
                .records
                .iter()
                .filter(|r| r.engine == engine && r.model == *model)
            {
                let a = ((rec.t_start / bucket) as usize).min(width - 1);
                let b = ((rec.t_end / bucket).ceil() as usize).clamp(a + 1, width);
                let ch = model.abbrev().as_bytes()[0];
                for cell in &mut row[a..b] {
                    *cell = ch;
                }
            }
            out.push_str(&format!(
                "  {:>2} |{}|\n",
                model.abbrev(),
                String::from_utf8(row).expect("ascii")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::{LatencyGreedy, SimConfig, Simulator, UniformProvider};
    use xrbench_workload::UsageScenario;

    fn result() -> SimResult {
        let p = UniformProvider::new(2, 0.004, 0.001);
        Simulator::new(SimConfig::default()).run(
            &UsageScenario::ArGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        )
    }

    #[test]
    fn timeline_has_row_per_engine_model_pair() {
        let r = result();
        let art = render_timeline(&r, 80);
        assert!(art.contains("engine 0:"));
        assert!(art.contains("engine 1:"));
        // AR gaming models: HT, DE, PD.
        assert!(art.contains("HT |"));
        assert!(art.contains("DE |"));
        assert!(art.contains("PD |"));
    }

    #[test]
    fn busy_cells_marked() {
        let r = result();
        let art = render_timeline(&r, 60);
        assert!(art.contains('H'), "HT activity missing:\n{art}");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = render_timeline(&result(), 0);
    }
}
