//! The unified execution entry point: one [`Runner`], any document.
//!
//! The library grew one entry point per workload shape —
//! `SuiteRun::run`, `SessionRun::run`, `FleetRun::run`, plus a zoo of
//! suite free functions — and every caller that executed "whatever
//! document the user handed me" had to dispatch by hand and invent
//! its own report plumbing. [`Runner::run`] executes any
//! [`RunDocument`] through exactly the same engine paths (reports are
//! byte-identical to the legacy entry points, which remain as
//! deprecated shims) and returns one tagged [`RunReport`], with one
//! error type ([`XrError`]) across every kind:
//!
//! ```
//! use xrbench_core::{Runner, RunReport};
//!
//! let json = r#"{ "kind": "suite", "repeats": 1, "hardware":
//!     { "uniform": { "engines": 2, "latency_s": 0.001, "energy_j": 0.001 } } }"#;
//! let report = Runner::new().run_json(json).unwrap();
//! assert_eq!(report.kind(), "suite");
//! let RunReport::Suite(suite) = report else { unreachable!() };
//! assert!(suite.xrbench_score > 0.0);
//! ```

use xrbench_fleet::FleetReport;

use crate::error::XrError;
use crate::report::{BenchmarkReport, SessionReport};
use crate::spec::RunDocument;
use crate::sweep::SweepReport;

/// Executes any [`RunDocument`] and returns a tagged [`RunReport`].
///
/// Stateless today; constructed (rather than a free function) so
/// execution policy can grow without another API break.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    _private: (),
}

/// The report of a [`Runner`] run, tagged by document kind.
#[derive(Debug, Clone, PartialEq)]
pub enum RunReport {
    /// A whole-suite report.
    Suite(BenchmarkReport),
    /// A multi-user session report.
    Session(SessionReport),
    /// A fleet report.
    Fleet(FleetReport),
    /// A design-space sweep report.
    Sweep(SweepReport),
}

impl RunReport {
    /// The report's kind (`suite`, `session`, `fleet`, `sweep`) —
    /// matches [`RunDocument::kind`] of the document that produced
    /// it.
    pub fn kind(&self) -> &'static str {
        match self {
            RunReport::Suite(_) => "suite",
            RunReport::Session(_) => "session",
            RunReport::Fleet(_) => "fleet",
            RunReport::Sweep(_) => "sweep",
        }
    }

    /// Serializes the wrapped report as pretty JSON — byte-identical
    /// to the wrapped report's own `to_json`.
    pub fn to_json(&self) -> String {
        match self {
            RunReport::Suite(r) => r.to_json(),
            RunReport::Session(r) => r.to_json(),
            RunReport::Fleet(r) => r.to_json(),
            RunReport::Sweep(r) => r.to_json(),
        }
    }
}

impl Runner {
    /// Creates a runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes a parsed document.
    ///
    /// # Errors
    ///
    /// Returns an [`XrError`] — today only sweep documents can fail
    /// at execution time (suite/session/fleet documents are fully
    /// validated at decode time), but every kind routes through the
    /// same error surface.
    pub fn run(&self, document: &RunDocument) -> Result<RunReport, XrError> {
        Ok(match document {
            RunDocument::Suite(run) => RunReport::Suite(run.execute()),
            RunDocument::Session(run) => RunReport::Session(run.execute()),
            RunDocument::Fleet(run) => RunReport::Fleet(run.execute()),
            RunDocument::Sweep(run) => RunReport::Sweep(run.run()),
        })
    }

    /// Parses a JSON run document (against the builtin scenario
    /// catalog) and executes it.
    ///
    /// # Errors
    ///
    /// Returns [`XrError::Spec`] for any parse/validation failure,
    /// plus anything [`Runner::run`] can return.
    pub fn run_json(&self, text: &str) -> Result<RunReport, XrError> {
        let document = RunDocument::from_json_str(text)?;
        self.run(&document)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIFORM_HW: &str = r#""hardware": { "uniform":
        { "engines": 2, "latency_s": 0.001, "energy_j": 0.001 } }"#;

    #[test]
    fn runner_reports_match_the_legacy_entry_points() {
        let runner = Runner::new();

        let suite_json = format!(r#"{{ "kind": "suite", {UNIFORM_HW}, "repeats": 2 }}"#);
        let report = runner.run_json(&suite_json).unwrap();
        assert_eq!(report.kind(), "suite");
        let RunDocument::Suite(legacy) = RunDocument::from_json_str(&suite_json).unwrap() else {
            unreachable!()
        };
        #[allow(deprecated)]
        let expected = legacy.run();
        assert_eq!(report.to_json(), expected.to_json());

        let session_json = format!(
            r#"{{ "kind": "session", {UNIFORM_HW}, "session": {{ "name": "party",
                  "uniform": {{ "scenario": "VR Gaming", "users": 2, "stagger_s": 0.01 }} }} }}"#
        );
        let report = runner.run_json(&session_json).unwrap();
        assert_eq!(report.kind(), "session");
        let RunDocument::Session(legacy) = RunDocument::from_json_str(&session_json).unwrap()
        else {
            unreachable!()
        };
        #[allow(deprecated)]
        let expected = legacy.run();
        assert_eq!(report.to_json(), expected.to_json());

        let fleet_json = format!(
            r#"{{ "kind": "fleet", {UNIFORM_HW}, "duration_s": 0.2, "fleet": {{
                  "name": "tiny", "groups": [ {{ "name": "vr", "replicas": 2,
                  "session": {{ "name": "s", "uniform": {{ "scenario": "VR Gaming",
                  "users": 1, "stagger_s": 0.0 }} }} }} ] }} }}"#
        );
        let report = runner.run_json(&fleet_json).unwrap();
        assert_eq!(report.kind(), "fleet");
        let RunDocument::Fleet(legacy) = RunDocument::from_json_str(&fleet_json).unwrap() else {
            unreachable!()
        };
        #[allow(deprecated)]
        let expected = legacy.run();
        assert_eq!(report.to_json(), expected.to_json());
    }

    #[test]
    fn runner_surfaces_spec_errors_through_xrerror() {
        let err = Runner::new()
            .run_json(r#"{ "kind": "party" }"#)
            .unwrap_err();
        assert_eq!(err.code(), crate::ErrorCode::Spec);
        assert!(err.to_string().contains("unknown document kind"));
    }
}
