//! Bucketed completion calendar (calendar queue) for the production
//! event engine.
//!
//! Completions in flight at any instant are bounded by the engine
//! count (plus a handful of degenerate sub-epsilon stragglers), so the
//! calendar holds `O(engines)` events — a regime where a classic
//! calendar queue beats a binary heap: insertion is an O(1) append
//! into the bucket at `⌊t / width⌋ mod NUM_BUCKETS`, and extraction
//! scans only the occupied buckets (tracked in one `u64` bitmask).
//!
//! **Bucket width derivation.** The width is sized so the in-flight
//! completion span spreads across the ring instead of piling into one
//! bucket: the first event pushed with a positive span past the drain
//! floor sets `width = span / (NUM_BUCKETS / 4)`, and whenever a later
//! event lands more than a full ring ahead of the drain floor the
//! width doubles until the ring covers it again (a rebuild touches at
//! most `O(engines)` queued events, so it amortizes to nothing).
//! Correctness never depends on the width — bucket indices wrap, and
//! every drain/minimum operation inspects the actual event times — so
//! the width only tunes how many non-due events a drain walks past.
//!
//! **Determinism.** Events drained for one timestamp cohort are
//! returned in arbitrary bucket order and then sorted by the total
//! [`CompletionEv`] order `(t, key, sensor_frame, token)` — exactly
//! the order the PR 3 binary heap popped them in — with an in-place
//! unstable sort (no two events compare equal: the dispatch token is
//! unique). No iteration order ever depends on addresses, hashing, or
//! wall-clock state, so the module passes the determinism lint with
//! zero allowlist entries.

use std::cmp::Ordering;

/// A completion event in the calendar.
///
/// `key` is the dense `(user, model)` key; `token` is the dispatch
/// sequence number, which both totalizes the ordering and lets the
/// engine-free side effect fire exactly once per dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletionEv {
    pub(crate) t: f64,
    pub(crate) key: u32,
    pub(crate) sensor_frame: u64,
    pub(crate) engine: u32,
    pub(crate) token: u64,
}

impl PartialEq for CompletionEv {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for CompletionEv {}

impl PartialOrd for CompletionEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total deterministic order: time, then (user, model) via the
        // dense key, then sensor frame, then dispatch token.
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.key.cmp(&other.key))
            .then_with(|| self.sensor_frame.cmp(&other.sensor_frame))
            .then_with(|| self.token.cmp(&other.token))
    }
}

/// Ring size: one `u64` occupancy bitmask covers the whole ring.
const NUM_BUCKETS: usize = 64;

/// The bucketed completion calendar. See the module docs for the
/// width derivation and the determinism argument.
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<CompletionEv>>,
    /// Bitmask of non-empty buckets.
    occupied: u64,
    /// Bucket width in seconds; `0.0` until the first positive-span
    /// push derives it.
    width: f64,
    /// The largest drain bound seen — new events land at or after it.
    floor_t: f64,
    len: usize,
}

impl CalendarQueue {
    /// A calendar pre-sized for `expected` concurrently-queued events
    /// (the engine count). Every bucket can hold the *entire* expected
    /// in-flight window — bucketing depends on the evolving width, so
    /// any one bucket may transiently receive every queued event —
    /// which keeps steady-state pushes off the allocator entirely.
    pub(crate) fn with_capacity(expected: usize) -> Self {
        let per_bucket = expected + 8;
        Self {
            buckets: (0..NUM_BUCKETS)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            occupied: 0,
            width: 0.0,
            floor_t: 0.0,
            len: 0,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        if self.width == 0.0 {
            0
        } else {
            // Saturating f64 → u64 cast keeps degenerate times finite
            // and deterministic; wrapping by the ring size is the
            // calendar-queue "year" construction.
            (t / self.width) as u64 as usize % NUM_BUCKETS
        }
    }

    /// Inserts an event: O(1) append, plus a rare O(len) width rebuild
    /// when the in-flight span outgrows the ring.
    pub(crate) fn push(&mut self, ev: CompletionEv) {
        let span = ev.t - self.floor_t;
        if span > 0.0 {
            if self.width == 0.0 {
                self.width = span / (NUM_BUCKETS / 4) as f64;
                self.rebuild();
            } else if span > self.width * NUM_BUCKETS as f64 {
                while span > self.width * NUM_BUCKETS as f64 {
                    self.width *= 2.0;
                }
                self.rebuild();
            }
        }
        let b = self.bucket_of(ev.t);
        self.buckets[b].push(ev);
        self.occupied |= 1 << b;
        self.len += 1;
    }

    /// Re-buckets every queued event after a width change. Touches at
    /// most the in-flight window (O(engines) events).
    fn rebuild(&mut self) {
        if self.len == 0 {
            return;
        }
        for b in 0..NUM_BUCKETS {
            let mut i = 0;
            while i < self.buckets[b].len() {
                let target = self.bucket_of(self.buckets[b][i].t);
                if target == b {
                    i += 1;
                } else {
                    let ev = self.buckets[b].swap_remove(i);
                    self.buckets[target].push(ev);
                    // The swapped-in event (if any) is examined next
                    // iteration; events moved into `target` are either
                    // already correct there or behind `b` and settled.
                }
            }
        }
        self.occupied = 0;
        for b in 0..NUM_BUCKETS {
            if !self.buckets[b].is_empty() {
                self.occupied |= 1 << b;
            }
        }
    }

    /// Moves every event with `t <= bound` onto `out` (unsorted — the
    /// caller sorts the appended range by the total [`CompletionEv`]
    /// order) and advances the drain floor.
    pub(crate) fn drain_due(&mut self, bound: f64, out: &mut Vec<CompletionEv>) {
        if bound > self.floor_t {
            self.floor_t = bound;
        }
        if self.len == 0 {
            return;
        }
        let mut mask = self.occupied;
        while mask != 0 {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let bucket = &mut self.buckets[b];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].t <= bound {
                    out.push(bucket.swap_remove(i));
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            if bucket.is_empty() {
                self.occupied &= !(1 << b);
            }
        }
    }

    /// The earliest queued event time, scanning the occupied buckets
    /// (O(engines) — the calendar never holds more than the in-flight
    /// window).
    pub(crate) fn next_time(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut best = f64::INFINITY;
        let mut mask = self.occupied;
        while mask != 0 {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            for ev in &self.buckets[b] {
                if ev.t < best {
                    best = ev.t;
                }
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, token: u64) -> CompletionEv {
        CompletionEv {
            t,
            key: (token % 7) as u32,
            sensor_frame: token / 2,
            engine: (token % 3) as u32,
            token,
        }
    }

    #[test]
    fn drains_in_heap_order_after_sort() {
        let mut q = CalendarQueue::with_capacity(4);
        let times = [0.005, 0.001, 0.003, 0.001, 0.0042, 0.002];
        for (i, &t) in times.iter().enumerate() {
            q.push(ev(t, i as u64));
        }
        let mut due = Vec::new();
        q.drain_due(0.003, &mut due);
        due.sort_unstable();
        let drained: Vec<u64> = due.iter().map(|e| e.token).collect();
        assert_eq!(drained, [1, 3, 5, 2]);
        assert_eq!(q.next_time(), Some(0.0042));
        q.drain_due(1.0, &mut due);
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn width_rebuild_preserves_contents() {
        let mut q = CalendarQueue::with_capacity(4);
        q.push(ev(0.001, 0));
        // 6 orders of magnitude beyond the initial span: forces the
        // doubling rebuild path.
        q.push(ev(1000.0, 1));
        q.push(ev(0.002, 2));
        let mut due = Vec::new();
        q.drain_due(0.0015, &mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].token, 0);
        q.drain_due(2000.0, &mut due);
        assert_eq!(due.len(), 3);
    }

    #[test]
    fn equal_times_order_by_key_frame_token() {
        let a = CompletionEv {
            t: 1.0,
            key: 2,
            sensor_frame: 5,
            engine: 0,
            token: 9,
        };
        let b = CompletionEv {
            t: 1.0,
            key: 2,
            sensor_frame: 5,
            engine: 1,
            token: 10,
        };
        assert!(a < b);
        assert!(a == a);
    }
}
