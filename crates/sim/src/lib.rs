//! # xrbench-sim
//!
//! The XRBench benchmark runtime (paper Figure 2): a discrete-event
//! simulator that replays a scenario's jittered inference-request
//! stream against a set of compute engines (sub-accelerators),
//! honoring model dependencies, applying the frame-freshness drop
//! policy, and recording a full execution timeline.
//!
//! The runtime is decoupled from any particular hardware model through
//! the [`CostProvider`] trait — the evaluated "ML system" may be an
//! analytical cost model (as in the paper's XRBench-MAESTRO artifact),
//! a table of measured latencies, or anything else that can answer
//! *"how long / how much energy does model µ take on engine h?"*.
//!
//! Scheduling is pluggable via the [`Scheduler`] trait; five policies
//! ship with the crate — the paper's default latency-greedy policy
//! ([`LatencyGreedy`]), the round-robin policy for real systems
//! ([`RoundRobin`]), a slack-aware EDF that triages lost causes
//! ([`SlackAwareEdf`]), a least-loaded load balancer
//! ([`LeastLoaded`]), and a churn-hardened failover policy
//! ([`FailoverAware`]) — and users can replace them (the yellow
//! "user-customizable" boxes in Figure 2). Every impl must pass the
//! scheduler conformance harness (`tests/scheduler_conformance.rs`).
//!
//! Dynamic fleets (PR 7) add a deterministic availability process
//! ([`FaultProcess`]): engine churn, preemption, and thermal
//! throttling injected as timeline events, with in-flight work on a
//! lost engine dropped, requeued, or migrated per [`RecoveryPolicy`].
//!
//! Multi-user sessions ([`xrbench_workload::SessionSpec`]) run through
//! [`Simulator::run_session`]: the merged request stream of all users
//! shares the engines concurrently, and the result splits back into
//! per-user [`SimResult`]s inside a [`SessionSimResult`].
//!
//! ## Example
//!
//! ```
//! use xrbench_sim::{Simulator, SimConfig, LatencyGreedy, UniformProvider};
//! use xrbench_workload::UsageScenario;
//!
//! // Two engines that run every model in 1 ms / 1 mJ.
//! let provider = UniformProvider::new(2, 0.001, 0.001);
//! let sim = Simulator::new(SimConfig::default());
//! let result = sim.run(
//!     &UsageScenario::VrGaming.spec(),
//!     &provider,
//!     &mut LatencyGreedy::new(),
//! );
//! assert!(result.records.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod engine;
mod fault;
mod heap;
mod naive;
mod provider;
mod result;
mod scheduler;
mod simulator;
pub mod trace;

pub use fault::{
    fault_seed, FaultAction, FaultEvent, FaultKind, FaultProcess, FaultTimeline, RecoveryPolicy,
    ThrottleSpec, FAULT_SEED_SALT,
};
pub use provider::{CostProvider, DenseCostCache, InferenceCost, TableProvider, UniformProvider};
pub use result::{DropReason, ExecRecord, ModelStats, SessionSimResult, SimResult};
pub use scheduler::{
    DispatchKernel, FailoverAware, LatencyGreedy, LeastLoaded, PendingView, RoundRobin, Scheduler,
    SlackAwareEdf,
};
pub use simulator::{SimConfig, Simulator};
