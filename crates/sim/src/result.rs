//! Simulation results: the execution timeline and per-model
//! frame accounting.

use std::collections::BTreeMap;

use xrbench_models::ModelId;

/// Why a frame never executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A newer frame of the same model arrived before this one
    /// started (the freshness drop policy).
    Superseded,
    /// The upstream model's frame was itself dropped, so this
    /// dependent frame could never be triggered.
    UpstreamDropped,
    /// The run ended while the frame was still queued (ready but never
    /// dispatched, or waiting on an upstream that never resolved).
    Starved,
    /// The engine running the frame was preempted mid-flight and the
    /// recovery policy discarded the work.
    Preempted,
    /// The engine running the frame failed (device churn) and the
    /// recovery policy discarded the work.
    DeviceLost,
}

/// One completed inference in the execution timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRecord {
    /// The model that ran.
    pub model: ModelId,
    /// Model-local frame index.
    pub frame_id: u64,
    /// Consumed sensor frame.
    pub sensor_frame: u64,
    /// Engine (sub-accelerator) index the inference ran on.
    pub engine: usize,
    /// When the input data arrived (jittered).
    pub t_req: f64,
    /// The processing deadline.
    pub t_deadline: f64,
    /// When execution started on the engine.
    pub t_start: f64,
    /// When execution completed.
    pub t_end: f64,
    /// Energy consumed (J).
    pub energy_j: f64,
}

impl ExecRecord {
    /// End-to-end inference latency `LInf` as seen by the user:
    /// completion minus data arrival (queueing included).
    pub fn latency_s(&self) -> f64 {
        self.t_end - self.t_req
    }

    /// The slack `Tsl = Tdl − Treq` (Definition 9).
    pub fn slack_s(&self) -> f64 {
        self.t_deadline - self.t_req
    }

    /// Whether the result was delivered past its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.t_end > self.t_deadline
    }

    /// By how much the deadline was overrun (0 if met).
    pub fn overrun_s(&self) -> f64 {
        (self.t_end - self.t_deadline).max(0.0)
    }
}

/// Per-model frame accounting for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Frames that were streamed *and triggered* for this model
    /// (`NumFrm`). Control-dependent frames whose trigger draw failed
    /// are excluded — the model was legitimately inactive for them.
    pub total_frames: u64,
    /// Frames that actually executed (`NumFrm_exec`).
    pub executed_frames: u64,
    /// Frames dropped (all reasons; equals the sum of the per-reason
    /// counters below).
    pub dropped_frames: u64,
    /// Frames whose control-dependency draw deactivated them.
    pub untriggered_frames: u64,
    /// Executed frames that missed their deadline.
    pub missed_deadlines: u64,
    /// Drops caused by a newer frame superseding this one
    /// ([`DropReason::Superseded`]).
    pub dropped_superseded: u64,
    /// Drops caused by the upstream frame itself being dropped
    /// ([`DropReason::UpstreamDropped`]).
    pub dropped_upstream: u64,
    /// Drops caused by the run ending with the frame still queued
    /// ([`DropReason::Starved`]).
    pub dropped_starved: u64,
    /// Drops caused by a mid-flight engine preemption
    /// ([`DropReason::Preempted`]).
    pub dropped_preempted: u64,
    /// Drops caused by a mid-flight engine failure
    /// ([`DropReason::DeviceLost`]).
    pub dropped_device_lost: u64,
}

impl ModelStats {
    /// Records one dropped frame, attributing it to `reason`.
    pub fn record_drop(&mut self, reason: DropReason) {
        self.dropped_frames += 1;
        match reason {
            DropReason::Superseded => self.dropped_superseded += 1,
            DropReason::UpstreamDropped => self.dropped_upstream += 1,
            DropReason::Starved => self.dropped_starved += 1,
            DropReason::Preempted => self.dropped_preempted += 1,
            DropReason::DeviceLost => self.dropped_device_lost += 1,
        }
    }

    /// The drop count attributed to `reason`.
    pub fn drops_for(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::Superseded => self.dropped_superseded,
            DropReason::UpstreamDropped => self.dropped_upstream,
            DropReason::Starved => self.dropped_starved,
            DropReason::Preempted => self.dropped_preempted,
            DropReason::DeviceLost => self.dropped_device_lost,
        }
    }
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Completed inferences, ordered by start time.
    pub records: Vec<ExecRecord>,
    /// Per-model accounting.
    pub stats: BTreeMap<ModelId, ModelStats>,
    /// Number of engines in the evaluated system.
    pub num_engines: usize,
    /// The nominal run duration in seconds.
    pub duration_s: f64,
}

impl SimResult {
    /// Total energy across all executed inferences (J).
    pub fn total_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.energy_j).sum()
    }

    /// Overall frame-drop rate across models (dropped / total).
    pub fn drop_rate(&self) -> f64 {
        let total: u64 = self.stats.values().map(|s| s.total_frames).sum();
        let dropped: u64 = self.stats.values().map(|s| s.dropped_frames).sum();
        if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        }
    }

    /// Busy time of one engine (sum of execution intervals), seconds.
    pub fn engine_busy_s(&self, engine: usize) -> f64 {
        self.records
            .iter()
            .filter(|r| r.engine == engine)
            .map(|r| r.t_end - r.t_start)
            .sum()
    }

    /// Engine utilization over the run duration, in `[0, 1]` (may
    /// exceed 1 slightly if work drains past the nominal duration).
    pub fn engine_utilization(&self, engine: usize) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.engine_busy_s(engine) / self.duration_s
    }

    /// Mean engine utilization across the system — the metric §4.2.2
    /// argues is *wrong* for XR workloads, exposed so the Figure 6
    /// experiment can demonstrate exactly that.
    pub fn mean_utilization(&self) -> f64 {
        if self.num_engines == 0 {
            return 0.0;
        }
        (0..self.num_engines)
            .map(|e| self.engine_utilization(e))
            .sum::<f64>()
            / self.num_engines as f64
    }

    /// The records belonging to one model, in start order.
    pub fn records_for(&self, model: ModelId) -> impl Iterator<Item = &ExecRecord> {
        self.records.iter().filter(move |r| r.model == model)
    }
}

/// The outcome of one simulated multi-user session: one [`SimResult`]
/// per user (all sharing the same engines over the same span), plus
/// session-level aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionSimResult {
    /// Session display name.
    pub session: String,
    /// Per-user results, in user-id order. Each user's `duration_s`
    /// is the full session span, so utilizations read as
    /// share-of-session.
    pub per_user: Vec<(u32, SimResult)>,
    /// Number of shared engines.
    pub num_engines: usize,
    /// The session span: last user's start offset plus run duration.
    pub span_s: f64,
}

impl SessionSimResult {
    /// One user's result, if present.
    pub fn user(&self, user: u32) -> Option<&SimResult> {
        self.per_user
            .iter()
            .find(|(u, _)| *u == user)
            .map(|(_, r)| r)
    }

    /// Total energy across all users (J).
    pub fn total_energy_j(&self) -> f64 {
        self.per_user.iter().map(|(_, r)| r.total_energy_j()).sum()
    }

    /// Mean engine utilization across the shared system over the
    /// session span, summed over users' work.
    pub fn mean_utilization(&self) -> f64 {
        if self.num_engines == 0 || self.span_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .per_user
            .iter()
            .flat_map(|(_, r)| r.records.iter())
            .map(|r| r.t_end - r.t_start)
            .sum();
        busy / (self.span_s * self.num_engines as f64)
    }

    /// Overall frame-drop rate across all users.
    pub fn drop_rate(&self) -> f64 {
        let total: u64 = self
            .per_user
            .iter()
            .flat_map(|(_, r)| r.stats.values())
            .map(|s| s.total_frames)
            .sum();
        let dropped: u64 = self
            .per_user
            .iter()
            .flat_map(|(_, r)| r.stats.values())
            .map(|s| s.dropped_frames)
            .sum();
        if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(model: ModelId, engine: usize, t0: f64, t1: f64) -> ExecRecord {
        ExecRecord {
            model,
            frame_id: 0,
            sensor_frame: 0,
            engine,
            t_req: t0,
            t_deadline: t0 + 0.016,
            t_start: t0,
            t_end: t1,
            energy_j: 0.01,
        }
    }

    #[test]
    fn latency_includes_queueing() {
        let mut r = rec(ModelId::HandTracking, 0, 0.0, 0.01);
        r.t_start = 0.005; // waited 5 ms in queue
        assert!((r.latency_s() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn deadline_miss_detection() {
        let r = rec(ModelId::HandTracking, 0, 0.0, 0.020);
        assert!(r.missed_deadline());
        assert!((r.overrun_s() - 0.004).abs() < 1e-12);
        let ok = rec(ModelId::HandTracking, 0, 0.0, 0.010);
        assert!(!ok.missed_deadline());
        assert_eq!(ok.overrun_s(), 0.0);
    }

    #[test]
    fn utilization_accounting() {
        let result = SimResult {
            records: vec![
                rec(ModelId::HandTracking, 0, 0.0, 0.25),
                rec(ModelId::DepthEstimation, 0, 0.5, 0.75),
                rec(ModelId::PlaneDetection, 1, 0.0, 1.0),
            ],
            stats: BTreeMap::new(),
            num_engines: 2,
            duration_s: 1.0,
        };
        assert!((result.engine_utilization(0) - 0.5).abs() < 1e-12);
        assert!((result.engine_utilization(1) - 1.0).abs() < 1e-12);
        assert!((result.mean_utilization() - 0.75).abs() < 1e-12);
        assert!((result.total_energy_j() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn drop_rate_over_all_models() {
        let mut stats = BTreeMap::new();
        stats.insert(
            ModelId::HandTracking,
            ModelStats {
                total_frames: 30,
                executed_frames: 20,
                dropped_frames: 10,
                ..Default::default()
            },
        );
        stats.insert(
            ModelId::DepthEstimation,
            ModelStats {
                total_frames: 30,
                executed_frames: 30,
                ..Default::default()
            },
        );
        let result = SimResult {
            records: vec![],
            stats,
            num_engines: 1,
            duration_s: 1.0,
        };
        assert!((result.drop_rate() - 10.0 / 60.0).abs() < 1e-12);
    }
}
