//! CSV export of execution timelines (the artifact's
//! `eval_data/*.csv` equivalent).

use std::fmt::Write as _;

use crate::result::SimResult;

/// Serializes the execution timeline as CSV with the columns
/// `model,frame,sensor_frame,engine,t_req,t_deadline,t_start,t_end,latency_ms,energy_mj,missed`.
///
/// Times are in seconds; latency/energy columns are pre-scaled for
/// spreadsheet convenience.
pub fn timeline_csv(result: &SimResult) -> String {
    let mut out = String::with_capacity(64 * (result.records.len() + 1));
    out.push_str("model,frame,sensor_frame,engine,t_req,t_deadline,t_start,t_end,latency_ms,energy_mj,missed\n");
    for r in &result.records {
        writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3},{}",
            r.model.abbrev(),
            r.frame_id,
            r.sensor_frame,
            r.engine,
            r.t_req,
            r.t_deadline,
            r.t_start,
            r.t_end,
            r.latency_s() * 1e3,
            r.energy_j * 1e3,
            r.missed_deadline() as u8,
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Serializes the per-model frame accounting as CSV with the columns
/// `model,total,executed,dropped,untriggered,missed_deadlines`.
pub fn stats_csv(result: &SimResult) -> String {
    let mut out = String::from("model,total,executed,dropped,untriggered,missed_deadlines\n");
    for (model, st) in &result.stats {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            model.abbrev(),
            st.total_frames,
            st.executed_frames,
            st.dropped_frames,
            st.untriggered_frames,
            st.missed_deadlines,
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::UniformProvider;
    use crate::scheduler::LatencyGreedy;
    use crate::simulator::{SimConfig, Simulator};
    use xrbench_workload::UsageScenario;

    fn run() -> SimResult {
        let p = UniformProvider::new(2, 0.002, 0.001);
        Simulator::new(SimConfig::default()).run(
            &UsageScenario::VrGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        )
    }

    #[test]
    fn timeline_csv_has_header_and_row_per_record() {
        let r = run();
        let csv = timeline_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("model,frame,"));
        assert_eq!(lines.len(), r.records.len() + 1);
        // All rows have the full column count.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 11, "{line}");
        }
    }

    #[test]
    fn stats_csv_covers_all_models() {
        let r = run();
        let csv = stats_csv(&r);
        for m in ["HT", "ES", "GE"] {
            assert!(
                csv.contains(&format!("\n{m},")) || csv.contains(&format!("{m},")),
                "{m}"
            );
        }
    }

    #[test]
    fn csv_times_are_parseable() {
        let r = run();
        let csv = timeline_csv(&r);
        let row = csv.lines().nth(1).expect("at least one record");
        let cols: Vec<&str> = row.split(',').collect();
        let t_req: f64 = cols[4].parse().expect("t_req parses");
        let t_end: f64 = cols[7].parse().expect("t_end parses");
        assert!(t_end >= t_req);
    }
}
