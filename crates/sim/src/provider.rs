//! The interface between the runtime and the evaluated ML system.

use std::cell::Cell;

use xrbench_models::ModelId;

/// Number of unit models, used to size every dense `(model, engine)`
/// and `(user, model)` table in this crate.
pub(crate) const NUM_MODELS: usize = ModelId::ALL.len();

/// The cost of running one inference of a model on one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceCost {
    /// End-to-end execution latency in seconds (excluding queuing).
    pub latency_s: f64,
    /// Energy consumed by the inference in joules.
    pub energy_j: f64,
}

/// The evaluated ML system: a set of compute engines
/// (sub-accelerators) with per-model execution costs.
///
/// Implementations may be analytical cost models, measurement tables,
/// or adapters to real hardware. Engines are identified by dense
/// indices `0..num_engines()`.
pub trait CostProvider {
    /// Number of independent compute engines.
    fn num_engines(&self) -> usize;

    /// A human-readable label for the whole system (used in reports).
    fn label(&self) -> String {
        "system".to_string()
    }

    /// A short human-readable engine label (e.g. `"WS@2048"`).
    fn engine_label(&self, engine: usize) -> String {
        format!("engine{engine}")
    }

    /// The cost of running `model` on `engine`.
    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost;
}

/// A provider where every model costs the same on every engine —
/// useful for tests and scheduler experiments.
#[derive(Debug, Clone)]
pub struct UniformProvider {
    engines: usize,
    cost: InferenceCost,
}

impl UniformProvider {
    /// Creates a provider with `engines` identical engines, each
    /// running any model in `latency_s` seconds for `energy_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0` or `latency_s <= 0`.
    pub fn new(engines: usize, latency_s: f64, energy_j: f64) -> Self {
        assert!(engines > 0, "need at least one engine");
        assert!(latency_s > 0.0, "latency must be positive");
        Self {
            engines,
            cost: InferenceCost {
                latency_s,
                energy_j,
            },
        }
    }
}

impl CostProvider for UniformProvider {
    fn num_engines(&self) -> usize {
        self.engines
    }

    fn cost(&self, _model: ModelId, _engine: usize) -> InferenceCost {
        self.cost
    }
}

/// A provider backed by an explicit `(model, engine) → cost` table.
///
/// Costs are stored densely (`model as usize * engines + engine`), so
/// [`CostProvider::cost`] is a single array index on the simulator's
/// hot dispatch path rather than a hash probe.
#[derive(Debug, Clone, Default)]
pub struct TableProvider {
    engines: usize,
    labels: Vec<String>,
    table: Vec<Option<InferenceCost>>,
}

impl TableProvider {
    /// Creates an empty table over `engines` engines.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0`.
    pub fn new(engines: usize) -> Self {
        assert!(engines > 0, "need at least one engine");
        Self {
            engines,
            labels: (0..engines).map(|i| format!("engine{i}")).collect(),
            table: vec![None; NUM_MODELS * engines],
        }
    }

    /// Creates a fully-populated table by evaluating `f` for every
    /// `(model, engine)` pair — the one-shot way to snapshot an
    /// analytical cost model into a dense lookup table.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0`.
    pub fn from_fn(engines: usize, mut f: impl FnMut(ModelId, usize) -> InferenceCost) -> Self {
        let mut p = Self::new(engines);
        for model in ModelId::ALL {
            for engine in 0..engines {
                p.set(model, engine, f(model, engine));
            }
        }
        p
    }

    /// Sets the cost of `model` on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `engine` is out of range.
    pub fn set(&mut self, model: ModelId, engine: usize, cost: InferenceCost) -> &mut Self {
        assert!(engine < self.engines, "engine index out of range");
        self.table[model as usize * self.engines + engine] = Some(cost);
        self
    }

    /// Sets a human-readable label for an engine.
    ///
    /// # Panics
    ///
    /// Panics if `engine` is out of range.
    pub fn set_label(&mut self, engine: usize, label: impl Into<String>) -> &mut Self {
        assert!(engine < self.engines, "engine index out of range");
        self.labels[engine] = label.into();
        self
    }

    /// The registered cost of `model` on `engine`, if any — the
    /// non-panicking probe validators use to check a table covers the
    /// models a workload dispatches.
    pub fn try_cost(&self, model: ModelId, engine: usize) -> Option<InferenceCost> {
        if engine >= self.engines {
            return None;
        }
        self.table[model as usize * self.engines + engine]
    }
}

impl CostProvider for TableProvider {
    fn num_engines(&self) -> usize {
        self.engines
    }

    fn engine_label(&self, engine: usize) -> String {
        self.labels[engine].clone()
    }

    /// # Panics
    ///
    /// Panics if no cost was registered for `(model, engine)` — a
    /// benchmark must know the cost of every model it dispatches.
    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
        // `try_cost` bound-checks before indexing: an out-of-range
        // engine must not alias another model's dense slot.
        self.try_cost(model, engine)
            .unwrap_or_else(|| panic!("no cost registered for {model} on engine {engine}"))
    }
}

/// A memoizing dense snapshot of any [`CostProvider`].
///
/// The simulator's event loop (and most schedulers) ask for the same
/// `(model, engine)` costs over and over — once per dispatch and once
/// per scheduling decision. `DenseCostCache` wraps an arbitrary
/// provider and caches each answer in a flat
/// `Vec<Cell<Option<InferenceCost>>>` indexed by
/// `model as usize * num_engines + engine`, so every repeat lookup is
/// an array index regardless of how expensive the underlying provider
/// is (analytical cost models re-evaluate whole layer stacks per
/// call).
///
/// Entries are filled lazily on first use, which preserves the
/// underlying provider's behavior for pairs that are never queried
/// (e.g. a [`TableProvider`] panics only for pairs that are actually
/// dispatched). The wrapped provider must be pure — returning
/// different costs for the same pair across calls already breaks the
/// simulator's determinism contract.
pub struct DenseCostCache<'a> {
    inner: &'a dyn CostProvider,
    engines: usize,
    cells: Vec<Cell<Option<InferenceCost>>>,
}

impl<'a> DenseCostCache<'a> {
    /// Wraps `inner`, caching lazily.
    pub fn new(inner: &'a dyn CostProvider) -> Self {
        let engines = inner.num_engines();
        Self {
            inner,
            engines,
            cells: vec![Cell::new(None); NUM_MODELS * engines],
        }
    }
}

impl std::fmt::Debug for DenseCostCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseCostCache")
            .field("label", &self.inner.label())
            .field("engines", &self.engines)
            .finish()
    }
}

impl CostProvider for DenseCostCache<'_> {
    fn num_engines(&self) -> usize {
        self.engines
    }

    fn label(&self) -> String {
        self.inner.label()
    }

    fn engine_label(&self, engine: usize) -> String {
        self.inner.engine_label(engine)
    }

    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
        if engine >= self.engines {
            // Out-of-range engines are forwarded so the wrapped
            // provider's own diagnostics (or tolerance) apply.
            return self.inner.cost(model, engine);
        }
        let cell = &self.cells[model as usize * self.engines + engine];
        match cell.get() {
            Some(cost) => cost,
            None => {
                let cost = self.inner.cost(model, engine);
                cell.set(Some(cost));
                cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_provider_same_cost_everywhere() {
        let p = UniformProvider::new(3, 0.002, 0.01);
        assert_eq!(p.num_engines(), 3);
        for e in 0..3 {
            let c = p.cost(ModelId::HandTracking, e);
            assert_eq!(c.latency_s, 0.002);
            assert_eq!(c.energy_j, 0.01);
        }
    }

    #[test]
    fn table_provider_round_trips() {
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::EyeSegmentation,
            1,
            InferenceCost {
                latency_s: 0.005,
                energy_j: 0.02,
            },
        );
        p.set_label(1, "OS@2048");
        assert_eq!(p.cost(ModelId::EyeSegmentation, 1).latency_s, 0.005);
        assert_eq!(p.engine_label(1), "OS@2048");
        assert_eq!(p.engine_label(0), "engine0");
    }

    #[test]
    #[should_panic(expected = "engine index out of range")]
    fn table_provider_set_label_out_of_range_panics_with_diagnostic() {
        // Regression: `set_label` used to index `labels` directly and
        // die with a raw slice-bounds panic instead of the same
        // "engine index out of range" assertion `set` raises.
        let mut p = TableProvider::new(2);
        p.set_label(2, "ghost");
    }

    #[test]
    #[should_panic(expected = "no cost registered")]
    fn table_provider_missing_entry_panics() {
        let p = TableProvider::new(1);
        let _ = p.cost(ModelId::HandTracking, 0);
    }

    #[test]
    #[should_panic(expected = "no cost registered")]
    fn table_provider_out_of_range_engine_panics() {
        // An out-of-range engine must not alias another model's dense
        // slot.
        let mut p = TableProvider::new(2);
        for m in ModelId::ALL {
            for e in 0..2 {
                p.set(
                    m,
                    e,
                    InferenceCost {
                        latency_s: 0.001,
                        energy_j: 0.0,
                    },
                );
            }
        }
        let _ = p.cost(ModelId::HandTracking, 2);
    }

    #[test]
    fn table_provider_from_fn_fills_every_pair() {
        let p = TableProvider::from_fn(3, |m, e| InferenceCost {
            latency_s: (m as usize + 1) as f64 * 1e-3,
            energy_j: e as f64,
        });
        for m in ModelId::ALL {
            for e in 0..3 {
                let c = p.cost(m, e);
                assert_eq!(c.latency_s, (m as usize + 1) as f64 * 1e-3);
                assert_eq!(c.energy_j, e as f64);
            }
        }
    }

    #[test]
    fn dense_cache_returns_inner_costs_and_memoizes() {
        use std::cell::Cell;

        struct Counting {
            calls: Cell<u64>,
        }
        impl CostProvider for Counting {
            fn num_engines(&self) -> usize {
                2
            }
            fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
                self.calls.set(self.calls.get() + 1);
                InferenceCost {
                    latency_s: (model as usize + 1) as f64 * 1e-3 + engine as f64,
                    energy_j: 0.5,
                }
            }
        }

        let inner = Counting {
            calls: Cell::new(0),
        };
        let cache = DenseCostCache::new(&inner);
        assert_eq!(cache.num_engines(), 2);
        for _ in 0..5 {
            for m in ModelId::ALL {
                for e in 0..2 {
                    assert_eq!(cache.cost(m, e), inner.cost(m, e));
                }
            }
        }
        // 5 rounds × direct comparison calls (110) + one fill per pair.
        assert_eq!(inner.calls.get(), 5 * 22 + 22);
    }

    #[test]
    fn dense_cache_forwards_labels() {
        let mut p = TableProvider::new(2);
        p.set_label(1, "OS@4096");
        let cache = DenseCostCache::new(&p);
        assert_eq!(cache.engine_label(1), "OS@4096");
        assert_eq!(cache.label(), p.label());
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn zero_engines_rejected() {
        let _ = UniformProvider::new(0, 0.001, 0.0);
    }
}
