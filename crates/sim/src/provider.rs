//! The interface between the runtime and the evaluated ML system.

use std::collections::HashMap;

use xrbench_models::ModelId;

/// The cost of running one inference of a model on one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceCost {
    /// End-to-end execution latency in seconds (excluding queuing).
    pub latency_s: f64,
    /// Energy consumed by the inference in joules.
    pub energy_j: f64,
}

/// The evaluated ML system: a set of compute engines
/// (sub-accelerators) with per-model execution costs.
///
/// Implementations may be analytical cost models, measurement tables,
/// or adapters to real hardware. Engines are identified by dense
/// indices `0..num_engines()`.
pub trait CostProvider {
    /// Number of independent compute engines.
    fn num_engines(&self) -> usize;

    /// A human-readable label for the whole system (used in reports).
    fn label(&self) -> String {
        "system".to_string()
    }

    /// A short human-readable engine label (e.g. `"WS@2048"`).
    fn engine_label(&self, engine: usize) -> String {
        format!("engine{engine}")
    }

    /// The cost of running `model` on `engine`.
    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost;
}

/// A provider where every model costs the same on every engine —
/// useful for tests and scheduler experiments.
#[derive(Debug, Clone)]
pub struct UniformProvider {
    engines: usize,
    cost: InferenceCost,
}

impl UniformProvider {
    /// Creates a provider with `engines` identical engines, each
    /// running any model in `latency_s` seconds for `energy_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0` or `latency_s <= 0`.
    pub fn new(engines: usize, latency_s: f64, energy_j: f64) -> Self {
        assert!(engines > 0, "need at least one engine");
        assert!(latency_s > 0.0, "latency must be positive");
        Self {
            engines,
            cost: InferenceCost {
                latency_s,
                energy_j,
            },
        }
    }
}

impl CostProvider for UniformProvider {
    fn num_engines(&self) -> usize {
        self.engines
    }

    fn cost(&self, _model: ModelId, _engine: usize) -> InferenceCost {
        self.cost
    }
}

/// A provider backed by an explicit `(model, engine) → cost` table.
#[derive(Debug, Clone, Default)]
pub struct TableProvider {
    engines: usize,
    labels: Vec<String>,
    table: HashMap<(ModelId, usize), InferenceCost>,
}

impl TableProvider {
    /// Creates an empty table over `engines` engines.
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0`.
    pub fn new(engines: usize) -> Self {
        assert!(engines > 0, "need at least one engine");
        Self {
            engines,
            labels: (0..engines).map(|i| format!("engine{i}")).collect(),
            table: HashMap::new(),
        }
    }

    /// Sets the cost of `model` on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `engine` is out of range.
    pub fn set(&mut self, model: ModelId, engine: usize, cost: InferenceCost) -> &mut Self {
        assert!(engine < self.engines, "engine index out of range");
        self.table.insert((model, engine), cost);
        self
    }

    /// Sets a human-readable label for an engine.
    pub fn set_label(&mut self, engine: usize, label: impl Into<String>) -> &mut Self {
        self.labels[engine] = label.into();
        self
    }
}

impl CostProvider for TableProvider {
    fn num_engines(&self) -> usize {
        self.engines
    }

    fn engine_label(&self, engine: usize) -> String {
        self.labels[engine].clone()
    }

    /// # Panics
    ///
    /// Panics if no cost was registered for `(model, engine)` — a
    /// benchmark must know the cost of every model it dispatches.
    fn cost(&self, model: ModelId, engine: usize) -> InferenceCost {
        *self
            .table
            .get(&(model, engine))
            .unwrap_or_else(|| panic!("no cost registered for {model} on engine {engine}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_provider_same_cost_everywhere() {
        let p = UniformProvider::new(3, 0.002, 0.01);
        assert_eq!(p.num_engines(), 3);
        for e in 0..3 {
            let c = p.cost(ModelId::HandTracking, e);
            assert_eq!(c.latency_s, 0.002);
            assert_eq!(c.energy_j, 0.01);
        }
    }

    #[test]
    fn table_provider_round_trips() {
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::EyeSegmentation,
            1,
            InferenceCost {
                latency_s: 0.005,
                energy_j: 0.02,
            },
        );
        p.set_label(1, "OS@2048");
        assert_eq!(p.cost(ModelId::EyeSegmentation, 1).latency_s, 0.005);
        assert_eq!(p.engine_label(1), "OS@2048");
        assert_eq!(p.engine_label(0), "engine0");
    }

    #[test]
    #[should_panic(expected = "no cost registered")]
    fn table_provider_missing_entry_panics() {
        let p = TableProvider::new(1);
        let _ = p.cost(ModelId::HandTracking, 0);
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn zero_engines_rejected() {
        let _ = UniformProvider::new(0, 0.001, 0.0);
    }
}
