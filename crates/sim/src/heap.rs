//! The PR 3 heap-driven event loop, retained verbatim as the second
//! doc-hidden reference implementation (next to [`crate::naive`]) for
//! differential testing of the production engine in [`crate::engine`].
//!
//! This replaced the original quadratic event loop with per-event
//! costs that are logarithmic or amortized constant:
//!
//! * **Event calendar** — completions live in a [`BinaryHeap`] keyed
//!   by `(t, user, model, sensor_frame, dispatch token)` under
//!   `f64::total_cmp`, so popping the next due event is `O(log n)`.
//!   Arrivals are already a time-sorted run and are consumed by a
//!   cursor (an event calendar in array form); engine-free events
//!   coincide with completions, which carry their engine and a
//!   dispatch token so an engine is freed exactly once.
//! * **Indexed pending queues** — `ready` and `waiting` hold at most
//!   one frame per `(user, model)` (the freshness drop policy
//!   guarantees it), so both are slot arrays over a dense
//!   `user_idx * NUM_MODELS + model` key. Freshness supersession is an
//!   `O(1)` slot probe instead of a linear scan.
//! * **Incremental [`PendingView`] buffer** — the scheduler's view of
//!   the ready queue is maintained across picks (push on arrival,
//!   binary-searched removal on dispatch/supersession) instead of
//!   being rebuilt from scratch for every pick.
//! * **Incremental free-engine set** — a sorted `Vec<usize>` updated
//!   on dispatch and completion instead of a full rescan per pick.
//! * **Reverse-dependency candidate pass** — instead of scanning every
//!   waiting dependent on every event, a completion pushes exactly the
//!   waiting entries it might unblock onto a per-timestamp candidate
//!   heap ordered by waiting-queue sequence number, which reproduces
//!   the reference loop's scan order bit-for-bit (including its
//!   behavior of deferring backward cascades to the next event time).
//! * **Resolved-entry retirement** — per-`(user, model)` watermarks
//!   track the smallest sensor frame each dependent can still look
//!   up; upstream resolutions below the watermark of every dependent
//!   are retired (or never stored), so the resolution table stays
//!   proportional to the in-flight window instead of the whole run.
//! * **Dense fast paths** — dependency lists, reverse-dependency
//!   lists, statistics, and watermarks are flat arrays over the dense
//!   key; provider costs go through a lazily-filled
//!   [`DenseCostCache`]; each cascade-trigger decision seeds its RNG
//!   exactly once per `(user, model, upstream, frame)` — the
//!   single-slot waiting queue plus strictly increasing frame ids
//!   guarantee no decision is ever re-evaluated.
//!
//! Output is **bit-identical** to the naive reference loop *and* to
//! the production calendar-queue engine; the differential property
//! tests in `tests/runtime_properties.rs` and the golden suite
//! fixtures enforce it.
//!
//! ## Fault injection (dynamic fleets)
//!
//! The loop optionally threads a [`FaultTimeline`] of engine events —
//! down (churn/preemption), up (recovery), and capacity changes
//! (thermal throttling) — applied between completions and arrivals.
//! A down engine leaves the free set and its in-flight dispatch is
//! *revoked*: the stale calendar completion is skipped via a revoked
//! token set, and the work is dropped, requeued, or migrated per
//! [`RecoveryPolicy`]. Because a faulted dispatch may never complete,
//! stats and records are emitted at *completion* time in faulted mode
//! (tracked in an `open` in-flight table) instead of at dispatch; the
//! fault-free path is untouched and stays bit-identical to the
//! reference loop.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use xrbench_models::ModelId;
use xrbench_workload::ScenarioSpec;

use crate::engine::{FaultCtx, RecordMode};
use crate::fault::{FaultAction, FaultKind, RecoveryPolicy};
use crate::provider::{CostProvider, DenseCostCache, NUM_MODELS};
use crate::result::{DropReason, ExecRecord, ModelStats, SimResult};
use crate::scheduler::{PendingView, Scheduler};
use crate::simulator::{trigger_draw, Pending, Resolution, SimConfig, EPS};

/// A completion event in the calendar.
///
/// `key` is the dense `(user, model)` key; `token` is the dispatch
/// sequence number, which both totalizes the ordering and lets the
/// engine-free side effect fire exactly once per dispatch.
#[derive(Debug, Clone, Copy)]
struct CompletionEv {
    t: f64,
    key: u32,
    sensor_frame: u64,
    engine: u32,
    token: u64,
}

impl PartialEq for CompletionEv {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for CompletionEv {}

impl PartialOrd for CompletionEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total deterministic order: time, then (user, model) via the
        // dense key, then sensor frame, then dispatch token.
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.key.cmp(&other.key))
            .then_with(|| self.sensor_frame.cmp(&other.sensor_frame))
            .then_with(|| self.token.cmp(&other.token))
    }
}

/// Min-heap adapter over [`BinaryHeap`]'s max-heap.
type Calendar = BinaryHeap<std::cmp::Reverse<CompletionEv>>;

/// One dependent frame parked until its upstream resolves.
#[derive(Debug, Clone, Copy)]
struct WaitEntry {
    /// Global insertion sequence number (shared with the ready queue),
    /// reproducing the reference loop's queue order.
    seq: u64,
    frame_id: u64,
    sensor_frame: u64,
    t_req: f64,
    t_deadline: f64,
}

/// The dispatchable-request queue: slot-indexed by dense key for O(1)
/// supersession, with the scheduler-facing [`PendingView`] buffer (and
/// its parallel metadata) maintained incrementally in insertion order.
struct ReadyQueue {
    views: Vec<PendingView>,
    /// Per-entry metadata parallel to `views`. `seq` is strictly
    /// increasing across entries (position lookup by binary search).
    ///
    /// Removal from the middle is a binary search plus a contiguous
    /// memmove of the two POD buffers — bounded by the same O(ready)
    /// the scheduler's own `select` scan already pays per pick, so it
    /// never dominates the dispatch path.
    meta: Vec<ReadyMeta>,
    /// Dense key → seq of the key's (unique) queued entry.
    slot: Vec<Option<u64>>,
}

#[derive(Debug, Clone, Copy)]
struct ReadyMeta {
    seq: u64,
    key: u32,
    sensor_frame: u64,
    /// Remaining-work fraction: 1.0 for fresh frames, smaller for
    /// checkpointed work migrating off a lost engine.
    frac: f64,
}

impl ReadyQueue {
    fn new(num_keys: usize) -> Self {
        Self {
            views: Vec::new(),
            meta: Vec::new(),
            slot: vec![None; num_keys],
        }
    }

    fn len(&self) -> usize {
        self.views.len()
    }

    fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    fn key_at(&self, pos: usize) -> usize {
        self.meta[pos].key as usize
    }

    /// Removes the entry at buffer position `pos`, clearing its slot.
    fn remove_pos(&mut self, pos: usize) -> (PendingView, u64, f64) {
        let view = self.views.remove(pos);
        let meta = self.meta.remove(pos);
        self.slot[meta.key as usize] = None;
        (view, meta.sensor_frame, meta.frac)
    }

    /// Pushes a new entry for `key`, dropping (freshness policy) the
    /// key's older queued frame if one exists.
    fn supersede_push(
        &mut self,
        key: usize,
        view: PendingView,
        sensor_frame: u64,
        seq: u64,
        stats: &mut [ModelStats],
    ) {
        if let Some(old_seq) = self.slot[key] {
            let pos = self
                .meta
                .binary_search_by_key(&old_seq, |m| m.seq)
                .expect("slot seq is queued");
            assert!(
                self.views[pos].frame_id < view.frame_id,
                "ready queue requires strictly increasing frame ids per (user, model)"
            );
            stats[key].record_drop(DropReason::Superseded);
            self.remove_pos(pos);
        }
        self.slot[key] = Some(seq);
        self.views.push(view);
        self.meta.push(ReadyMeta {
            seq,
            key: key as u32,
            sensor_frame,
            frac: 1.0,
        });
    }

    /// Re-queues a revoked in-flight frame (requeue/migrate recovery)
    /// carrying its remaining-work fraction. The key's slot must be
    /// empty — if a newer frame is queued, freshness drops the revoked
    /// one instead of calling this.
    fn requeue_push(
        &mut self,
        key: usize,
        view: PendingView,
        sensor_frame: u64,
        seq: u64,
        frac: f64,
    ) {
        assert!(self.slot[key].is_none(), "requeue into an occupied slot");
        self.slot[key] = Some(seq);
        self.views.push(view);
        self.meta.push(ReadyMeta {
            seq,
            key: key as u32,
            sensor_frame,
            frac,
        });
    }
}

/// Raw user id → dense user index. Dense ids (the common case: session
/// builders assign 0..n) get a direct lookup table; sparse ids fall
/// back to binary search.
enum UserIndex {
    /// `table[id] == idx + 1`, 0 marks an unknown id.
    Dense(Vec<u32>),
    /// Sorted `(id, idx)` pairs.
    Sparse(Vec<(u32, u32)>),
}

impl UserIndex {
    fn build(users: &[u32]) -> Self {
        let max = users.iter().copied().max().unwrap_or(0) as usize;
        if max < users.len() * 4 + 64 {
            let mut table = vec![0u32; max + 1];
            for (idx, &u) in users.iter().enumerate() {
                assert!(table[u as usize] == 0, "duplicate session user id {u}");
                table[u as usize] = idx as u32 + 1;
            }
            UserIndex::Dense(table)
        } else {
            let mut pairs: Vec<(u32, u32)> = users
                .iter()
                .enumerate()
                .map(|(idx, &u)| (u, idx as u32))
                .collect();
            pairs.sort_unstable();
            assert!(
                pairs.windows(2).all(|w| w[0].0 != w[1].0),
                "duplicate session user ids"
            );
            UserIndex::Sparse(pairs)
        }
    }

    #[inline]
    fn get(&self, user: u32) -> usize {
        match self {
            UserIndex::Dense(table) => {
                let v = table.get(user as usize).copied().unwrap_or(0);
                assert!(v != 0, "request for unknown user {user}");
                (v - 1) as usize
            }
            UserIndex::Sparse(pairs) => {
                let i = pairs
                    .binary_search_by_key(&user, |e| e.0)
                    .unwrap_or_else(|_| panic!("request for unknown user {user}"));
                pairs[i].1 as usize
            }
        }
    }
}

/// Inserts `engine` into the sorted free set (no-op if present).
fn free_insert(free: &mut Vec<usize>, engine: usize) {
    if let Err(pos) = free.binary_search(&engine) {
        free.insert(pos, engine);
    }
}

/// Removes `engine` from the sorted free set (no-op if absent).
fn free_remove(free: &mut Vec<usize>, engine: usize) {
    if let Ok(pos) = free.binary_search(&engine) {
        free.remove(pos);
    }
}

/// The smallest sensor frame any dependent of `key` may still look
/// up — resolutions of `key` below this watermark are unreachable.
fn retire_threshold(key: usize, nm: usize, downstream: &[Vec<ModelId>], floor: &[u64]) -> u64 {
    let user_base = key - key % nm;
    downstream[key]
        .iter()
        .map(|&d| floor[user_base + d as usize])
        .min()
        .unwrap_or(u64::MAX)
}

/// After `key`'s watermark advanced: retire upstream resolutions no
/// dependent can reference anymore. Each resolution is retired at most
/// once, so the cost amortizes to O(log n) per completion.
fn retire_upstreams(
    key: usize,
    nm: usize,
    deps: &[Vec<(ModelId, f64)>],
    downstream: &[Vec<ModelId>],
    floor: &[u64],
    resolved: &mut [BTreeMap<u64, Resolution>],
) {
    let user_base = key - key % nm;
    for &(up, _) in &deps[key] {
        let upkey = user_base + up as usize;
        let threshold = retire_threshold(upkey, nm, downstream, floor);
        let map = &mut resolved[upkey];
        while let Some((&sf, _)) = map.first_key_value() {
            if sf < threshold {
                map.remove(&sf);
            } else {
                break;
            }
        }
    }
}

/// Applies one due completion: records the resolution (unless already
/// unreachable), queues pass candidates for the waiting dependents it
/// may unblock, and frees its engine.
#[allow(clippy::too_many_arguments)]
fn process_completion(
    ev: CompletionEv,
    nm: usize,
    downstream: &[Vec<ModelId>],
    floor: &[u64],
    resolved: &mut [BTreeMap<u64, Resolution>],
    waiting: &[Option<WaitEntry>],
    pass: &mut BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    engine_token: &mut [Option<u64>],
    free: &mut Vec<usize>,
) {
    let key = ev.key as usize;
    if !downstream[key].is_empty() {
        if ev.sensor_frame >= retire_threshold(key, nm, downstream, floor) {
            resolved[key].insert(ev.sensor_frame, Resolution::Completed);
        }
        let user_base = key - key % nm;
        for &d in &downstream[key] {
            let dkey = user_base + d as usize;
            if let Some(w) = waiting[dkey] {
                if w.sensor_frame == ev.sensor_frame {
                    pass.push(std::cmp::Reverse((w.seq, dkey as u32)));
                }
            }
        }
    }
    let engine = ev.engine as usize;
    if engine_token[engine] == Some(ev.token) {
        engine_token[engine] = None;
        free_insert(free, engine);
    }
}

/// One dispatched inference that may still be revoked by a fault.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    key: u32,
    view: PendingView,
    sensor_frame: u64,
    t_start: f64,
    t_end: f64,
    /// Remaining-work fraction this dispatch carried.
    frac: f64,
    energy_j: f64,
}

/// Live fault-injection state for one run.
struct FaultState<'a> {
    events: &'a [crate::fault::FaultEvent],
    cursor: usize,
    policy: RecoveryPolicy,
    engine_up: Vec<bool>,
    /// Current capacity multiplier per engine, sampled at dispatch
    /// time (a throttle landing mid-flight does not stretch work
    /// already on the engine).
    capacity: Vec<f64>,
    /// In-flight dispatches by token, for revocation and for the
    /// deferred stats/record emission at completion.
    open: BTreeMap<u64, InFlight>,
    /// Tokens whose dispatch was revoked; their stale calendar
    /// completions are skipped.
    revoked: BTreeSet<u64>,
}

/// Emits the deferred stats and execution record for a completion that
/// survived to its scheduled end (faulted mode only; the fault-free
/// path emits at dispatch).
fn emit_completion(
    inf: &InFlight,
    ev: &CompletionEv,
    nm: usize,
    users_raw: &[u32],
    stats: &mut [ModelStats],
    records: &mut [Vec<ExecRecord>],
    mode: &mut RecordMode<'_>,
) {
    let key = ev.key as usize;
    stats[key].executed_frames += 1;
    if ev.t > inf.view.t_deadline {
        stats[key].missed_deadlines += 1;
    }
    let record = ExecRecord {
        model: inf.view.model,
        frame_id: inf.view.frame_id,
        sensor_frame: ev.sensor_frame,
        engine: ev.engine as usize,
        t_req: inf.view.t_req,
        t_deadline: inf.view.t_deadline,
        t_start: inf.t_start,
        t_end: ev.t,
        energy_j: inf.energy_j,
    };
    match mode {
        RecordMode::Collect => records[key / nm].push(record),
        RecordMode::Fold(sink) => sink(users_raw[key / nm], &record),
    }
}

/// The heap-engine event loop over user-tagged requests, with optional
/// fault injection (`requests` must be sorted by `t_req`, and strictly
/// frame-monotone per `(user, model)`). Returns one [`SimResult`] per
/// user, bit-identical to [`crate::naive::run_tagged_naive`] and to
/// the production engine. With
/// `faults: None` this *is* the fault-free loop — no fault state is
/// allocated and every fault branch is behind an `Option` check, so
/// the classic path stays bit-identical to the reference loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tagged_faulted(
    config: SimConfig,
    specs: &[(u32, &ScenarioSpec)],
    requests: Vec<Pending>,
    provider: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    duration_s: f64,
    mut mode: RecordMode<'_>,
    faults: Option<FaultCtx<'_>>,
) -> BTreeMap<u32, SimResult> {
    assert!(provider.num_engines() > 0, "provider must expose engines");

    let nm = NUM_MODELS;
    let users_raw: Vec<u32> = specs.iter().map(|&(u, _)| u).collect();
    let uidx = UserIndex::build(&users_raw);
    let num_users = users_raw.len();
    let num_keys = num_users * nm;

    // Dense per-(user, model) setup tables.
    let mut deps: Vec<Vec<(ModelId, f64)>> = vec![Vec::new(); num_keys];
    let mut downstream: Vec<Vec<ModelId>> = vec![Vec::new(); num_keys];
    // Keys that must appear in the output stats (spec members), plus
    // any key a request actually touched.
    let mut touched = vec![false; num_keys];
    for (ui, &(_, spec)) in specs.iter().enumerate() {
        for m in &spec.models {
            let key = ui * nm + m.model as usize;
            touched[key] = true;
            deps[key] = m
                .deps
                .iter()
                .map(|d| (d.upstream, d.trigger_probability))
                .collect();
            for d in &m.deps {
                downstream[ui * nm + d.upstream as usize].push(m.model);
            }
        }
    }

    // Runtime state.
    let cache = DenseCostCache::new(provider);
    let num_engines = provider.num_engines();
    let mut free: Vec<usize> = (0..num_engines).collect();
    let mut engine_token: Vec<Option<u64>> = vec![None; num_engines];
    let mut next_token = 0u64;
    let mut next_seq = 0u64;
    let mut calendar: Calendar = BinaryHeap::new();
    // Due-but-stashed events: calendar tops discovered at or before
    // `now + EPS` while looking for the next event time (possible only
    // for degenerate sub-epsilon latencies); the reference loop
    // processes them at the *next* event time, so we do too.
    let mut due: Vec<CompletionEv> = Vec::new();
    let mut ready = ReadyQueue::new(num_keys);
    let mut waiting: Vec<Option<WaitEntry>> = vec![None; num_keys];
    let mut pass: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut deferred: Vec<(u64, u32)> = Vec::new();
    let mut resolved: Vec<BTreeMap<u64, Resolution>> = vec![BTreeMap::new(); num_keys];
    let mut floor = vec![0u64; num_keys];
    let mut stats: Vec<ModelStats> = vec![ModelStats::default(); num_keys];
    let mut last_frame: Vec<Option<(u64, u64)>> = vec![None; num_keys];
    let mut records: Vec<Vec<ExecRecord>> = vec![Vec::new(); num_users];

    let mut fstate = faults.map(|f| FaultState {
        events: f.timeline.events(),
        cursor: 0,
        policy: f.policy,
        engine_up: vec![true; num_engines],
        capacity: vec![1.0; num_engines],
        open: BTreeMap::new(),
        revoked: BTreeSet::new(),
    });

    let mut arrivals = requests.into_iter().peekable();
    let mut now = 0.0_f64;

    loop {
        // 1. Process completions due now (stashed first, then the
        //    calendar, in identical order) and re-queue cascade
        //    candidates deferred from the previous pass.
        while let Some(&std::cmp::Reverse(top)) = calendar.peek() {
            if top.t > now + EPS {
                break;
            }
            calendar.pop();
            due.push(top);
        }
        for ev in due.drain(..) {
            if let Some(f) = fstate.as_mut() {
                if f.revoked.remove(&ev.token) {
                    // The dispatch was revoked by a fault; this is its
                    // stale completion.
                    continue;
                }
                if let Some(inf) = f.open.remove(&ev.token) {
                    emit_completion(
                        &inf,
                        &ev,
                        nm,
                        &users_raw,
                        &mut stats,
                        &mut records,
                        &mut mode,
                    );
                }
            }
            process_completion(
                ev,
                nm,
                &downstream,
                &floor,
                &mut resolved,
                &waiting,
                &mut pass,
                &mut engine_token,
                &mut free,
            );
        }
        for c in deferred.drain(..) {
            pass.push(std::cmp::Reverse(c));
        }

        // 1b. Apply fault events due now: engines leave/rejoin the
        //     free set, in-flight work on a lost engine is revoked and
        //     recovered per policy, and capacity multipliers update.
        if let Some(f) = fstate.as_mut() {
            while f.cursor < f.events.len() && f.events[f.cursor].t <= now + EPS {
                let fev = f.events[f.cursor];
                f.cursor += 1;
                let engine = fev.engine as usize;
                if engine >= num_engines {
                    continue;
                }
                match fev.action {
                    FaultAction::Down(kind) => {
                        if !f.engine_up[engine] {
                            continue;
                        }
                        f.engine_up[engine] = false;
                        free_remove(&mut free, engine);
                        scheduler.on_engine_down(engine, now);
                        let Some(token) = engine_token[engine].take() else {
                            continue;
                        };
                        f.revoked.insert(token);
                        let inf = f.open.remove(&token).expect("busy engine has open entry");
                        let key = inf.key as usize;
                        match f.policy {
                            RecoveryPolicy::Drop => {
                                let reason = match kind {
                                    FaultKind::Failure => DropReason::DeviceLost,
                                    FaultKind::Preemption => DropReason::Preempted,
                                };
                                stats[key].record_drop(reason);
                                if !downstream[key].is_empty() {
                                    // Dependents see the same Dropped
                                    // resolution an untriggered frame
                                    // would leave behind.
                                    if inf.sensor_frame
                                        >= retire_threshold(key, nm, &downstream, &floor)
                                    {
                                        resolved[key].insert(inf.sensor_frame, Resolution::Dropped);
                                    }
                                    let user_base = key - key % nm;
                                    for &d in &downstream[key] {
                                        let dkey = user_base + d as usize;
                                        if let Some(dw) = waiting[dkey] {
                                            if dw.sensor_frame == inf.sensor_frame {
                                                pass.push(std::cmp::Reverse((dw.seq, dkey as u32)));
                                            }
                                        }
                                    }
                                }
                            }
                            RecoveryPolicy::Requeue | RecoveryPolicy::Migrate => {
                                if ready.slot[key].is_some() {
                                    // A newer frame is already queued:
                                    // freshness drops the revoked one.
                                    stats[key].record_drop(DropReason::Superseded);
                                } else {
                                    // In-flight implies a super-epsilon
                                    // span, so the fraction is well
                                    // defined and positive.
                                    let frac = if f.policy == RecoveryPolicy::Migrate {
                                        ((inf.t_end - now) / (inf.t_end - inf.t_start))
                                            .clamp(0.0, 1.0)
                                            * inf.frac
                                    } else {
                                        1.0
                                    };
                                    let seq = next_seq;
                                    next_seq += 1;
                                    ready.requeue_push(key, inf.view, inf.sensor_frame, seq, frac);
                                }
                            }
                        }
                    }
                    FaultAction::Up => {
                        if f.engine_up[engine] {
                            continue;
                        }
                        f.engine_up[engine] = true;
                        free_insert(&mut free, engine);
                    }
                    FaultAction::Capacity(c) => {
                        f.capacity[engine] = c;
                    }
                }
            }
        }

        // 2. Ingest arrivals due now.
        while arrivals.peek().is_some_and(|p| p.req.t_req <= now + EPS) {
            let p = arrivals.next().expect("peeked");
            let ui = uidx.get(p.user);
            let key = ui * nm + p.req.model as usize;
            if let Some((lf, lsf)) = last_frame[key] {
                assert!(
                    p.req.frame_id > lf && p.req.sensor_frame > lsf,
                    "requests for {} (user {}) must have strictly increasing \
                     frame_id and sensor_frame",
                    p.req.model,
                    p.user
                );
            }
            last_frame[key] = Some((p.req.frame_id, p.req.sensor_frame));
            touched[key] = true;
            stats[key].total_frames += 1;
            if !deps[key].is_empty() {
                // Freshness: a newer dependent frame supersedes an
                // older one still waiting for its upstream.
                if waiting[key].is_some() {
                    stats[key].record_drop(DropReason::Superseded);
                }
                let seq = next_seq;
                next_seq += 1;
                waiting[key] = Some(WaitEntry {
                    seq,
                    frame_id: p.req.frame_id,
                    sensor_frame: p.req.sensor_frame,
                    t_req: p.req.t_req,
                    t_deadline: p.req.t_deadline,
                });
                // Lookups now target this frame and nothing older.
                if p.req.sensor_frame > floor[key] {
                    floor[key] = p.req.sensor_frame;
                    retire_upstreams(key, nm, &deps, &downstream, &floor, &mut resolved);
                }
                pass.push(std::cmp::Reverse((seq, key as u32)));
            } else {
                let seq = next_seq;
                next_seq += 1;
                let view = PendingView {
                    user: p.user,
                    model: p.req.model,
                    frame_id: p.req.frame_id,
                    t_req: p.req.t_req,
                    t_deadline: p.req.t_deadline,
                };
                ready.supersede_push(key, view, p.req.sensor_frame, seq, &mut stats);
            }
        }

        // 3. Resolve waiting dependents whose upstream is decided —
        //    candidates only, in waiting-queue (seq) order, exactly
        //    mirroring the reference loop's linear scan.
        while let Some(std::cmp::Reverse((seq, key32))) = pass.pop() {
            let key = key32 as usize;
            let Some(w) = waiting[key] else { continue };
            if w.seq != seq {
                continue; // superseded since candidacy
            }
            let user_base = key - key % nm;
            // Are all upstream resolutions decided?
            let mut any_dropped = Some(false);
            for &(up, _) in &deps[key] {
                match resolved[user_base + up as usize].get(&w.sensor_frame) {
                    None => {
                        any_dropped = None;
                        break;
                    }
                    Some(Resolution::Dropped) => any_dropped = any_dropped.map(|_| true),
                    Some(Resolution::Completed) => {}
                }
            }
            let Some(any_dropped) = any_dropped else {
                continue; // upstream still in flight; stays waiting
            };
            waiting[key] = None;
            floor[key] = w.sensor_frame + 1;
            retire_upstreams(key, nm, &deps, &downstream, &floor, &mut resolved);
            let model = ModelId::ALL[key % nm];
            let user = users_raw[key / nm];
            if any_dropped {
                stats[key].record_drop(DropReason::UpstreamDropped);
            } else if deps[key].iter().all(|&(up, prob)| {
                // Exactly one seeded draw per (user, model, upstream,
                // frame) decision: the waiting slot holds one frame
                // per key and is cleared before this branch runs, and
                // frame ids are strictly increasing, so no decision
                // can ever be re-evaluated — no memo table needed.
                trigger_draw(config.seed, user, model, up, w.frame_id, prob)
            }) {
                let seq = next_seq;
                next_seq += 1;
                ready.supersede_push(
                    key,
                    PendingView {
                        user,
                        model,
                        frame_id: w.frame_id,
                        t_req: w.t_req,
                        t_deadline: w.t_deadline,
                    },
                    w.sensor_frame,
                    seq,
                    &mut stats,
                );
            } else {
                // Legitimately deactivated: not streamed work for QoE
                // purposes.
                stats[key].untriggered_frames += 1;
                stats[key].total_frames -= 1;
                if !downstream[key].is_empty() {
                    if w.sensor_frame >= retire_threshold(key, nm, &downstream, &floor) {
                        resolved[key].insert(w.sensor_frame, Resolution::Dropped);
                    }
                    // Cascade: this may unblock further dependents.
                    // Forward (later-queued) ones join this pass, as
                    // the reference scan would reach them; backward
                    // ones wait for the next event time, as the
                    // reference scan already passed them.
                    for &d in &downstream[key] {
                        let dkey = user_base + d as usize;
                        if let Some(dw) = waiting[dkey] {
                            if dw.sensor_frame == w.sensor_frame {
                                if dw.seq > seq {
                                    pass.push(std::cmp::Reverse((dw.seq, dkey as u32)));
                                } else {
                                    deferred.push((dw.seq, dkey as u32));
                                }
                            }
                        }
                    }
                }
            }
        }

        // 4. Dispatch ready requests onto free engines.
        while !free.is_empty() && !ready.is_empty() {
            let Some((ri, engine)) = scheduler.select(&ready.views, &free, &cache, now) else {
                break;
            };
            assert!(ri < ready.len(), "scheduler returned bad request index");
            assert!(
                free.binary_search(&engine).is_ok(),
                "scheduler returned busy engine {engine}"
            );
            let key = ready.key_at(ri);
            let (view, sensor_frame, frac) = ready.remove_pos(ri);
            let cost = cache.cost(view.model, engine);
            let t_end;
            if let Some(f) = fstate.as_ref() {
                // Faulted dispatches pay only the remaining-work
                // fraction, stretched by the engine's current thermal
                // capacity; stats and records wait for completion
                // because the dispatch may yet be revoked.
                t_end = now + cost.latency_s * frac / f.capacity[engine];
            } else {
                t_end = now + cost.latency_s;
                stats[key].executed_frames += 1;
                if t_end > view.t_deadline {
                    stats[key].missed_deadlines += 1;
                }
                let record = ExecRecord {
                    model: view.model,
                    frame_id: view.frame_id,
                    sensor_frame,
                    engine,
                    t_req: view.t_req,
                    t_deadline: view.t_deadline,
                    t_start: now,
                    t_end,
                    energy_j: cost.energy_j,
                };
                match &mut mode {
                    RecordMode::Collect => records[key / nm].push(record),
                    RecordMode::Fold(sink) => sink(users_raw[key / nm], &record),
                }
            }
            let token = next_token;
            next_token += 1;
            if let Some(f) = fstate.as_mut() {
                f.open.insert(
                    token,
                    InFlight {
                        key: key as u32,
                        view,
                        sensor_frame,
                        t_start: now,
                        t_end,
                        frac,
                        energy_j: cost.energy_j * frac,
                    },
                );
            }
            if t_end > now + EPS {
                engine_token[engine] = Some(token);
                free_remove(&mut free, engine);
            }
            // Degenerate sub-epsilon latencies leave the engine free,
            // matching the reference loop's fresh free-set rescan; the
            // stale token then never matches at completion time.
            calendar.push(std::cmp::Reverse(CompletionEv {
                t: t_end,
                key: key as u32,
                sensor_frame,
                engine: engine as u32,
                token,
            }));
        }

        // 5. Advance to the next event strictly after `now`.
        let mut next = f64::INFINITY;
        if let Some(p) = arrivals.peek() {
            next = next.min(p.req.t_req);
        }
        while let Some(&std::cmp::Reverse(top)) = calendar.peek() {
            if top.t <= now + EPS {
                calendar.pop();
                due.push(top);
            } else {
                next = next.min(top.t);
                break;
            }
        }
        if let Some(f) = &fstate {
            // Fault events only matter while some work can still use
            // the engines they toggle: with nothing queued, in flight,
            // or arriving, the remaining toggles are no-ops (waiting
            // frames can never resolve without completions).
            let work_pending = arrivals.peek().is_some()
                || !calendar.is_empty()
                || !due.is_empty()
                || !ready.is_empty();
            if work_pending {
                if let Some(fev) = f.events.get(f.cursor) {
                    next = next.min(fev.t);
                }
            }
        }
        if next.is_infinite() {
            break;
        }
        now = next;
    }

    // Completions stashed as due when the loop ended (possible only
    // with sub-epsilon latencies) did execute; surface their deferred
    // records in faulted mode (the clean path emitted at dispatch).
    if let Some(f) = fstate.as_mut() {
        for ev in due.drain(..) {
            if f.revoked.remove(&ev.token) {
                continue;
            }
            if let Some(inf) = f.open.remove(&ev.token) {
                emit_completion(
                    &inf,
                    &ev,
                    nm,
                    &users_raw,
                    &mut stats,
                    &mut records,
                    &mut mode,
                );
            }
        }
    }

    // Anything still queued at drain time never got to run within the
    // run's horizon; count as dropped.
    for (key, slot) in waiting.iter().enumerate() {
        if slot.is_some() {
            stats[key].record_drop(DropReason::Starved);
        }
    }
    for m in &ready.meta {
        stats[m.key as usize].record_drop(DropReason::Starved);
    }

    // Assemble one SimResult per user.
    let mut out = BTreeMap::new();
    for (ui, &(user, _)) in specs.iter().enumerate() {
        let mut recs = std::mem::take(&mut records[ui]);
        recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        let mut user_stats: BTreeMap<ModelId, ModelStats> = BTreeMap::new();
        for (mi, &m) in ModelId::ALL.iter().enumerate() {
            let key = ui * nm + mi;
            if touched[key] {
                user_stats.insert(m, stats[key].clone());
            }
        }
        out.insert(
            user,
            SimResult {
                records: recs,
                stats: user_stats,
                num_engines,
                duration_s,
            },
        );
    }
    out
}
