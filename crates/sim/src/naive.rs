//! The pre-heap reference event loop, kept verbatim for differential
//! testing and the `perf_gate` before/after measurement.
//!
//! This is the simulator's original `run_tagged` implementation: it
//! re-sorts the completion list on every iteration, linearly scans the
//! whole waiting set per event, rebuilds the scheduler's
//! [`PendingView`] slice per pick, and never retires resolved
//! entries — super-linear in the number of events. The production
//! engine (`crate::engine`) must produce **bit-identical** results;
//! `tests/runtime_properties.rs` proves it on randomized sessions and
//! `crates/bench/src/bin/perf_gate.rs` measures the speedup.
//!
//! The module is `#[doc(hidden)]` rather than `#[cfg(test)]` because
//! the differential property tests and the perf gate live outside this
//! crate; it is not part of the supported API.

use std::collections::BTreeMap;

use xrbench_models::ModelId;
use xrbench_workload::ScenarioSpec;

use crate::provider::CostProvider;
use crate::result::{DropReason, ExecRecord, ModelStats, SimResult};
use crate::scheduler::{PendingView, Scheduler};
use crate::simulator::{trigger_all, Pending, Resolution, SimConfig, EPS};

/// The original O(n²) event loop over user-tagged requests (`requests`
/// must be sorted by `t_req`). Returns one [`SimResult`] per user.
pub(crate) fn run_tagged_naive(
    config: SimConfig,
    specs: &[(u32, &ScenarioSpec)],
    requests: Vec<Pending>,
    provider: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    duration_s: f64,
) -> BTreeMap<u32, SimResult> {
    assert!(provider.num_engines() > 0, "provider must expose engines");

    type Key = (u32, ModelId);
    let deps: BTreeMap<Key, Vec<(ModelId, f64)>> = specs
        .iter()
        .flat_map(|&(user, spec)| {
            spec.models.iter().map(move |m| {
                (
                    (user, m.model),
                    m.deps
                        .iter()
                        .map(|d| (d.upstream, d.trigger_probability))
                        .collect(),
                )
            })
        })
        .collect();

    let mut stats: BTreeMap<Key, ModelStats> = specs
        .iter()
        .flat_map(|&(user, spec)| {
            spec.models
                .iter()
                .map(move |m| ((user, m.model), ModelStats::default()))
        })
        .collect();

    // Runtime data structures.
    let num_engines = provider.num_engines();
    let mut engine_free_at = vec![0.0_f64; num_engines];
    let mut ready: Vec<Pending> = Vec::new();
    // (user, upstream model, sensor frame) -> resolution.
    let mut resolved: BTreeMap<(u32, ModelId, u64), Resolution> = BTreeMap::new();
    // Dependents that arrived before their upstream resolved.
    let mut waiting: Vec<Pending> = Vec::new();
    // Completion events: (t_end, user, model, sensor_frame).
    let mut completions: Vec<(f64, u32, ModelId, u64)> = Vec::new();
    let mut records: BTreeMap<u32, Vec<ExecRecord>> =
        specs.iter().map(|&(user, _)| (user, Vec::new())).collect();

    let mut arrivals = requests.into_iter().peekable();
    let mut now = 0.0_f64;

    loop {
        // 1. Process completions due now (resolve dependents).
        completions.sort_by(|a, b| a.0.total_cmp(&b.0));
        while let Some(&(t, user, model, sf)) = completions.first() {
            if t > now + EPS {
                break;
            }
            completions.remove(0);
            resolved.insert((user, model, sf), Resolution::Completed);
        }

        // 2. Ingest arrivals due now.
        while arrivals.peek().is_some_and(|p| p.req.t_req <= now + EPS) {
            let p = arrivals.next().expect("peeked");
            let key = (p.user, p.req.model);
            stats.entry(key).or_default().total_frames += 1;
            if deps.get(&key).is_some_and(|d| !d.is_empty()) {
                // Freshness: a newer dependent frame supersedes an
                // older one still waiting for its upstream.
                drop_older(&mut waiting, &p, &mut stats);
                waiting.push(p);
            } else {
                drop_older(&mut ready, &p, &mut stats);
                ready.push(p);
            }
        }

        // 3. Resolve waiting dependents whose upstream is decided.
        let mut i = 0;
        while i < waiting.len() {
            let user = waiting[i].user;
            let model = waiting[i].req.model;
            let sf = waiting[i].req.sensor_frame;
            let dep_list = &deps[&(user, model)];
            let all = dep_list
                .iter()
                .map(|(up, _)| resolved.get(&(user, *up, sf)).copied())
                .collect::<Option<Vec<_>>>();
            match all {
                None => {
                    i += 1; // upstream still in flight
                }
                Some(res) => {
                    let p = waiting.remove(i);
                    if res.contains(&Resolution::Dropped) {
                        let st = stats.entry((user, model)).or_default();
                        st.record_drop(DropReason::UpstreamDropped);
                    } else if trigger_all(config.seed, user, &p.req, dep_list) {
                        drop_older(&mut ready, &p, &mut stats);
                        ready.push(p);
                    } else {
                        // Legitimately deactivated: not streamed
                        // work for QoE purposes.
                        let st = stats.entry((user, model)).or_default();
                        st.untriggered_frames += 1;
                        st.total_frames -= 1;
                        resolved.insert((user, model, sf), Resolution::Dropped);
                    }
                }
            }
        }

        // 4. Dispatch ready requests onto free engines.
        loop {
            let free: Vec<usize> = (0..num_engines)
                .filter(|&e| engine_free_at[e] <= now + EPS)
                .collect();
            if free.is_empty() || ready.is_empty() {
                break;
            }
            let views: Vec<PendingView> = ready
                .iter()
                .map(|p| PendingView {
                    user: p.user,
                    model: p.req.model,
                    frame_id: p.req.frame_id,
                    t_req: p.req.t_req,
                    t_deadline: p.req.t_deadline,
                })
                .collect();
            let Some((ri, engine)) = scheduler.select(&views, &free, provider, now) else {
                break;
            };
            assert!(ri < ready.len(), "scheduler returned bad request index");
            assert!(
                free.contains(&engine),
                "scheduler returned busy engine {engine}"
            );
            let p = ready.remove(ri);
            let cost = provider.cost(p.req.model, engine);
            let t_start = now;
            let t_end = t_start + cost.latency_s;
            engine_free_at[engine] = t_end;
            completions.push((t_end, p.user, p.req.model, p.req.sensor_frame));
            let st = stats.entry((p.user, p.req.model)).or_default();
            st.executed_frames += 1;
            if t_end > p.req.t_deadline {
                st.missed_deadlines += 1;
            }
            records.entry(p.user).or_default().push(ExecRecord {
                model: p.req.model,
                frame_id: p.req.frame_id,
                sensor_frame: p.req.sensor_frame,
                engine,
                t_req: p.req.t_req,
                t_deadline: p.req.t_deadline,
                t_start,
                t_end,
                energy_j: cost.energy_j,
            });
        }

        // 5. Advance to the next event.
        let mut next = f64::INFINITY;
        if let Some(p) = arrivals.peek() {
            next = next.min(p.req.t_req);
        }
        for &(t, _, _, _) in &completions {
            if t > now + EPS {
                next = next.min(t);
            }
        }
        if next.is_infinite() {
            break;
        }
        now = next;
    }

    // Anything still waiting at drain time had an upstream that
    // never resolved within the run; count as dropped.
    for p in waiting {
        stats
            .entry((p.user, p.req.model))
            .or_default()
            .record_drop(DropReason::Starved);
    }
    for p in ready {
        stats
            .entry((p.user, p.req.model))
            .or_default()
            .record_drop(DropReason::Starved);
    }

    // Assemble one SimResult per user.
    let mut out = BTreeMap::new();
    for &(user, _) in specs {
        let mut recs = records.remove(&user).unwrap_or_default();
        recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        let user_stats: BTreeMap<ModelId, ModelStats> = stats
            .iter()
            .filter(|((u, _), _)| *u == user)
            .map(|((_, m), st)| (*m, st.clone()))
            .collect();
        out.insert(
            user,
            SimResult {
                records: recs,
                stats: user_stats,
                num_engines,
                duration_s,
            },
        );
    }
    out
}

/// Drops any not-yet-started older frame of the same (user, model)
/// (freshness policy), updating drop stats.
fn drop_older(
    queue: &mut Vec<Pending>,
    newer: &Pending,
    stats: &mut BTreeMap<(u32, ModelId), ModelStats>,
) {
    queue.retain(|p| {
        let stale = p.user == newer.user
            && p.req.model == newer.req.model
            && p.req.frame_id < newer.req.frame_id;
        if stale {
            let st = stats.entry((p.user, p.req.model)).or_default();
            st.record_drop(DropReason::Superseded);
        }
        !stale
    });
}
