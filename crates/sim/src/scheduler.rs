//! Pluggable inference dispatchers/schedulers.

use xrbench_models::ModelId;

use crate::provider::CostProvider;

/// A read-only view of one dispatchable (ready) request, handed to
/// schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingView {
    /// The model to run.
    pub model: ModelId,
    /// Model-local frame index.
    pub frame_id: u64,
    /// When the input data arrived.
    pub t_req: f64,
    /// The processing deadline.
    pub t_deadline: f64,
}

/// An inference dispatcher: repeatedly asked to pick one
/// `(ready-request, free-engine)` pair until it returns `None` or
/// resources run out.
///
/// Implementations must be deterministic for reproducible runs.
/// Returning an index out of range is a programming error and makes
/// the simulator panic.
pub trait Scheduler {
    /// Picks the next dispatch as `(index into ready, engine id)`,
    /// or `None` to leave the remaining engines idle until the next
    /// event.
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        now: f64,
    ) -> Option<(usize, usize)>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's default for cost-model/simulator runs: dispatch the
/// most urgent ready request (earliest deadline) to the idle engine
/// with the minimal expected latency for that model.
#[derive(Debug, Clone, Default)]
pub struct LatencyGreedy {
    _private: (),
}

impl LatencyGreedy {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LatencyGreedy {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Most urgent request first (earliest deadline, ties by
        // arrival then model id for determinism).
        let (ri, req) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.t_deadline
                    .total_cmp(&b.t_deadline)
                    .then(a.t_req.total_cmp(&b.t_req))
                    .then(a.model.cmp(&b.model))
            })
            .expect("ready is non-empty");
        // Idle engine with minimal expected latency for this model.
        let engine = free_engines
            .iter()
            .copied()
            .min_by(|&a, &b| {
                provider
                    .cost(req.model, a)
                    .latency_s
                    .total_cmp(&provider.cost(req.model, b).latency_s)
                    .then(a.cmp(&b))
            })
            .expect("free_engines is non-empty");
        Some((ri, engine))
    }

    fn name(&self) -> &'static str {
        "latency-greedy"
    }
}

/// The paper's round-robin style scheduler for real systems: requests
/// are served in arrival order and engines are used in rotation.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next_engine: usize,
}

impl RoundRobin {
    /// Creates the scheduler starting at engine 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        _provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Oldest request first.
        let (ri, _) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.t_req.total_cmp(&b.t_req).then(a.model.cmp(&b.model)))
            .expect("ready is non-empty");
        // Next engine in rotation among the free ones.
        let engine = free_engines
            .iter()
            .copied()
            .find(|&e| e >= self.next_engine)
            .unwrap_or(free_engines[0]);
        self.next_engine = (engine + 1) % usize::max(1, engine + 1).max(free_engines.len());
        Some((ri, engine))
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{InferenceCost, TableProvider, UniformProvider};

    fn view(model: ModelId, deadline: f64) -> PendingView {
        PendingView {
            model,
            frame_id: 0,
            t_req: 0.0,
            t_deadline: deadline,
        }
    }

    #[test]
    fn greedy_picks_earliest_deadline() {
        let p = UniformProvider::new(2, 0.001, 0.0);
        let ready = vec![
            view(ModelId::HandTracking, 0.05),
            view(ModelId::EyeSegmentation, 0.01),
        ];
        let mut s = LatencyGreedy::new();
        let (ri, _) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(ri, 1);
    }

    #[test]
    fn greedy_picks_fastest_engine() {
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::HandTracking,
            0,
            InferenceCost {
                latency_s: 0.010,
                energy_j: 0.0,
            },
        );
        p.set(
            ModelId::HandTracking,
            1,
            InferenceCost {
                latency_s: 0.002,
                energy_j: 0.0,
            },
        );
        let ready = vec![view(ModelId::HandTracking, 0.05)];
        let mut s = LatencyGreedy::new();
        let (_, engine) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(engine, 1);
    }

    #[test]
    fn greedy_returns_none_when_starved() {
        let p = UniformProvider::new(1, 0.001, 0.0);
        let mut s = LatencyGreedy::new();
        assert!(s.select(&[], &[0], &p, 0.0).is_none());
        assert!(s
            .select(&[view(ModelId::HandTracking, 1.0)], &[], &p, 0.0)
            .is_none());
    }

    #[test]
    fn round_robin_rotates_engines() {
        let p = UniformProvider::new(3, 0.001, 0.0);
        let mut s = RoundRobin::new();
        let ready = vec![view(ModelId::HandTracking, 1.0)];
        let (_, e0) = s.select(&ready, &[0, 1, 2], &p, 0.0).unwrap();
        let (_, e1) = s.select(&ready, &[0, 1, 2], &p, 0.0).unwrap();
        assert_ne!(e0, e1);
    }

    #[test]
    fn schedulers_have_names() {
        assert_eq!(LatencyGreedy::new().name(), "latency-greedy");
        assert_eq!(RoundRobin::new().name(), "round-robin");
    }
}
