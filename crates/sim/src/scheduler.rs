//! Pluggable inference dispatchers/schedulers.

use xrbench_models::ModelId;

use crate::provider::CostProvider;

/// A read-only view of one dispatchable (ready) request, handed to
/// schedulers.
///
/// The simulator maintains the view slice incrementally across picks
/// (in ready-queue insertion order) rather than rebuilding it, and the
/// free-engine slice is a sorted, incrementally-maintained set —
/// implementations may rely on both orderings being stable and
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingView {
    /// The originating user (0 for single-scenario runs; session runs
    /// tag each user so schedulers can balance across tenants).
    pub user: u32,
    /// The model to run.
    pub model: ModelId,
    /// Model-local frame index.
    pub frame_id: u64,
    /// When the input data arrived.
    pub t_req: f64,
    /// The processing deadline.
    pub t_deadline: f64,
}

/// A closed-form description of a scheduler's `select` behavior, used
/// by the engine's fast dispatch path (see
/// [`Scheduler::dispatch_kernel`]).
///
/// Each variant names a *request order* (how the next ready request is
/// chosen) and an *engine rule* (how the engine for it is chosen),
/// plus any evolving state the rule carries. The request orders are
/// the two deterministic total orders every shipped scheduler uses:
///
/// * **EDF** — `(t_deadline, t_req, model, user)` under
///   `f64::total_cmp`;
/// * **FIFO** — `(t_req, model, user)` under `f64::total_cmp`.
///
/// Because the ready queue holds at most one entry per
/// `(user, model)`, both orders are strict total orders and the
/// minimum is unique — which is what lets the engine replace the
/// per-pick linear scan with an indexed argmin and still reproduce
/// `select`'s picks bit-for-bit.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchKernel {
    /// EDF request order; engine = minimal `(latency, engine id)`
    /// among the free engines ([`LatencyGreedy`]).
    EdfFastestEngine,
    /// FIFO request order; engine = first free engine at or above the
    /// rotation cursor, else the lowest free engine; the cursor then
    /// advances to `(engine + 1) % max(1, engine + 1).max(free count)`
    /// ([`RoundRobin`]).
    FifoRotatingEngine {
        /// The rotation cursor (next engine id to try).
        next_engine: usize,
    },
    /// FIFO request order; engine = minimal `(accumulated load,
    /// engine id)` among the free engines, where each dispatch adds
    /// its expected latency to the chosen engine's load
    /// ([`LeastLoaded`]).
    FifoLeastLoadedEngine {
        /// Accumulated dispatched latency per engine id (entries
        /// beyond the vector's length read as `0.0`).
        loads: Vec<f64>,
    },
    /// EDF request order; engine = minimal `(observed outages,
    /// latency, engine id)` among the free engines
    /// ([`FailoverAware`]). Outage counts only change via
    /// [`Scheduler::on_engine_down`], so on the fault-free path the
    /// rule is static for the whole run.
    EdfFewestOutagesEngine {
        /// Outages observed per engine id (entries beyond the
        /// vector's length read as `0`).
        outages: Vec<u64>,
    },
}

/// An inference dispatcher: repeatedly asked to pick one
/// `(ready-request, free-engine)` pair until it returns `None` or
/// resources run out.
///
/// Implementations must be deterministic for reproducible runs (the
/// conformance harness in `tests/scheduler_conformance.rs` checks
/// this for every shipped scheduler). Returning an index out of range
/// is a programming error and makes the simulator panic.
pub trait Scheduler {
    /// Picks the next dispatch as `(index into ready, engine id)`,
    /// or `None` to leave the remaining engines idle until the next
    /// event.
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        now: f64,
    ) -> Option<(usize, usize)>;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Notifies the scheduler that `engine` just went offline (device
    /// churn or preemption). Stateless schedulers can ignore this; the
    /// default does nothing. Called by the engine loop before the
    /// revoked work is re-resolved, so a failover-aware policy can bias
    /// future placements away from flaky engines.
    fn on_engine_down(&mut self, _engine: usize, _now: f64) {}

    /// Declares a closed-form [`DispatchKernel`] equivalent to this
    /// scheduler's `select`, or `None` (the default) for opaque
    /// policies.
    ///
    /// Returning `Some` is a **promise**: on fault-free runs the
    /// engine may skip `select` entirely and drive dispatch through an
    /// indexed kernel that reproduces the declared policy's picks
    /// exactly. Any carried state (rotation cursor, load accumulators,
    /// outage counts) is snapshotted here at run start and handed back
    /// through [`Scheduler::absorb_kernel`] at run end, so back-to-back
    /// runs on one scheduler instance behave as if `select` had been
    /// called throughout. Two caveats: a kernel-driven run may query
    /// provider costs for *any* `(ready model, engine)` pair while a
    /// `select`-driven run only queries the pairs it inspects (only
    /// observable with panicking partial [`CostProvider`]s), and
    /// faulted runs always use `select` (kernels cannot observe
    /// mid-run outages).
    fn dispatch_kernel(&self) -> Option<DispatchKernel> {
        None
    }

    /// Hands back the kernel state as evolved by a kernel-driven run
    /// (see [`Scheduler::dispatch_kernel`]). The default discards it,
    /// which is correct for stateless policies.
    fn absorb_kernel(&mut self, _kernel: DispatchKernel) {}
}

/// The paper's default for cost-model/simulator runs: dispatch the
/// most urgent ready request (earliest deadline) to the idle engine
/// with the minimal expected latency for that model.
#[derive(Debug, Clone, Default)]
pub struct LatencyGreedy {
    _private: (),
}

impl LatencyGreedy {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LatencyGreedy {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Most urgent request first, on the fastest idle engine.
        let (ri, req) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| edf_order(a, b))
            .expect("ready is non-empty");
        Some((ri, fastest_engine(req.model, free_engines, provider)))
    }

    fn name(&self) -> &'static str {
        "latency-greedy"
    }

    fn dispatch_kernel(&self) -> Option<DispatchKernel> {
        Some(DispatchKernel::EdfFastestEngine)
    }
}

/// The paper's round-robin style scheduler for real systems: requests
/// are served in arrival order and engines are used in rotation.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next_engine: usize,
}

impl RoundRobin {
    /// Creates the scheduler starting at engine 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        _provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Oldest request first.
        let (ri, _) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| fifo_order(a, b))
            .expect("ready is non-empty");
        // Next engine in rotation among the free ones.
        let engine = free_engines
            .iter()
            .copied()
            .find(|&e| e >= self.next_engine)
            .unwrap_or(free_engines[0]);
        self.next_engine = (engine + 1) % usize::max(1, engine + 1).max(free_engines.len());
        Some((ri, engine))
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn dispatch_kernel(&self) -> Option<DispatchKernel> {
        Some(DispatchKernel::FifoRotatingEngine {
            next_engine: self.next_engine,
        })
    }

    fn absorb_kernel(&mut self, kernel: DispatchKernel) {
        if let DispatchKernel::FifoRotatingEngine { next_engine } = kernel {
            self.next_engine = next_engine;
        }
    }
}

/// Slack-aware earliest-deadline-first: walks the ready queue in EDF
/// order and dispatches the first request that can still *meet* its
/// deadline on some free engine (on the fastest such engine). Requests
/// that are already lost causes on every free engine don't block
/// salvageable ones behind them; if nothing is salvageable, the most
/// urgent request runs on the fastest engine to limit the overrun.
#[derive(Debug, Clone, Default)]
pub struct SlackAwareEdf {
    _private: (),
}

impl SlackAwareEdf {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Deterministic EDF ordering: deadline, then arrival, model, user.
fn edf_order(a: &PendingView, b: &PendingView) -> std::cmp::Ordering {
    a.t_deadline.total_cmp(&b.t_deadline).then(fifo_order(a, b))
}

/// Deterministic FIFO ordering: arrival, then model, then user.
fn fifo_order(a: &PendingView, b: &PendingView) -> std::cmp::Ordering {
    a.t_req
        .total_cmp(&b.t_req)
        .then(a.model.cmp(&b.model))
        .then(a.user.cmp(&b.user))
}

/// The free engine with minimal latency for `model` (ties by id).
fn fastest_engine(model: ModelId, free_engines: &[usize], provider: &dyn CostProvider) -> usize {
    free_engines
        .iter()
        .copied()
        .min_by(|&a, &b| {
            provider
                .cost(model, a)
                .latency_s
                .total_cmp(&provider.cost(model, b).latency_s)
                .then(a.cmp(&b))
        })
        .expect("free_engines is non-empty")
}

impl Scheduler for SlackAwareEdf {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..ready.len()).collect();
        order.sort_by(|&a, &b| edf_order(&ready[a], &ready[b]));
        // First salvageable request in EDF order, on its fastest
        // deadline-meeting engine.
        for &ri in &order {
            let req = &ready[ri];
            let feasible: Vec<usize> = free_engines
                .iter()
                .copied()
                .filter(|&e| now + provider.cost(req.model, e).latency_s <= req.t_deadline + 1e-15)
                .collect();
            if !feasible.is_empty() {
                return Some((ri, fastest_engine(req.model, &feasible, provider)));
            }
        }
        // Everything is late: limit damage on the most urgent one.
        let ri = order[0];
        Some((ri, fastest_engine(ready[ri].model, free_engines, provider)))
    }

    fn name(&self) -> &'static str {
        "slack-edf"
    }
}

/// Load-balancing dispatcher: serves requests in arrival order and
/// sends each to the free engine with the least *accumulated* busy
/// time for this run (ties by engine id) — the classic least-loaded
/// policy a multi-tenant session dispatcher would use.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded {
    /// Accumulated dispatched latency per engine id.
    loads: Vec<f64>,
}

impl LeastLoaded {
    /// Creates the scheduler with all engines unloaded.
    pub fn new() -> Self {
        Self::default()
    }

    fn load(&self, engine: usize) -> f64 {
        self.loads.get(engine).copied().unwrap_or(0.0)
    }
}

impl Scheduler for LeastLoaded {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Oldest request first (FIFO across users).
        let (ri, req) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| fifo_order(a, b))
            .expect("ready is non-empty");
        let engine = free_engines
            .iter()
            .copied()
            .min_by(|&a, &b| self.load(a).total_cmp(&self.load(b)).then(a.cmp(&b)))
            .expect("free_engines is non-empty");
        if self.loads.len() <= engine {
            self.loads.resize(engine + 1, 0.0);
        }
        self.loads[engine] += provider.cost(req.model, engine).latency_s;
        Some((ri, engine))
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn dispatch_kernel(&self) -> Option<DispatchKernel> {
        Some(DispatchKernel::FifoLeastLoadedEngine {
            loads: self.loads.clone(),
        })
    }

    fn absorb_kernel(&mut self, kernel: DispatchKernel) {
        if let DispatchKernel::FifoLeastLoadedEngine { loads } = kernel {
            self.loads = loads;
        }
    }
}

/// Churn-hardened dispatcher for dynamic fleets: serves requests in
/// EDF order (like [`LatencyGreedy`]) but places each on the free
/// engine with the fewest *observed outages* this run, breaking ties
/// by expected latency and then engine id. On static hardware no
/// outage is ever observed, so every tie breaks by latency and the
/// policy degenerates to latency-greedy placement.
#[derive(Debug, Clone, Default)]
pub struct FailoverAware {
    /// Outages observed per engine id (grown on demand).
    outages: Vec<u64>,
}

impl FailoverAware {
    /// Creates the scheduler with no outages observed.
    pub fn new() -> Self {
        Self::default()
    }

    fn outage_count(&self, engine: usize) -> u64 {
        self.outages.get(engine).copied().unwrap_or(0)
    }
}

impl Scheduler for FailoverAware {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        _now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Most urgent request first, on the most reliable idle engine.
        let (ri, req) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| edf_order(a, b))
            .expect("ready is non-empty");
        let engine = free_engines
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.outage_count(a)
                    .cmp(&self.outage_count(b))
                    .then(
                        provider
                            .cost(req.model, a)
                            .latency_s
                            .total_cmp(&provider.cost(req.model, b).latency_s),
                    )
                    .then(a.cmp(&b))
            })
            .expect("free_engines is non-empty");
        Some((ri, engine))
    }

    fn name(&self) -> &'static str {
        "failover-aware"
    }

    fn dispatch_kernel(&self) -> Option<DispatchKernel> {
        Some(DispatchKernel::EdfFewestOutagesEngine {
            outages: self.outages.clone(),
        })
    }

    fn absorb_kernel(&mut self, kernel: DispatchKernel) {
        if let DispatchKernel::EdfFewestOutagesEngine { outages } = kernel {
            self.outages = outages;
        }
    }

    fn on_engine_down(&mut self, engine: usize, _now: f64) {
        if self.outages.len() <= engine {
            self.outages.resize(engine + 1, 0);
        }
        self.outages[engine] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{InferenceCost, TableProvider, UniformProvider};

    fn view(model: ModelId, deadline: f64) -> PendingView {
        PendingView {
            user: 0,
            model,
            frame_id: 0,
            t_req: 0.0,
            t_deadline: deadline,
        }
    }

    #[test]
    fn greedy_picks_earliest_deadline() {
        let p = UniformProvider::new(2, 0.001, 0.0);
        let ready = vec![
            view(ModelId::HandTracking, 0.05),
            view(ModelId::EyeSegmentation, 0.01),
        ];
        let mut s = LatencyGreedy::new();
        let (ri, _) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(ri, 1);
    }

    #[test]
    fn greedy_picks_fastest_engine() {
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::HandTracking,
            0,
            InferenceCost {
                latency_s: 0.010,
                energy_j: 0.0,
            },
        );
        p.set(
            ModelId::HandTracking,
            1,
            InferenceCost {
                latency_s: 0.002,
                energy_j: 0.0,
            },
        );
        let ready = vec![view(ModelId::HandTracking, 0.05)];
        let mut s = LatencyGreedy::new();
        let (_, engine) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(engine, 1);
    }

    #[test]
    fn greedy_returns_none_when_starved() {
        let p = UniformProvider::new(1, 0.001, 0.0);
        let mut s = LatencyGreedy::new();
        assert!(s.select(&[], &[0], &p, 0.0).is_none());
        assert!(s
            .select(&[view(ModelId::HandTracking, 1.0)], &[], &p, 0.0)
            .is_none());
    }

    #[test]
    fn round_robin_rotates_engines() {
        let p = UniformProvider::new(3, 0.001, 0.0);
        let mut s = RoundRobin::new();
        let ready = vec![view(ModelId::HandTracking, 1.0)];
        let (_, e0) = s.select(&ready, &[0, 1, 2], &p, 0.0).unwrap();
        let (_, e1) = s.select(&ready, &[0, 1, 2], &p, 0.0).unwrap();
        assert_ne!(e0, e1);
    }

    #[test]
    fn slack_edf_skips_lost_causes_for_salvageable_work() {
        // Request A's deadline is already unmeetable (1 ms latency,
        // deadline 0.5 ms away); request B can still make it. B must
        // be dispatched first even though A's deadline is earlier.
        let p = UniformProvider::new(1, 0.001, 0.0);
        let ready = vec![
            view(ModelId::HandTracking, 0.0005),
            view(ModelId::EyeSegmentation, 0.002),
        ];
        let mut s = SlackAwareEdf::new();
        let (ri, _) = s.select(&ready, &[0], &p, 0.0).unwrap();
        assert_eq!(ri, 1, "salvageable request must jump the lost cause");
    }

    #[test]
    fn slack_edf_prefers_deadline_meeting_engine() {
        // The fast engine meets the deadline, the slow one does not.
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::HandTracking,
            0,
            InferenceCost {
                latency_s: 0.050,
                energy_j: 0.0,
            },
        );
        p.set(
            ModelId::HandTracking,
            1,
            InferenceCost {
                latency_s: 0.002,
                energy_j: 0.0,
            },
        );
        let ready = vec![view(ModelId::HandTracking, 0.010)];
        let mut s = SlackAwareEdf::new();
        let (_, engine) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(engine, 1);
    }

    #[test]
    fn slack_edf_still_dispatches_when_everything_is_late() {
        let p = UniformProvider::new(1, 0.010, 0.0);
        let ready = vec![view(ModelId::HandTracking, 0.001)];
        let mut s = SlackAwareEdf::new();
        assert!(s.select(&ready, &[0], &p, 0.0).is_some());
    }

    #[test]
    fn least_loaded_balances_accumulated_work() {
        let p = UniformProvider::new(2, 0.004, 0.0);
        let ready = vec![view(ModelId::HandTracking, 1.0)];
        let mut s = LeastLoaded::new();
        let (_, e0) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(e0, 0, "first dispatch goes to engine 0");
        // Engine 0 now carries 4 ms of load; even though it is free
        // again, the next dispatch must go to engine 1.
        let (_, e1) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(e1, 1);
        // Loads now equal; ties break to the lower id.
        let (_, e2) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(e2, 0);
    }

    #[test]
    fn least_loaded_serves_oldest_request_first() {
        let p = UniformProvider::new(1, 0.001, 0.0);
        let mut a = view(ModelId::HandTracking, 1.0);
        a.t_req = 0.5;
        let b = view(ModelId::EyeSegmentation, 1.0); // t_req = 0.0
        let mut s = LeastLoaded::new();
        let (ri, _) = s.select(&[a, b], &[0], &p, 0.6).unwrap();
        assert_eq!(ri, 1);
    }

    #[test]
    fn schedulers_have_names() {
        assert_eq!(LatencyGreedy::new().name(), "latency-greedy");
        assert_eq!(RoundRobin::new().name(), "round-robin");
        assert_eq!(SlackAwareEdf::new().name(), "slack-edf");
        assert_eq!(LeastLoaded::new().name(), "least-loaded");
        assert_eq!(FailoverAware::new().name(), "failover-aware");
    }

    #[test]
    fn failover_aware_avoids_flaky_engines() {
        // Engine 0 is faster but has a recorded outage; engine 1 is
        // clean and must win despite the latency disadvantage.
        let mut p = TableProvider::new(2);
        p.set(
            ModelId::HandTracking,
            0,
            InferenceCost {
                latency_s: 0.001,
                energy_j: 0.0,
            },
        );
        p.set(
            ModelId::HandTracking,
            1,
            InferenceCost {
                latency_s: 0.005,
                energy_j: 0.0,
            },
        );
        let ready = vec![view(ModelId::HandTracking, 1.0)];
        let mut s = FailoverAware::new();
        let (_, before) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(before, 0, "without outages the fast engine wins");
        s.on_engine_down(0, 0.5);
        let (_, after) = s.select(&ready, &[0, 1], &p, 0.0).unwrap();
        assert_eq!(after, 1, "observed outage demotes engine 0");
    }
}
