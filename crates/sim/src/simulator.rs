//! The discrete-event benchmark runtime.
//!
//! The simulator replays a scenario's inference-request stream against
//! the engines of a [`CostProvider`], under a pluggable [`Scheduler`].
//! It implements the runtime data structures of Figure 2:
//!
//! * **request queues** — arrived-and-ready requests awaiting dispatch;
//! * **dependency tracker** — dependent requests (GE after ES, SR
//!   after KD) are held until their upstream inference of the same
//!   sensor frame resolves, then a seeded trigger draw decides whether
//!   the downstream model runs (dynamic cascading, §4.1);
//! * **active inference table** — per-engine busy-until times;
//! * **frame-freshness drop policy** — when a newer frame of a model
//!   becomes ready while an older one still waits, the older frame is
//!   dropped (its input is stale); drops are what the QoE score
//!   penalizes.
//!
//! The same event loop serves two entry points: [`Simulator::run`] /
//! [`Simulator::run_requests`] for a single scenario, and
//! [`Simulator::run_session`] for a multi-user [`SessionSpec`] whose
//! merged stream shares the engines concurrently. Internally every
//! request carries a user tag (0 for single-scenario runs), and all
//! dependency/freshness bookkeeping is keyed per `(user, model)` so
//! users never interfere with each other's cascades — only with each
//! other's engine time.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrbench_models::ModelId;
use xrbench_workload::{InferenceRequest, LoadGenerator, ScenarioSpec, SessionSpec};

use crate::provider::CostProvider;
use crate::result::{DropReason, ExecRecord, ModelStats, SessionSimResult, SimResult};
use crate::scheduler::{PendingView, Scheduler};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Nominal run duration in seconds (paper default: one second).
    pub duration_s: f64,
    /// RNG seed for load-generation jitter and cascade trigger draws.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            duration_s: 1.0,
            seed: 0xC0FF_EE00,
        }
    }
}

/// The benchmark runtime (Figure 2).
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Completed,
    Dropped,
}

#[derive(Debug, Clone)]
struct Pending {
    user: u32,
    req: InferenceRequest,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.duration_s > 0.0, "duration must be positive");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Generates the scenario's request stream and simulates it.
    pub fn run(
        &self,
        spec: &ScenarioSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        let requests = LoadGenerator::new(self.config.seed).generate(spec, self.config.duration_s);
        self.run_requests(spec, requests, provider, scheduler)
    }

    /// Simulates an explicit, pre-generated request stream (must be
    /// sorted by request time).
    ///
    /// # Panics
    ///
    /// Panics if the provider has no engines or the request stream is
    /// not sorted by `t_req`.
    pub fn run_requests(
        &self,
        spec: &ScenarioSpec,
        requests: Vec<InferenceRequest>,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        assert!(
            requests.windows(2).all(|w| w[0].t_req <= w[1].t_req),
            "requests must be sorted by t_req"
        );
        let tagged = requests
            .into_iter()
            .map(|req| Pending { user: 0, req })
            .collect();
        let mut per_user = self.run_tagged(
            &[(0, spec)],
            tagged,
            provider,
            scheduler,
            self.config.duration_s,
        );
        per_user.remove(&0).expect("user 0 always present")
    }

    /// Simulates a multi-user session: every user's jittered,
    /// offset-shifted request stream is merged and dispatched onto the
    /// *shared* engines, so users compete for compute exactly as
    /// concurrent tenants would. Returns per-user results (each scored
    /// against the session's full span) for per-user and aggregate
    /// breakdowns.
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, session user ids are not
    /// unique, or the provider has no engines.
    pub fn run_session(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SessionSimResult {
        assert!(!session.users.is_empty(), "session has no users");
        let span_s = session.span_s(self.config.duration_s);
        let merged = session.generate(self.config.seed, self.config.duration_s);
        let tagged = merged
            .into_iter()
            .map(|r| Pending {
                user: r.user,
                req: r.req,
            })
            .collect();
        let specs: Vec<(u32, &ScenarioSpec)> =
            session.users.iter().map(|u| (u.user, &u.spec)).collect();
        let per_user_map = self.run_tagged(&specs, tagged, provider, scheduler, span_s);
        let per_user: Vec<(u32, SimResult)> = per_user_map.into_iter().collect();
        SessionSimResult {
            session: session.name.clone(),
            per_user,
            num_engines: provider.num_engines(),
            span_s,
        }
    }

    /// The shared event loop over user-tagged requests (`requests`
    /// must be sorted by `t_req`). Returns one [`SimResult`] per user,
    /// each with `duration_s = duration_s`.
    fn run_tagged(
        &self,
        specs: &[(u32, &ScenarioSpec)],
        requests: Vec<Pending>,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        duration_s: f64,
    ) -> BTreeMap<u32, SimResult> {
        assert!(provider.num_engines() > 0, "provider must expose engines");

        type Key = (u32, ModelId);
        let deps: BTreeMap<Key, Vec<(ModelId, f64)>> = specs
            .iter()
            .flat_map(|&(user, spec)| {
                spec.models.iter().map(move |m| {
                    (
                        (user, m.model),
                        m.deps
                            .iter()
                            .map(|d| (d.upstream, d.trigger_probability))
                            .collect(),
                    )
                })
            })
            .collect();

        let mut stats: BTreeMap<Key, ModelStats> = specs
            .iter()
            .flat_map(|&(user, spec)| {
                spec.models
                    .iter()
                    .map(move |m| ((user, m.model), ModelStats::default()))
            })
            .collect();

        // Runtime data structures.
        let num_engines = provider.num_engines();
        let mut engine_free_at = vec![0.0_f64; num_engines];
        let mut ready: Vec<Pending> = Vec::new();
        // (user, upstream model, sensor frame) -> resolution.
        let mut resolved: BTreeMap<(u32, ModelId, u64), Resolution> = BTreeMap::new();
        // Dependents that arrived before their upstream resolved.
        let mut waiting: Vec<Pending> = Vec::new();
        // Completion events: (t_end, user, model, sensor_frame).
        let mut completions: Vec<(f64, u32, ModelId, u64)> = Vec::new();
        let mut records: BTreeMap<u32, Vec<ExecRecord>> =
            specs.iter().map(|&(user, _)| (user, Vec::new())).collect();

        let mut arrivals = requests.into_iter().peekable();
        let mut now = 0.0_f64;

        loop {
            // 1. Process completions due now (resolve dependents).
            completions.sort_by(|a, b| a.0.total_cmp(&b.0));
            while let Some(&(t, user, model, sf)) = completions.first() {
                if t > now + 1e-15 {
                    break;
                }
                completions.remove(0);
                resolved.insert((user, model, sf), Resolution::Completed);
            }

            // 2. Ingest arrivals due now.
            while arrivals.peek().is_some_and(|p| p.req.t_req <= now + 1e-15) {
                let p = arrivals.next().expect("peeked");
                let key = (p.user, p.req.model);
                stats.entry(key).or_default().total_frames += 1;
                if deps.get(&key).is_some_and(|d| !d.is_empty()) {
                    // Freshness: a newer dependent frame supersedes an
                    // older one still waiting for its upstream.
                    drop_older(&mut waiting, &p, &mut stats);
                    waiting.push(p);
                } else {
                    drop_older(&mut ready, &p, &mut stats);
                    ready.push(p);
                }
            }

            // 3. Resolve waiting dependents whose upstream is decided.
            let mut i = 0;
            while i < waiting.len() {
                let user = waiting[i].user;
                let model = waiting[i].req.model;
                let sf = waiting[i].req.sensor_frame;
                let dep_list = &deps[&(user, model)];
                let all = dep_list
                    .iter()
                    .map(|(up, _)| resolved.get(&(user, *up, sf)).copied())
                    .collect::<Option<Vec<_>>>();
                match all {
                    None => {
                        i += 1; // upstream still in flight
                    }
                    Some(res) => {
                        let p = waiting.remove(i);
                        if res.contains(&Resolution::Dropped) {
                            let st = stats.entry((user, model)).or_default();
                            st.dropped_frames += 1;
                            let _ = DropReason::UpstreamDropped;
                        } else if self.trigger(user, &p.req, dep_list) {
                            drop_older(&mut ready, &p, &mut stats);
                            ready.push(p);
                        } else {
                            // Legitimately deactivated: not streamed
                            // work for QoE purposes.
                            let st = stats.entry((user, model)).or_default();
                            st.untriggered_frames += 1;
                            st.total_frames -= 1;
                            resolved.insert((user, model, sf), Resolution::Dropped);
                        }
                    }
                }
            }

            // 4. Dispatch ready requests onto free engines.
            loop {
                let free: Vec<usize> = (0..num_engines)
                    .filter(|&e| engine_free_at[e] <= now + 1e-15)
                    .collect();
                if free.is_empty() || ready.is_empty() {
                    break;
                }
                let views: Vec<PendingView> = ready
                    .iter()
                    .map(|p| PendingView {
                        user: p.user,
                        model: p.req.model,
                        frame_id: p.req.frame_id,
                        t_req: p.req.t_req,
                        t_deadline: p.req.t_deadline,
                    })
                    .collect();
                let Some((ri, engine)) = scheduler.select(&views, &free, provider, now) else {
                    break;
                };
                assert!(ri < ready.len(), "scheduler returned bad request index");
                assert!(
                    free.contains(&engine),
                    "scheduler returned busy engine {engine}"
                );
                let p = ready.remove(ri);
                let cost = provider.cost(p.req.model, engine);
                let t_start = now;
                let t_end = t_start + cost.latency_s;
                engine_free_at[engine] = t_end;
                completions.push((t_end, p.user, p.req.model, p.req.sensor_frame));
                let st = stats.entry((p.user, p.req.model)).or_default();
                st.executed_frames += 1;
                if t_end > p.req.t_deadline {
                    st.missed_deadlines += 1;
                }
                records.entry(p.user).or_default().push(ExecRecord {
                    model: p.req.model,
                    frame_id: p.req.frame_id,
                    sensor_frame: p.req.sensor_frame,
                    engine,
                    t_req: p.req.t_req,
                    t_deadline: p.req.t_deadline,
                    t_start,
                    t_end,
                    energy_j: cost.energy_j,
                });
            }

            // 5. Advance to the next event.
            let mut next = f64::INFINITY;
            if let Some(p) = arrivals.peek() {
                next = next.min(p.req.t_req);
            }
            for &(t, _, _, _) in &completions {
                if t > now + 1e-15 {
                    next = next.min(t);
                }
            }
            if next.is_infinite() {
                break;
            }
            now = next;
        }

        // Anything still waiting at drain time had an upstream that
        // never resolved within the run; count as dropped.
        for p in waiting {
            stats
                .entry((p.user, p.req.model))
                .or_default()
                .dropped_frames += 1;
        }
        for p in ready {
            stats
                .entry((p.user, p.req.model))
                .or_default()
                .dropped_frames += 1;
        }

        // Assemble one SimResult per user.
        let mut out = BTreeMap::new();
        for &(user, _) in specs {
            let mut recs = records.remove(&user).unwrap_or_default();
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
            let user_stats: BTreeMap<ModelId, ModelStats> = stats
                .iter()
                .filter(|((u, _), _)| *u == user)
                .map(|((_, m), st)| (*m, st.clone()))
                .collect();
            out.insert(
                user,
                SimResult {
                    records: recs,
                    stats: user_stats,
                    num_engines,
                    duration_s,
                },
            );
        }
        out
    }

    /// Deterministic cascade-trigger draw for a dependent frame: the
    /// joint probability over its control/data dependencies. The user
    /// tag is mixed into the seed (as zero for single-scenario runs,
    /// preserving their streams) so concurrent users of the same
    /// scenario draw independently.
    fn trigger(&self, user: u32, req: &InferenceRequest, deps: &[(ModelId, f64)]) -> bool {
        deps.iter().all(|(up, p)| {
            if *p >= 1.0 {
                return true;
            }
            let mut rng = StdRng::seed_from_u64(
                self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ((req.model as u64) << 32)
                    ^ ((*up as u64) << 24)
                    ^ req.frame_id
                    ^ u64::from(user).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            );
            rng.gen_range(0.0..1.0) < *p
        })
    }
}

/// Drops any not-yet-started older frame of the same (user, model)
/// (freshness policy), updating drop stats.
fn drop_older(
    queue: &mut Vec<Pending>,
    newer: &Pending,
    stats: &mut BTreeMap<(u32, ModelId), ModelStats>,
) {
    queue.retain(|p| {
        let stale = p.user == newer.user
            && p.req.model == newer.req.model
            && p.req.frame_id < newer.req.frame_id;
        if stale {
            let st = stats.entry((p.user, p.req.model)).or_default();
            st.dropped_frames += 1;
            let _ = DropReason::Superseded;
        }
        !stale
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{InferenceCost, TableProvider, UniformProvider};
    use crate::scheduler::{LatencyGreedy, RoundRobin};
    use xrbench_workload::UsageScenario;

    fn run_scenario(scenario: UsageScenario, provider: &dyn CostProvider, seed: u64) -> SimResult {
        let sim = Simulator::new(SimConfig {
            duration_s: 1.0,
            seed,
        });
        sim.run(&scenario.spec(), provider, &mut LatencyGreedy::new())
    }

    #[test]
    fn fast_system_executes_every_frame() {
        // 0.1 ms per inference on 2 engines: nothing can drop.
        let p = UniformProvider::new(2, 0.0001, 0.001);
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        for (m, st) in &r.stats {
            assert_eq!(st.dropped_frames, 0, "{m}");
            assert_eq!(st.executed_frames, st.total_frames, "{m}");
            assert_eq!(st.missed_deadlines, 0, "{m}");
        }
        // 45 + 60 + 60 inferences.
        assert_eq!(r.records.len(), 165);
    }

    #[test]
    fn overloaded_system_drops_frames() {
        // 40 ms per inference on 1 engine: far beyond 165 req/s.
        let p = UniformProvider::new(1, 0.040, 0.001);
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        let dropped: u64 = r.stats.values().map(|s| s.dropped_frames).sum();
        assert!(dropped > 50, "expected heavy drops, got {dropped}");
        // Conservation: total = executed + dropped (+ nothing else for
        // the 1.0-probability VR gaming pipelines).
        for (m, st) in &r.stats {
            assert_eq!(
                st.total_frames,
                st.executed_frames + st.dropped_frames,
                "{m}"
            );
        }
    }

    #[test]
    fn dependency_order_respected() {
        let p = UniformProvider::new(4, 0.002, 0.001);
        let r = run_scenario(UsageScenario::SocialInteractionA, &p, 3);
        // Every GE record must start at or after the ES record of the
        // same sensor frame ends (Appendix B.2 dependency condition).
        for ge in r.records_for(ModelId::GazeEstimation) {
            let es = r
                .records_for(ModelId::EyeSegmentation)
                .find(|e| e.sensor_frame == ge.sensor_frame)
                .expect("GE ran without its ES upstream");
            assert!(
                ge.t_start >= es.t_end - 1e-12,
                "GE frame {} started before ES finished",
                ge.sensor_frame
            );
        }
    }

    #[test]
    fn hardware_occupancy_condition_holds() {
        // Appendix B.2: one engine never runs two inferences at once.
        let p = UniformProvider::new(2, 0.004, 0.001);
        let r = run_scenario(UsageScenario::ArAssistant, &p, 9);
        for e in 0..2 {
            let mut recs: Vec<_> = r.records.iter().filter(|x| x.engine == e).collect();
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
            for w in recs.windows(2) {
                assert!(w[1].t_start >= w[0].t_end - 1e-12, "overlap on engine {e}");
            }
        }
    }

    #[test]
    fn control_dependency_gates_speech_recognition() {
        // With p = 0.2 over 3 frames, SR rarely runs all 3; over many
        // seeds the trigger rate should approach 0.2.
        let p = UniformProvider::new(2, 0.001, 0.001);
        let mut triggered = 0u64;
        let mut possible = 0u64;
        for seed in 0..100 {
            let r = run_scenario(UsageScenario::OutdoorActivityA, &p, seed);
            let st = &r.stats[&ModelId::SpeechRecognition];
            triggered += st.total_frames;
            possible += st.total_frames + st.untriggered_frames;
        }
        let rate = triggered as f64 / possible as f64;
        assert!(
            (rate - 0.2).abs() < 0.06,
            "KD->SR trigger rate {rate} far from 0.2"
        );
    }

    #[test]
    fn untriggered_frames_do_not_hurt_qoe_accounting() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let r = run_scenario(UsageScenario::OutdoorActivityA, &p, 5);
        let st = &r.stats[&ModelId::SpeechRecognition];
        // total excludes untriggered; executed covers all triggered.
        assert_eq!(st.total_frames, st.executed_frames);
        assert_eq!(st.total_frames + st.untriggered_frames, 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let a = run_scenario(UsageScenario::ArAssistant, &p, 77);
        let b = run_scenario(UsageScenario::ArAssistant, &p, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_dynamic_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let counts: Vec<usize> = (0..20)
            .map(|s| {
                run_scenario(UsageScenario::ArAssistant, &p, s)
                    .records
                    .len()
            })
            .collect();
        assert!(
            counts.iter().any(|c| *c != counts[0]),
            "AR assistant should be non-deterministic across seeds"
        );
    }

    #[test]
    fn slow_engine_avoided_by_latency_greedy() {
        let mut p = TableProvider::new(2);
        for m in ModelId::ALL {
            p.set(
                m,
                0,
                InferenceCost {
                    latency_s: 0.0001,
                    energy_j: 0.001,
                },
            );
            p.set(
                m,
                1,
                InferenceCost {
                    latency_s: 0.5,
                    energy_j: 0.001,
                },
            );
        }
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        // All work fits on the fast engine; greedy never touches the
        // slow one after t=0 contention (allow a handful).
        let on_slow = r.records.iter().filter(|x| x.engine == 1).count();
        assert!(
            on_slow <= 3,
            "latency-greedy used slow engine {on_slow} times"
        );
    }

    #[test]
    fn round_robin_spreads_work() {
        let p = UniformProvider::new(4, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let r = sim.run(
            &UsageScenario::ArAssistant.spec(),
            &p,
            &mut RoundRobin::new(),
        );
        let used: Vec<usize> = (0..4)
            .filter(|&e| r.records.iter().any(|x| x.engine == e))
            .collect();
        assert!(used.len() >= 3, "round-robin used only {used:?}");
    }

    #[test]
    fn records_sorted_by_start_time() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let r = run_scenario(UsageScenario::SocialInteractionA, &p, 2);
        for w in r.records.windows(2) {
            assert!(w[0].t_start <= w[1].t_start);
        }
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = Simulator::new(SimConfig {
            duration_s: 0.0,
            seed: 0,
        });
    }

    // ---- multi-user sessions ----

    use xrbench_workload::SessionSpec;

    #[test]
    fn single_user_session_matches_scenario_run() {
        // A 1-user session at offset 0 reduces to the plain run.
        let p = UniformProvider::new(2, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let solo = sim.run(
            &UsageScenario::VrGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        );
        let session = SessionSpec::uniform("solo", UsageScenario::VrGaming.spec(), 1, 0.0);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(sr.per_user.len(), 1);
        assert_eq!(sr.per_user[0].0, 0);
        assert_eq!(sr.per_user[0].1, solo);
    }

    #[test]
    fn session_users_share_engines() {
        // One engine, two users: total busy time must interleave, and
        // the occupancy condition must hold across users.
        let p = UniformProvider::new(1, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = SessionSpec::uniform("duo", UsageScenario::ArGaming.spec(), 2, 0.01);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let mut all: Vec<&ExecRecord> = sr
            .per_user
            .iter()
            .flat_map(|(_, r)| r.records.iter())
            .collect();
        all.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        for w in all.windows(2) {
            assert!(
                w[1].t_start >= w[0].t_end - 1e-12,
                "two users overlapped on the single engine"
            );
        }
    }

    #[test]
    fn session_contention_degrades_each_user() {
        // Alone, VR gaming fits easily; 8 concurrent users on the same
        // 2 engines must drop frames somewhere.
        let p = UniformProvider::new(2, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let solo = sim.run(
            &UsageScenario::VrGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        );
        let solo_drops: u64 = solo.stats.values().map(|s| s.dropped_frames).sum();
        assert_eq!(solo_drops, 0, "solo run should be drop-free");
        let session = SessionSpec::uniform("crowd", UsageScenario::VrGaming.spec(), 8, 0.005);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let crowd_drops: u64 = sr
            .per_user
            .iter()
            .flat_map(|(_, r)| r.stats.values())
            .map(|s| s.dropped_frames)
            .sum();
        assert!(crowd_drops > 0, "8-way contention should drop frames");
    }

    #[test]
    fn session_dependencies_stay_per_user() {
        // Each user's GE must wait for *their own* ES of the same
        // sensor frame, never another user's.
        let p = UniformProvider::new(4, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session =
            SessionSpec::uniform("pair", UsageScenario::SocialInteractionA.spec(), 2, 0.02);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        for (_, r) in &sr.per_user {
            for ge in r.records_for(ModelId::GazeEstimation) {
                let es = r
                    .records_for(ModelId::EyeSegmentation)
                    .find(|e| e.sensor_frame == ge.sensor_frame)
                    .expect("GE ran without this user's ES upstream");
                assert!(ge.t_start >= es.t_end - 1e-12);
            }
        }
    }

    #[test]
    fn session_deterministic_across_runs() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let specs = [
            UsageScenario::VrGaming.spec(),
            UsageScenario::OutdoorActivityA.spec(),
        ];
        let session = SessionSpec::mixed("mix", &specs, 4, 0.01);
        let a = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let b = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(a, b);
    }

    #[test]
    fn session_span_covers_last_user() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = SessionSpec::uniform("s", UsageScenario::ArGaming.spec(), 3, 0.5);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert!((sr.span_s - 2.0).abs() < 1e-12);
        for (_, r) in &sr.per_user {
            assert_eq!(r.duration_s, sr.span_s);
        }
    }

    #[test]
    #[should_panic(expected = "no users")]
    fn empty_session_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let _ = sim.run_session(&SessionSpec::new("empty"), &p, &mut LatencyGreedy::new());
    }
}
