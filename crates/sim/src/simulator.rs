//! The discrete-event benchmark runtime.
//!
//! The simulator replays a scenario's inference-request stream against
//! the engines of a [`CostProvider`], under a pluggable [`Scheduler`].
//! It implements the runtime data structures of Figure 2:
//!
//! * **request queues** — arrived-and-ready requests awaiting dispatch;
//! * **dependency tracker** — dependent requests (GE after ES, SR
//!   after KD) are held until their upstream inference of the same
//!   sensor frame resolves, then a seeded trigger draw decides whether
//!   the downstream model runs (dynamic cascading, §4.1);
//! * **active inference table** — per-engine busy-until times;
//! * **frame-freshness drop policy** — when a newer frame of a model
//!   becomes ready while an older one still waits, the older frame is
//!   dropped (its input is stale); drops are what the QoE score
//!   penalizes.
//!
//! The same event loop serves two entry points: [`Simulator::run`] /
//! [`Simulator::run_requests`] for a single scenario, and
//! [`Simulator::run_session`] for a multi-user [`SessionSpec`] whose
//! merged stream shares the engines concurrently. Internally every
//! request carries a user tag (0 for single-scenario runs), and all
//! dependency/freshness bookkeeping is keyed per `(user, model)` so
//! users never interfere with each other's cascades — only with each
//! other's engine time.
//!
//! The event loop itself is the calendar-queue engine of
//! [`crate::engine`]: a bucketed completion calendar with a total
//! deterministic tie-break, struct-of-arrays pending queues, batched
//! same-timestamp scheduling with an indexed fast path for kernel-
//! declaring schedulers, and precomputed per-scenario dispatch tables
//! — amortized constant per event where the original loop was linear
//! (see `DESIGN.md`). The two previous loops survive verbatim as
//! differential-testing references: the original quadratic loop in
//! [`crate::naive`] and the PR 3 heap engine in [`crate::heap`]; all
//! three produce bit-identical results.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrbench_models::ModelId;
use xrbench_workload::{InferenceRequest, LoadGenerator, ScenarioSpec, SessionSpec};

use crate::provider::CostProvider;
use crate::result::{SessionSimResult, SimResult};
use crate::scheduler::Scheduler;

/// The time-comparison slack used when grouping events at one instant.
pub(crate) const EPS: f64 = 1e-15;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Nominal run duration in seconds (paper default: one second).
    pub duration_s: f64,
    /// RNG seed for load-generation jitter and cascade trigger draws.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            duration_s: 1.0,
            seed: 0xC0FF_EE00,
        }
    }
}

/// The benchmark runtime (Figure 2).
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

/// How an upstream inference of one sensor frame ended — the state a
/// dependent frame waits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resolution {
    Completed,
    Dropped,
}

/// A user-tagged inference request flowing through the event loop.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) user: u32,
    pub(crate) req: InferenceRequest,
}

/// One deterministic cascade-trigger draw: seeded per
/// `(seed, user, model, upstream, frame)`, so the decision is a pure
/// function of the run configuration and the frame identity. The user
/// tag is mixed into the seed (as zero for single-scenario runs,
/// preserving their streams) so concurrent users of the same scenario
/// draw independently.
pub(crate) fn trigger_draw(
    seed: u64,
    user: u32,
    model: ModelId,
    upstream: ModelId,
    frame_id: u64,
    probability: f64,
) -> bool {
    if probability >= 1.0 {
        return true;
    }
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((model as u64) << 32)
            ^ ((upstream as u64) << 24)
            ^ frame_id
            ^ u64::from(user).wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    rng.gen_range(0.0..1.0) < probability
}

/// Joint trigger decision over all of a frame's dependencies.
pub(crate) fn trigger_all(
    seed: u64,
    user: u32,
    req: &InferenceRequest,
    deps: &[(ModelId, f64)],
) -> bool {
    deps.iter()
        .all(|&(up, p)| trigger_draw(seed, user, req.model, up, req.frame_id, p))
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.duration_s > 0.0, "duration must be positive");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Generates the scenario's request stream and simulates it.
    pub fn run(
        &self,
        spec: &ScenarioSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        let requests = LoadGenerator::new(self.config.seed).generate(spec, self.config.duration_s);
        self.run_requests(spec, requests, provider, scheduler)
    }

    /// Simulates an explicit, pre-generated request stream (must be
    /// sorted by request time).
    ///
    /// # Panics
    ///
    /// Panics if the provider has no engines, the request stream is
    /// not sorted by `t_req`, or any model's requests are not strictly
    /// increasing in both `frame_id` and `sensor_frame` (the freshness
    /// drop policy is defined over monotone per-model streams, which
    /// is what [`LoadGenerator`] produces).
    pub fn run_requests(
        &self,
        spec: &ScenarioSpec,
        requests: Vec<InferenceRequest>,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        assert!(
            requests.windows(2).all(|w| w[0].t_req <= w[1].t_req),
            "requests must be sorted by t_req"
        );
        let tagged = requests
            .into_iter()
            .map(|req| Pending { user: 0, req })
            .collect();
        let mut per_user = crate::engine::run_tagged(
            self.config,
            &[(0, spec)],
            tagged,
            provider,
            scheduler,
            self.config.duration_s,
        );
        per_user.remove(&0).expect("user 0 always present")
    }

    /// Simulates a multi-user session: every user's jittered,
    /// offset-shifted request stream is merged and dispatched onto the
    /// *shared* engines, so users compete for compute exactly as
    /// concurrent tenants would. Returns per-user results (each scored
    /// against the session's full span) for per-user and aggregate
    /// breakdowns.
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, session user ids are not
    /// unique, or the provider has no engines.
    pub fn run_session(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let per_user_map =
            crate::engine::run_tagged(self.config, &specs, tagged, provider, scheduler, span_s);
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// [`Simulator::run_session`] with **streaming result folding**:
    /// every completed inference is handed to `sink` as
    /// `(user, &ExecRecord)` the moment it is dispatched (records
    /// arrive in nondecreasing `t_start` order, per user exactly the
    /// order `SimResult::records` would list them), and **no**
    /// per-request vectors are retained — the returned
    /// [`SessionSimResult`] carries complete per-user stats but empty
    /// `records`.
    ///
    /// This is the memory contract fleet-scale execution builds on:
    /// a session's footprint stays proportional to its in-flight
    /// window (users × models) instead of its request count. Apart
    /// from the empty `records`, the run is bit-identical to
    /// [`Simulator::run_session`]: same events, same stats, same
    /// tie-breaks.
    ///
    /// **Caveat:** every records-derived metric on the returned value
    /// — [`SimResult::total_energy_j`], [`SimResult::engine_busy_s`],
    /// the utilization helpers, and their
    /// [`SessionSimResult`] counterparts — reads as zero, because the
    /// records backing them were folded away. Accumulate those
    /// quantities in the sink instead (the fleet accumulator keeps
    /// its own exact energy/latency sums for precisely this reason).
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, session user ids are not
    /// unique, or the provider has no engines.
    pub fn run_session_folded(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn FnMut(u32, &crate::result::ExecRecord),
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let per_user_map = crate::engine::run_tagged_mode(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Fold(sink),
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// [`Simulator::run_session`] under a dynamic fleet: the
    /// [`FaultProcess`](crate::FaultProcess) is expanded into a
    /// deterministic per-engine event timeline (seeded from
    /// [`fault_seed`](crate::fault_seed)`(config.seed)`, so in a fleet
    /// the timeline is part of each replica's identity and merges stay
    /// exact) and injected into the event loop; in-flight work on a
    /// lost engine is recovered per `policy`.
    ///
    /// A *quiet* process (zero rates, no effective throttle — see
    /// [`FaultProcess::is_quiet`](crate::FaultProcess::is_quiet)) or
    /// an empty expanded timeline routes through the unmodified
    /// fault-free path, bit-identical to [`Simulator::run_session`].
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, session user ids are not
    /// unique, the provider has no engines, or the fault process fails
    /// [`FaultProcess::validate`](crate::FaultProcess::validate).
    pub fn run_session_faulted(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        faults: &crate::FaultProcess,
        policy: crate::RecoveryPolicy,
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let timeline = self.expand_timeline(faults, provider, span_s);
        let per_user_map = match timeline {
            Some(ref tl) => crate::engine::run_tagged_faulted(
                self.config,
                &specs,
                tagged,
                provider,
                scheduler,
                span_s,
                crate::engine::RecordMode::Collect,
                Some(crate::engine::FaultCtx {
                    timeline: tl,
                    policy,
                }),
            ),
            None => {
                crate::engine::run_tagged(self.config, &specs, tagged, provider, scheduler, span_s)
            }
        };
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// [`Simulator::run_session_faulted`] with the streaming fold of
    /// [`Simulator::run_session_folded`]. Note that in faulted runs
    /// records reach the sink in *completion* order (nondecreasing
    /// `t_end`), not dispatch order — per-user they still sort to the
    /// same `records` vector the collecting variant returns.
    ///
    /// # Panics
    ///
    /// Same contract as [`Simulator::run_session_faulted`].
    pub fn run_session_folded_faulted(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        faults: &crate::FaultProcess,
        policy: crate::RecoveryPolicy,
        sink: &mut dyn FnMut(u32, &crate::result::ExecRecord),
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let timeline = self.expand_timeline(faults, provider, span_s);
        let per_user_map = crate::engine::run_tagged_faulted(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Fold(sink),
            timeline.as_ref().map(|tl| crate::engine::FaultCtx {
                timeline: tl,
                policy,
            }),
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// Expands a fault process into this run's timeline, or `None`
    /// when the process is quiet / produces no events (which routes
    /// the run through the unmodified fault-free path).
    fn expand_timeline(
        &self,
        faults: &crate::FaultProcess,
        provider: &dyn CostProvider,
        span_s: f64,
    ) -> Option<crate::FaultTimeline> {
        assert!(
            faults.validate().is_ok(),
            "invalid fault process: {:?}",
            faults.validate()
        );
        if faults.is_quiet() {
            return None;
        }
        let tl = faults.timeline(
            crate::fault_seed(self.config.seed),
            provider.num_engines(),
            span_s,
        );
        if tl.is_empty() {
            None
        } else {
            Some(tl)
        }
    }

    /// Prepares the merged, user-tagged session stream.
    fn session_inputs<'s>(
        &self,
        session: &'s SessionSpec,
    ) -> (Vec<(u32, &'s ScenarioSpec)>, Vec<Pending>, f64) {
        assert!(!session.users.is_empty(), "session has no users");
        let span_s = session.span_s(self.config.duration_s);
        let merged = session.generate(self.config.seed, self.config.duration_s);
        let tagged = merged
            .into_iter()
            .map(|r| Pending {
                user: r.user,
                req: r.req,
            })
            .collect();
        let specs: Vec<(u32, &ScenarioSpec)> =
            session.users.iter().map(|u| (u.user, &u.spec)).collect();
        (specs, tagged, span_s)
    }

    /// Packages per-user results into a [`SessionSimResult`].
    fn assemble_session(
        session: &SessionSpec,
        per_user_map: BTreeMap<u32, SimResult>,
        provider: &dyn CostProvider,
        span_s: f64,
    ) -> SessionSimResult {
        let per_user: Vec<(u32, SimResult)> = per_user_map.into_iter().collect();
        SessionSimResult {
            session: session.name.clone(),
            per_user,
            num_engines: provider.num_engines(),
            span_s,
        }
    }

    /// Reference (pre-heap) counterpart of [`Simulator::run_requests`]
    /// — the original quadratic event loop, kept for differential
    /// testing and before/after benchmarking. Not a supported API.
    #[doc(hidden)]
    pub fn run_requests_reference(
        &self,
        spec: &ScenarioSpec,
        requests: Vec<InferenceRequest>,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        assert!(
            requests.windows(2).all(|w| w[0].t_req <= w[1].t_req),
            "requests must be sorted by t_req"
        );
        let tagged = requests
            .into_iter()
            .map(|req| Pending { user: 0, req })
            .collect();
        let mut per_user = crate::naive::run_tagged_naive(
            self.config,
            &[(0, spec)],
            tagged,
            provider,
            scheduler,
            self.config.duration_s,
        );
        per_user.remove(&0).expect("user 0 always present")
    }

    /// Reference (pre-heap) counterpart of [`Simulator::run_session`].
    /// Not a supported API.
    #[doc(hidden)]
    pub fn run_session_reference(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let per_user_map = crate::naive::run_tagged_naive(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// Heap-engine (PR 3) counterpart of [`Simulator::run_session`] —
    /// the previous production loop, kept as a second differential
    /// reference for the calendar-queue engine. Not a supported API.
    #[doc(hidden)]
    pub fn run_session_heap_reference(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let per_user_map = crate::heap::run_tagged_faulted(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Collect,
            None,
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// Heap-engine counterpart of [`Simulator::run_session_folded`].
    /// Not a supported API.
    #[doc(hidden)]
    pub fn run_session_folded_heap_reference(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn FnMut(u32, &crate::result::ExecRecord),
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let per_user_map = crate::heap::run_tagged_faulted(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Fold(sink),
            None,
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// Heap-engine counterpart of [`Simulator::run_session_faulted`].
    /// Not a supported API.
    #[doc(hidden)]
    pub fn run_session_faulted_heap_reference(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        faults: &crate::FaultProcess,
        policy: crate::RecoveryPolicy,
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let timeline = self.expand_timeline(faults, provider, span_s);
        let per_user_map = crate::heap::run_tagged_faulted(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Collect,
            timeline.as_ref().map(|tl| crate::engine::FaultCtx {
                timeline: tl,
                policy,
            }),
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }

    /// Heap-engine counterpart of
    /// [`Simulator::run_session_folded_faulted`]. Not a supported API.
    #[doc(hidden)]
    pub fn run_session_folded_faulted_heap_reference(
        &self,
        session: &SessionSpec,
        provider: &dyn CostProvider,
        scheduler: &mut dyn Scheduler,
        faults: &crate::FaultProcess,
        policy: crate::RecoveryPolicy,
        sink: &mut dyn FnMut(u32, &crate::result::ExecRecord),
    ) -> SessionSimResult {
        let (specs, tagged, span_s) = self.session_inputs(session);
        let timeline = self.expand_timeline(faults, provider, span_s);
        let per_user_map = crate::heap::run_tagged_faulted(
            self.config,
            &specs,
            tagged,
            provider,
            scheduler,
            span_s,
            crate::engine::RecordMode::Fold(sink),
            timeline.as_ref().map(|tl| crate::engine::FaultCtx {
                timeline: tl,
                policy,
            }),
        );
        Self::assemble_session(session, per_user_map, provider, span_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{InferenceCost, TableProvider, UniformProvider};
    use crate::result::ExecRecord;
    use crate::scheduler::{LatencyGreedy, RoundRobin};
    use xrbench_workload::UsageScenario;

    fn run_scenario(scenario: UsageScenario, provider: &dyn CostProvider, seed: u64) -> SimResult {
        let sim = Simulator::new(SimConfig {
            duration_s: 1.0,
            seed,
        });
        sim.run(&scenario.spec(), provider, &mut LatencyGreedy::new())
    }

    #[test]
    fn fast_system_executes_every_frame() {
        // 0.1 ms per inference on 2 engines: nothing can drop.
        let p = UniformProvider::new(2, 0.0001, 0.001);
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        for (m, st) in &r.stats {
            assert_eq!(st.dropped_frames, 0, "{m}");
            assert_eq!(st.executed_frames, st.total_frames, "{m}");
            assert_eq!(st.missed_deadlines, 0, "{m}");
        }
        // 45 + 60 + 60 inferences.
        assert_eq!(r.records.len(), 165);
    }

    #[test]
    fn overloaded_system_drops_frames() {
        // 40 ms per inference on 1 engine: far beyond 165 req/s.
        let p = UniformProvider::new(1, 0.040, 0.001);
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        let dropped: u64 = r.stats.values().map(|s| s.dropped_frames).sum();
        assert!(dropped > 50, "expected heavy drops, got {dropped}");
        // Conservation: total = executed + dropped (+ nothing else for
        // the 1.0-probability VR gaming pipelines).
        for (m, st) in &r.stats {
            assert_eq!(
                st.total_frames,
                st.executed_frames + st.dropped_frames,
                "{m}"
            );
        }
    }

    #[test]
    fn drop_reasons_partition_the_drop_count() {
        // Per-reason counters must always sum to dropped_frames, on
        // both light and heavy load.
        for latency in [0.0005, 0.006, 0.040] {
            let p = UniformProvider::new(1, latency, 0.001);
            for scenario in UsageScenario::ALL {
                let r = run_scenario(scenario, &p, 7);
                for (m, st) in &r.stats {
                    assert_eq!(
                        st.dropped_frames,
                        st.dropped_superseded + st.dropped_upstream + st.dropped_starved,
                        "{scenario:?}/{m} at {latency}s"
                    );
                }
            }
        }
    }

    #[test]
    fn overload_drops_are_attributed_to_reasons() {
        let p = UniformProvider::new(1, 0.040, 0.001);
        let r = run_scenario(UsageScenario::SocialInteractionA, &p, 1);
        let superseded: u64 = r.stats.values().map(|s| s.dropped_superseded).sum();
        assert!(superseded > 0, "freshness policy must fire under overload");
    }

    #[test]
    fn untriggered_upstream_drops_are_attributed() {
        // A chained probabilistic cascade OD -> DE -> DR (all camera
        // models at the same rate, so sensor frames line up): whenever
        // the OD->DE draw deactivates DE, the dependent DR frame must
        // be recorded as an upstream-dropped drop.
        use xrbench_workload::{DependencyKind, ScenarioBuilder};
        let spec = ScenarioBuilder::new("chain")
            .model(ModelId::ObjectDetection, 30.0)
            .dependent(
                ModelId::DepthEstimation,
                30.0,
                ModelId::ObjectDetection,
                DependencyKind::Control,
                0.2,
            )
            .dependent(
                ModelId::DepthRefinement,
                30.0,
                ModelId::DepthEstimation,
                DependencyKind::Data,
                1.0,
            )
            .build()
            .expect("valid chain scenario");
        let p = UniformProvider::new(2, 0.0005, 0.001);
        let sim = Simulator::new(SimConfig {
            duration_s: 1.0,
            seed: 3,
        });
        let r = sim.run(&spec, &p, &mut LatencyGreedy::new());
        let st = &r.stats[&ModelId::DepthRefinement];
        assert!(
            st.dropped_upstream > 0,
            "with p = 0.2 over 30 frames, some DR frame must lose its upstream"
        );
        assert_eq!(
            st.dropped_frames,
            st.dropped_superseded + st.dropped_upstream + st.dropped_starved
        );
    }

    #[test]
    fn dependency_order_respected() {
        let p = UniformProvider::new(4, 0.002, 0.001);
        let r = run_scenario(UsageScenario::SocialInteractionA, &p, 3);
        // Every GE record must start at or after the ES record of the
        // same sensor frame ends (Appendix B.2 dependency condition).
        for ge in r.records_for(ModelId::GazeEstimation) {
            let es = r
                .records_for(ModelId::EyeSegmentation)
                .find(|e| e.sensor_frame == ge.sensor_frame)
                .expect("GE ran without its ES upstream");
            assert!(
                ge.t_start >= es.t_end - 1e-12,
                "GE frame {} started before ES finished",
                ge.sensor_frame
            );
        }
    }

    #[test]
    fn hardware_occupancy_condition_holds() {
        // Appendix B.2: one engine never runs two inferences at once.
        let p = UniformProvider::new(2, 0.004, 0.001);
        let r = run_scenario(UsageScenario::ArAssistant, &p, 9);
        for e in 0..2 {
            let mut recs: Vec<_> = r.records.iter().filter(|x| x.engine == e).collect();
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
            for w in recs.windows(2) {
                assert!(w[1].t_start >= w[0].t_end - 1e-12, "overlap on engine {e}");
            }
        }
    }

    #[test]
    fn control_dependency_gates_speech_recognition() {
        // With p = 0.2 over 3 frames, SR rarely runs all 3; over many
        // seeds the trigger rate should approach 0.2.
        let p = UniformProvider::new(2, 0.001, 0.001);
        let mut triggered = 0u64;
        let mut possible = 0u64;
        for seed in 0..100 {
            let r = run_scenario(UsageScenario::OutdoorActivityA, &p, seed);
            let st = &r.stats[&ModelId::SpeechRecognition];
            triggered += st.total_frames;
            possible += st.total_frames + st.untriggered_frames;
        }
        let rate = triggered as f64 / possible as f64;
        assert!(
            (rate - 0.2).abs() < 0.06,
            "KD->SR trigger rate {rate} far from 0.2"
        );
    }

    #[test]
    fn untriggered_frames_do_not_hurt_qoe_accounting() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let r = run_scenario(UsageScenario::OutdoorActivityA, &p, 5);
        let st = &r.stats[&ModelId::SpeechRecognition];
        // total excludes untriggered; executed covers all triggered.
        assert_eq!(st.total_frames, st.executed_frames);
        assert_eq!(st.total_frames + st.untriggered_frames, 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let a = run_scenario(UsageScenario::ArAssistant, &p, 77);
        let b = run_scenario(UsageScenario::ArAssistant, &p, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_dynamic_scenarios() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let counts: Vec<usize> = (0..20)
            .map(|s| {
                run_scenario(UsageScenario::ArAssistant, &p, s)
                    .records
                    .len()
            })
            .collect();
        assert!(
            counts.iter().any(|c| *c != counts[0]),
            "AR assistant should be non-deterministic across seeds"
        );
    }

    #[test]
    fn slow_engine_avoided_by_latency_greedy() {
        let mut p = TableProvider::new(2);
        for m in ModelId::ALL {
            p.set(
                m,
                0,
                InferenceCost {
                    latency_s: 0.0001,
                    energy_j: 0.001,
                },
            );
            p.set(
                m,
                1,
                InferenceCost {
                    latency_s: 0.5,
                    energy_j: 0.001,
                },
            );
        }
        let r = run_scenario(UsageScenario::VrGaming, &p, 1);
        // All work fits on the fast engine; greedy never touches the
        // slow one after t=0 contention (allow a handful).
        let on_slow = r.records.iter().filter(|x| x.engine == 1).count();
        assert!(
            on_slow <= 3,
            "latency-greedy used slow engine {on_slow} times"
        );
    }

    #[test]
    fn round_robin_spreads_work() {
        let p = UniformProvider::new(4, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let r = sim.run(
            &UsageScenario::ArAssistant.spec(),
            &p,
            &mut RoundRobin::new(),
        );
        let used: Vec<usize> = (0..4)
            .filter(|&e| r.records.iter().any(|x| x.engine == e))
            .collect();
        assert!(used.len() >= 3, "round-robin used only {used:?}");
    }

    #[test]
    fn records_sorted_by_start_time() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let r = run_scenario(UsageScenario::SocialInteractionA, &p, 2);
        for w in r.records.windows(2) {
            assert!(w[0].t_start <= w[1].t_start);
        }
    }

    #[test]
    fn engine_matches_reference_loop_on_every_scenario() {
        // The crate-internal sanity slice of the full differential
        // suite in tests/runtime_properties.rs.
        for scenario in UsageScenario::ALL {
            for (engines, latency) in [(1, 0.020), (2, 0.003), (4, 0.0008)] {
                let p = UniformProvider::new(engines, latency, 0.001);
                let sim = Simulator::new(SimConfig {
                    duration_s: 1.0,
                    seed: 11,
                });
                let spec = scenario.spec();
                let requests = LoadGenerator::new(11).generate(&spec, 1.0);
                let fast = sim.run_requests(&spec, requests.clone(), &p, &mut LatencyGreedy::new());
                let slow =
                    sim.run_requests_reference(&spec, requests, &p, &mut LatencyGreedy::new());
                assert_eq!(fast, slow, "{scenario:?} on {engines}x{latency}s");
            }
        }
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = Simulator::new(SimConfig {
            duration_s: 0.0,
            seed: 0,
        });
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_streams_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let spec = UsageScenario::VrGaming.spec();
        let mut requests = LoadGenerator::new(1).generate(&spec, 1.0);
        // Replay an old frame id out of order.
        if let Some(last) = requests.last_mut() {
            last.frame_id = 0;
            last.sensor_frame = 0;
        }
        let _ = sim.run_requests(&spec, requests, &p, &mut LatencyGreedy::new());
    }

    // ---- multi-user sessions ----

    use xrbench_workload::SessionSpec;

    #[test]
    fn single_user_session_matches_scenario_run() {
        // A 1-user session at offset 0 reduces to the plain run.
        let p = UniformProvider::new(2, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let solo = sim.run(
            &UsageScenario::VrGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        );
        let session = SessionSpec::uniform("solo", UsageScenario::VrGaming.spec(), 1, 0.0);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(sr.per_user.len(), 1);
        assert_eq!(sr.per_user[0].0, 0);
        assert_eq!(sr.per_user[0].1, solo);
    }

    #[test]
    fn session_users_share_engines() {
        // One engine, two users: total busy time must interleave, and
        // the occupancy condition must hold across users.
        let p = UniformProvider::new(1, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = SessionSpec::uniform("duo", UsageScenario::ArGaming.spec(), 2, 0.01);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let mut all: Vec<&ExecRecord> = sr
            .per_user
            .iter()
            .flat_map(|(_, r)| r.records.iter())
            .collect();
        all.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        for w in all.windows(2) {
            assert!(
                w[1].t_start >= w[0].t_end - 1e-12,
                "two users overlapped on the single engine"
            );
        }
    }

    #[test]
    fn session_contention_degrades_each_user() {
        // Alone, VR gaming fits easily; 8 concurrent users on the same
        // 2 engines must drop frames somewhere.
        let p = UniformProvider::new(2, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let solo = sim.run(
            &UsageScenario::VrGaming.spec(),
            &p,
            &mut LatencyGreedy::new(),
        );
        let solo_drops: u64 = solo.stats.values().map(|s| s.dropped_frames).sum();
        assert_eq!(solo_drops, 0, "solo run should be drop-free");
        let session = SessionSpec::uniform("crowd", UsageScenario::VrGaming.spec(), 8, 0.005);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let crowd_drops: u64 = sr
            .per_user
            .iter()
            .flat_map(|(_, r)| r.stats.values())
            .map(|s| s.dropped_frames)
            .sum();
        assert!(crowd_drops > 0, "8-way contention should drop frames");
    }

    #[test]
    fn session_dependencies_stay_per_user() {
        // Each user's GE must wait for *their own* ES of the same
        // sensor frame, never another user's.
        let p = UniformProvider::new(4, 0.002, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session =
            SessionSpec::uniform("pair", UsageScenario::SocialInteractionA.spec(), 2, 0.02);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        for (_, r) in &sr.per_user {
            for ge in r.records_for(ModelId::GazeEstimation) {
                let es = r
                    .records_for(ModelId::EyeSegmentation)
                    .find(|e| e.sensor_frame == ge.sensor_frame)
                    .expect("GE ran without this user's ES upstream");
                assert!(ge.t_start >= es.t_end - 1e-12);
            }
        }
    }

    #[test]
    fn session_deterministic_across_runs() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let specs = [
            UsageScenario::VrGaming.spec(),
            UsageScenario::OutdoorActivityA.spec(),
        ];
        let session = SessionSpec::mixed("mix", &specs, 4, 0.01);
        let a = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let b = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(a, b);
    }

    #[test]
    fn session_matches_reference_loop() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let specs = [
            UsageScenario::SocialInteractionA.spec(),
            UsageScenario::OutdoorActivityA.spec(),
            UsageScenario::ArAssistant.spec(),
        ];
        let session = SessionSpec::mixed("mix", &specs, 6, 0.013);
        let fast = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let slow = sim.run_session_reference(&session, &p, &mut LatencyGreedy::new());
        assert_eq!(fast, slow);
    }

    #[test]
    fn session_span_covers_last_user() {
        let p = UniformProvider::new(2, 0.001, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = SessionSpec::uniform("s", UsageScenario::ArGaming.spec(), 3, 0.5);
        let sr = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        assert!((sr.span_s - 2.0).abs() < 1e-12);
        for (_, r) in &sr.per_user {
            assert_eq!(r.duration_s, sr.span_s);
        }
    }

    #[test]
    fn folded_session_streams_the_collected_records() {
        // The folding path must observe exactly the records the
        // collecting path materializes — same values, same per-user
        // order — while returning empty `records` vectors itself.
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let specs = [
            UsageScenario::VrGaming.spec(),
            UsageScenario::ArAssistant.spec(),
        ];
        let session = SessionSpec::mixed("fold", &specs, 5, 0.007);
        let collected = sim.run_session(&session, &p, &mut LatencyGreedy::new());

        let mut streamed: BTreeMap<u32, Vec<ExecRecord>> = BTreeMap::new();
        let folded =
            sim.run_session_folded(&session, &p, &mut LatencyGreedy::new(), &mut |u, r| {
                streamed.entry(u).or_default().push(r.clone());
            });

        for (u, r) in &collected.per_user {
            assert_eq!(streamed.get(u).expect("user streamed"), &r.records, "{u}");
            let f = folded.user(*u).expect("user folded");
            assert!(f.records.is_empty());
            assert_eq!(f.stats, r.stats, "user {u} stats must match");
            assert_eq!(f.duration_s, r.duration_s);
        }
        assert_eq!(folded.span_s, collected.span_s);
        assert_eq!(folded.num_engines, collected.num_engines);
    }

    #[test]
    #[should_panic(expected = "no users")]
    fn empty_session_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let _ = sim.run_session(&SessionSpec::new("empty"), &p, &mut LatencyGreedy::new());
    }

    // ---- dynamic fleets: fault injection ----

    use crate::fault::{FaultProcess, RecoveryPolicy, ThrottleSpec};

    fn churny() -> FaultProcess {
        FaultProcess {
            failure_rate_per_s: 3.0,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 6.0,
            mean_preemption_s: 0.02,
            throttle: Some(ThrottleSpec {
                period_s: 0.2,
                duty: 0.5,
                factor: 0.5,
            }),
        }
    }

    fn fault_session() -> SessionSpec {
        SessionSpec::uniform("faulted", UsageScenario::VrGaming.spec(), 3, 0.01)
    }

    #[test]
    fn quiet_fault_process_is_bit_identical_to_clean_path() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        let clean = sim.run_session(&session, &p, &mut LatencyGreedy::new());
        let quiet = sim.run_session_faulted(
            &session,
            &p,
            &mut LatencyGreedy::new(),
            &FaultProcess::default(),
            RecoveryPolicy::Drop,
        );
        assert_eq!(clean, quiet);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        for policy in RecoveryPolicy::ALL {
            let a =
                sim.run_session_faulted(&session, &p, &mut LatencyGreedy::new(), &churny(), policy);
            let b =
                sim.run_session_faulted(&session, &p, &mut LatencyGreedy::new(), &churny(), policy);
            assert_eq!(a, b, "{policy}");
        }
    }

    #[test]
    fn drop_policy_attributes_preemptions_and_device_loss() {
        let p = UniformProvider::new(2, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        let r = sim.run_session_faulted(
            &session,
            &p,
            &mut LatencyGreedy::new(),
            &churny(),
            RecoveryPolicy::Drop,
        );
        let (mut preempted, mut lost) = (0u64, 0u64);
        for (_, u) in &r.per_user {
            for st in u.stats.values() {
                preempted += st.dropped_preempted;
                lost += st.dropped_device_lost;
                assert_eq!(
                    st.dropped_frames,
                    st.dropped_superseded
                        + st.dropped_upstream
                        + st.dropped_starved
                        + st.dropped_preempted
                        + st.dropped_device_lost,
                    "per-reason counters must partition dropped_frames"
                );
                assert_eq!(
                    st.total_frames,
                    st.executed_frames + st.dropped_frames,
                    "frames must be accounted exactly once"
                );
            }
        }
        assert!(preempted > 0, "churny process must preempt something");
        assert!(lost > 0, "churny process must lose a device mid-flight");
    }

    #[test]
    fn recovery_policies_conserve_frames_and_differ() {
        let p = UniformProvider::new(2, 0.004, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        let mut executed = Vec::new();
        for policy in RecoveryPolicy::ALL {
            let r =
                sim.run_session_faulted(&session, &p, &mut LatencyGreedy::new(), &churny(), policy);
            for (_, u) in &r.per_user {
                for (m, st) in &u.stats {
                    assert_eq!(
                        st.total_frames,
                        st.executed_frames + st.dropped_frames,
                        "{policy}/{m}"
                    );
                }
                // Records never overlap on one engine.
                for e in 0..r.num_engines {
                    let mut on_e: Vec<&ExecRecord> =
                        u.records.iter().filter(|x| x.engine == e).collect();
                    on_e.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
                    for w in on_e.windows(2) {
                        assert!(w[1].t_start >= w[0].t_end - 1e-12, "{policy} overlap");
                    }
                }
            }
            let ex: u64 = r
                .per_user
                .iter()
                .flat_map(|(_, u)| u.stats.values())
                .map(|s| s.executed_frames)
                .sum();
            executed.push(ex);
            if policy != RecoveryPolicy::Drop {
                // Recovery policies never attribute drops to faults.
                let fault_drops: u64 = r
                    .per_user
                    .iter()
                    .flat_map(|(_, u)| u.stats.values())
                    .map(|s| s.dropped_preempted + s.dropped_device_lost)
                    .sum();
                assert_eq!(fault_drops, 0, "{policy}");
            }
        }
        // Requeue/migrate recover work the drop policy discards.
        assert!(
            executed[1] >= executed[0] && executed[2] >= executed[0],
            "recovery must not execute less than dropping: {executed:?}"
        );
        assert!(
            executed.iter().any(|&e| e != executed[0]),
            "policies should produce different outcomes under churn"
        );
    }

    #[test]
    fn faulted_fold_matches_faulted_collect() {
        let p = UniformProvider::new(2, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        for policy in RecoveryPolicy::ALL {
            let collected =
                sim.run_session_faulted(&session, &p, &mut LatencyGreedy::new(), &churny(), policy);
            let mut streamed: BTreeMap<u32, Vec<ExecRecord>> = BTreeMap::new();
            let folded = sim.run_session_folded_faulted(
                &session,
                &p,
                &mut LatencyGreedy::new(),
                &churny(),
                policy,
                &mut |u, r| {
                    streamed.entry(u).or_default().push(r.clone());
                },
            );
            for (u, r) in &collected.per_user {
                // Faulted records stream in completion order; the same
                // stable start-time sort the collecting path applies
                // must reproduce its vectors exactly.
                let mut s = streamed.remove(u).unwrap_or_default();
                s.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
                assert_eq!(s, r.records, "{policy} user {u}");
                let f = folded.user(*u).expect("user folded");
                assert!(f.records.is_empty());
                assert_eq!(f.stats, r.stats, "{policy} user {u} stats");
            }
        }
    }

    #[test]
    fn failover_scheduler_runs_under_churn() {
        let p = UniformProvider::new(3, 0.003, 0.001);
        let sim = Simulator::new(SimConfig::default());
        let session = fault_session();
        let a = sim.run_session_faulted(
            &session,
            &p,
            &mut crate::FailoverAware::new(),
            &churny(),
            RecoveryPolicy::Migrate,
        );
        let b = sim.run_session_faulted(
            &session,
            &p,
            &mut crate::FailoverAware::new(),
            &churny(),
            RecoveryPolicy::Migrate,
        );
        assert_eq!(a, b, "failover-aware must stay deterministic");
        let ex: u64 = a
            .per_user
            .iter()
            .flat_map(|(_, u)| u.stats.values())
            .map(|s| s.executed_frames)
            .sum();
        assert!(ex > 0);
    }
}
