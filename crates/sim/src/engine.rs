//! The production event loop: calendar-queue core, struct-of-arrays
//! hot state, batched same-timestamp scheduling, and precomputed
//! per-scenario dispatch tables.
//!
//! This is the next-generation rewrite of the PR 3 heap engine (which
//! survives verbatim in [`crate::heap`] as a doc-hidden reference,
//! next to the original quadratic loop in [`crate::naive`]). The four
//! structural changes, each preserving the event order bit-for-bit:
//!
//! * **Calendar-queue completion list** — the `BinaryHeap` completion
//!   calendar becomes a bucketed [`CalendarQueue`](crate::calendar):
//!   O(1) amortized insert, drains that scan only the occupied-bucket
//!   bitmask, and a per-cohort unstable sort under the same total
//!   `(t, key, sensor_frame, token)` tie-break the heap popped in.
//! * **Struct-of-arrays slot state** — the `ready` and `waiting`
//!   queues are flat per-field arrays over the dense
//!   `user * NUM_MODELS + model` key, pre-sized at setup, so
//!   supersession, requeue, and dependency resolution touch cache
//!   lines instead of allocating or chasing options.
//! * **Batched cohort scheduling** — removals from the scheduler's
//!   [`PendingView`] buffer during a same-timestamp cohort (steps 1–3)
//!   are tombstones compacted once before dispatch, amortizing the
//!   buffer memmoves over the cohort instead of paying them per event.
//!   On top of that, schedulers that declare a closed-form
//!   [`DispatchKernel`] are driven through an indexed fast path — a
//!   segment-tree argmin over the scheduler's own total request order
//!   plus a bitmask free-engine set — that reproduces their `select`
//!   picks exactly while skipping the per-pick linear scans entirely.
//! * **Precomputed dispatch tables** — per-*scenario* dependency and
//!   reverse-dependency lists are deduplicated and flattened into CSR
//!   tables once per run ([`Tables`]), so the per-user setup cost and
//!   footprint collapse from `users × models` heap vectors to one
//!   shared table plus a `user → scenario` index.
//!
//! Output is **bit-identical** to [`crate::heap`] and
//! [`crate::naive`]; the differential property tests in
//! `tests/runtime_properties.rs` and the golden suite fixtures enforce
//! it across all schedulers, record modes, and fault policies. The
//! fault-injection semantics (revocation, recovery policies, deferred
//! emission) are unchanged from the heap engine — faulted runs always
//! take the generic `select` path, since kernels cannot observe
//! mid-run outages.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use xrbench_models::ModelId;
use xrbench_workload::ScenarioSpec;

use crate::calendar::{CalendarQueue, CompletionEv};
use crate::fault::{FaultAction, FaultKind, FaultTimeline, RecoveryPolicy};
use crate::provider::{CostProvider, DenseCostCache, NUM_MODELS};
use crate::result::{DropReason, ExecRecord, ModelStats, SimResult};
use crate::scheduler::{DispatchKernel, PendingView, Scheduler};
use crate::simulator::{trigger_draw, Pending, Resolution, SimConfig, EPS};

/// Sentinel for "slot empty" in the SoA queues (a real sequence number
/// never reaches it: sequence numbers count queue insertions).
const EMPTY_SEQ: u64 = u64::MAX;

/// Maps an `f64` to a `u64` whose unsigned order equals
/// `f64::total_cmp` order — the standard sign-flip trick, letting the
/// pick tree compare times as plain integers.
#[inline]
fn time_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The two total request orders every kernel-declaring scheduler uses
/// (see [`DispatchKernel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum PickOrder {
    /// `(t_deadline, t_req, model, user)` under `total_cmp`.
    Edf,
    /// `(t_req, model, user)` under `total_cmp`.
    Fifo,
}

/// A pick-tree key: three `u64` words compared lexicographically.
type PickKey = [u64; 3];

/// The "no entry" key. No real key can collide: the third word of an
/// EDF key (and second of a FIFO key) packs `(model, user)` below
/// `2^63`, and a FIFO key's third word is zero.
const EMPTY_PICK: PickKey = [u64::MAX; 3];

/// Encodes a ready entry under `order` so that unsigned lexicographic
/// comparison of the words reproduces the scheduler's request order.
/// Keys are unique: the ready queue holds at most one entry per
/// `(user, model)` and the `(model, user)` word totalizes the order.
#[inline]
fn pick_key(order: PickOrder, model: usize, user: u32, t_req: f64, t_deadline: f64) -> PickKey {
    let mu = ((model as u64) << 32) | u64::from(user);
    match order {
        PickOrder::Edf => [time_bits(t_deadline), time_bits(t_req), mu],
        PickOrder::Fifo => [time_bits(t_req), mu, 0],
    }
}

/// An iterative segment tree over the dense key space computing the
/// argmin of [`PickKey`]s — the kernel path's replacement for the
/// per-pick linear `min_by` scan. `set`/`clear` climb one root path
/// (O(log keys)); the minimum is read at the root in O(1). Because
/// keys are unique, the tie direction of `<=` is never exercised and
/// the argmin equals the first minimal element a linear scan returns.
struct PickTree {
    size: usize,
    key: Vec<PickKey>,
    arg: Vec<u32>,
}

impl PickTree {
    fn new(num_keys: usize) -> Self {
        let size = num_keys.next_power_of_two().max(2);
        Self {
            size,
            key: vec![EMPTY_PICK; 2 * size],
            arg: vec![0; 2 * size],
        }
    }

    fn set(&mut self, slot: usize, k: PickKey) {
        let mut i = self.size + slot;
        self.key[i] = k;
        self.arg[i] = slot as u32;
        while i > 1 {
            i >>= 1;
            let (l, r) = (2 * i, 2 * i + 1);
            if self.key[l] <= self.key[r] {
                self.key[i] = self.key[l];
                self.arg[i] = self.arg[l];
            } else {
                self.key[i] = self.key[r];
                self.arg[i] = self.arg[r];
            }
        }
    }

    fn clear(&mut self, slot: usize) {
        self.set(slot, EMPTY_PICK);
    }

    /// The dense key holding the minimal pick key, if any entry is
    /// queued.
    fn min_slot(&self) -> Option<usize> {
        if self.key[1] == EMPTY_PICK {
            None
        } else {
            Some(self.arg[1] as usize)
        }
    }
}

/// Per-entry metadata parallel to the scheduler-facing view buffer.
/// `seq` is strictly increasing across entries (position lookup by
/// binary search — dead entries stay in place until compaction so the
/// search invariant holds mid-cohort).
#[derive(Debug, Clone, Copy)]
struct BufMeta {
    seq: u64,
    key: u32,
    dead: bool,
}

/// How the ready queue indexes its entries for dispatch.
enum ReadyIndex {
    /// The generic path: an insertion-ordered [`PendingView`] buffer
    /// handed to `Scheduler::select`, with tombstoned removals
    /// compacted once per cohort.
    Buffer {
        views: Vec<PendingView>,
        meta: Vec<BufMeta>,
        dead: usize,
    },
    /// The kernel path: a [`PickTree`] argmin over the scheduler's
    /// declared request order. No view buffer is maintained at all.
    Tree { tree: PickTree, order: PickOrder },
}

/// The dispatchable-request queue in struct-of-arrays layout: one slot
/// per dense `(user, model)` key (`seq == EMPTY_SEQ` marks empty),
/// pre-sized at setup, plus the dispatch index.
struct Ready {
    seq: Vec<u64>,
    frame_id: Vec<u64>,
    sensor_frame: Vec<u64>,
    t_req: Vec<f64>,
    t_deadline: Vec<f64>,
    /// Remaining-work fraction: 1.0 for fresh frames, smaller for
    /// checkpointed work migrating off a lost engine.
    frac: Vec<f64>,
    count: usize,
    index: ReadyIndex,
}

impl Ready {
    fn new(num_keys: usize, kernel_order: Option<PickOrder>) -> Self {
        let index = match kernel_order {
            Some(order) => ReadyIndex::Tree {
                tree: PickTree::new(num_keys),
                order,
            },
            None => ReadyIndex::Buffer {
                views: Vec::with_capacity(num_keys),
                meta: Vec::with_capacity(num_keys),
                dead: 0,
            },
        };
        Self {
            seq: vec![EMPTY_SEQ; num_keys],
            frame_id: vec![0; num_keys],
            sensor_frame: vec![0; num_keys],
            t_req: vec![0.0; num_keys],
            t_deadline: vec![0.0; num_keys],
            frac: vec![1.0; num_keys],
            count: 0,
            index,
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn occupied(&self, key: usize) -> bool {
        self.seq[key] != EMPTY_SEQ
    }

    /// Detaches `key`'s queued entry from the dispatch index (tombstone
    /// in buffer mode, O(log keys) clear in tree mode).
    fn detach(&mut self, key: usize) {
        match &mut self.index {
            ReadyIndex::Buffer { meta, dead, .. } => {
                let pos = meta
                    .binary_search_by_key(&self.seq[key], |m| m.seq)
                    .expect("slot seq is queued");
                meta[pos].dead = true;
                *dead += 1;
            }
            ReadyIndex::Tree { tree, .. } => tree.clear(key),
        }
    }

    /// Attaches `key`'s (freshly written) slot to the dispatch index.
    fn attach(&mut self, key: usize, user: u32, model: ModelId) {
        match &mut self.index {
            ReadyIndex::Buffer { views, meta, .. } => {
                views.push(PendingView {
                    user,
                    model,
                    frame_id: self.frame_id[key],
                    t_req: self.t_req[key],
                    t_deadline: self.t_deadline[key],
                });
                meta.push(BufMeta {
                    seq: self.seq[key],
                    key: key as u32,
                    dead: false,
                });
            }
            ReadyIndex::Tree { tree, order } => {
                tree.set(
                    key,
                    pick_key(
                        *order,
                        key % NUM_MODELS,
                        user,
                        self.t_req[key],
                        self.t_deadline[key],
                    ),
                );
            }
        }
    }

    /// Pushes a new entry for `key`, dropping (freshness policy) the
    /// key's older queued frame if one exists.
    #[allow(clippy::too_many_arguments)]
    fn supersede_push(
        &mut self,
        key: usize,
        user: u32,
        model: ModelId,
        frame_id: u64,
        sensor_frame: u64,
        t_req: f64,
        t_deadline: f64,
        seq: u64,
        stats: &mut [ModelStats],
    ) {
        if self.occupied(key) {
            assert!(
                self.frame_id[key] < frame_id,
                "ready queue requires strictly increasing frame ids per (user, model)"
            );
            stats[key].record_drop(DropReason::Superseded);
            self.detach(key);
            self.count -= 1;
        }
        self.seq[key] = seq;
        self.frame_id[key] = frame_id;
        self.sensor_frame[key] = sensor_frame;
        self.t_req[key] = t_req;
        self.t_deadline[key] = t_deadline;
        self.frac[key] = 1.0;
        self.count += 1;
        self.attach(key, user, model);
    }

    /// Re-queues a revoked in-flight frame (requeue/migrate recovery)
    /// carrying its remaining-work fraction. The key's slot must be
    /// empty — if a newer frame is queued, freshness drops the revoked
    /// one instead of calling this.
    #[allow(clippy::too_many_arguments)]
    fn requeue_push(
        &mut self,
        key: usize,
        user: u32,
        model: ModelId,
        frame_id: u64,
        sensor_frame: u64,
        t_req: f64,
        t_deadline: f64,
        seq: u64,
        frac: f64,
    ) {
        assert!(!self.occupied(key), "requeue into an occupied slot");
        self.seq[key] = seq;
        self.frame_id[key] = frame_id;
        self.sensor_frame[key] = sensor_frame;
        self.t_req[key] = t_req;
        self.t_deadline[key] = t_deadline;
        self.frac[key] = frac;
        self.count += 1;
        self.attach(key, user, model);
    }

    /// Compacts tombstoned buffer entries (order-preserving, so the
    /// surviving views sit exactly where a sequence of immediate
    /// removals would have left them). Called once per cohort, before
    /// the dispatch loop hands `views` to the scheduler.
    fn compact(&mut self) {
        if let ReadyIndex::Buffer { views, meta, dead } = &mut self.index {
            if *dead == 0 {
                return;
            }
            let mut w = 0;
            for r in 0..meta.len() {
                if !meta[r].dead {
                    if w != r {
                        meta[w] = meta[r];
                        views[w] = views[r];
                    }
                    w += 1;
                }
            }
            meta.truncate(w);
            views.truncate(w);
            *dead = 0;
        }
    }

    /// The scheduler-facing view slice (buffer mode only; must be
    /// compacted).
    fn views(&self) -> &[PendingView] {
        match &self.index {
            ReadyIndex::Buffer { views, .. } => views,
            ReadyIndex::Tree { .. } => unreachable!("kernel path never calls select"),
        }
    }

    /// Removes the (live) buffer entry at position `pos` for dispatch,
    /// clearing its slot. Buffer mode only.
    fn remove_pos(&mut self, pos: usize) -> (usize, PendingView, u64, f64) {
        let ReadyIndex::Buffer { views, meta, .. } = &mut self.index else {
            unreachable!("kernel path dispatches by key")
        };
        let view = views.remove(pos);
        let m = meta.remove(pos);
        let key = m.key as usize;
        self.seq[key] = EMPTY_SEQ;
        self.count -= 1;
        (key, view, self.sensor_frame[key], self.frac[key])
    }

    /// The dense key the kernel should dispatch next (tree mode only).
    fn min_key(&self) -> Option<usize> {
        match &self.index {
            ReadyIndex::Tree { tree, .. } => tree.min_slot(),
            ReadyIndex::Buffer { .. } => unreachable!("generic path dispatches via select"),
        }
    }

    /// Removes `key`'s entry for kernel dispatch, returning
    /// `(frame_id, sensor_frame, t_req, t_deadline, frac)`.
    fn take_key(&mut self, key: usize) -> (u64, u64, f64, f64, f64) {
        let ReadyIndex::Tree { tree, .. } = &mut self.index else {
            unreachable!("generic path dispatches via select")
        };
        tree.clear(key);
        self.seq[key] = EMPTY_SEQ;
        self.count -= 1;
        (
            self.frame_id[key],
            self.sensor_frame[key],
            self.t_req[key],
            self.t_deadline[key],
            self.frac[key],
        )
    }
}

/// The free-engine set: a bitmask (O(1) membership, word-scan
/// iteration) plus — on the generic path only — the sorted `Vec`
/// mirror `Scheduler::select` receives as its `free_engines` slice.
struct FreeSet {
    list: Vec<usize>,
    words: Vec<u64>,
    count: usize,
    with_list: bool,
}

impl FreeSet {
    fn all(num_engines: usize, with_list: bool) -> Self {
        let mut words = vec![0u64; num_engines.div_ceil(64)];
        for e in 0..num_engines {
            words[e / 64] |= 1 << (e % 64);
        }
        Self {
            list: if with_list {
                (0..num_engines).collect()
            } else {
                Vec::new()
            },
            words,
            count: num_engines,
            with_list,
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn contains(&self, e: usize) -> bool {
        self.words[e / 64] >> (e % 64) & 1 == 1
    }

    /// Inserts `e` (no-op if present).
    fn insert(&mut self, e: usize) {
        if !self.contains(e) {
            self.words[e / 64] |= 1 << (e % 64);
            self.count += 1;
            if self.with_list {
                if let Err(pos) = self.list.binary_search(&e) {
                    self.list.insert(pos, e);
                }
            }
        }
    }

    /// Removes `e` (no-op if absent).
    fn remove(&mut self, e: usize) {
        if self.contains(e) {
            self.words[e / 64] &= !(1 << (e % 64));
            self.count -= 1;
            if self.with_list {
                if let Ok(pos) = self.list.binary_search(&e) {
                    self.list.remove(pos);
                }
            }
        }
    }

    /// The lowest free engine id `>= e`, if any.
    fn first_at_or_above(&self, e: usize) -> Option<usize> {
        let mut w = e / 64;
        if w >= self.words.len() {
            return None;
        }
        let mut word = self.words[w] & (u64::MAX << (e % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// The lowest free engine id (the set must be non-empty).
    fn lowest(&self) -> usize {
        self.first_at_or_above(0).expect("free set is non-empty")
    }

    /// Visits every free engine in ascending id order.
    fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut m = w;
            while m != 0 {
                f(wi * 64 + m.trailing_zeros() as usize);
                m &= m - 1;
            }
        }
    }
}

/// Lazily-filled per-model engine preference rows for the EDF kernels:
/// `rows[model]` lists every engine id sorted by the kernel's engine
/// rule, so a dispatch walks the row and takes the first free one —
/// the same engine `min_by` over the free slice returns. Rows are
/// pre-allocated flat at setup and *filled* on a model's first
/// dispatch (an in-place `sort_unstable`, so no mid-loop allocation).
struct PrefTable {
    rows: Vec<u32>,
    built: Vec<bool>,
    num_engines: usize,
}

impl PrefTable {
    fn new(num_engines: usize) -> Self {
        Self {
            rows: vec![0; NUM_MODELS * num_engines],
            built: vec![false; NUM_MODELS],
            num_engines,
        }
    }

    /// The preference row for model index `mi`, building it with
    /// `fill` on first use.
    fn row(&mut self, mi: usize, fill: impl FnOnce(&mut [u32])) -> &[u32] {
        let start = mi * self.num_engines;
        let row = &mut self.rows[start..start + self.num_engines];
        if !self.built[mi] {
            for (i, r) in row.iter_mut().enumerate() {
                *r = i as u32;
            }
            fill(row);
            self.built[mi] = true;
        }
        &self.rows[start..start + self.num_engines]
    }
}

/// Precomputed per-scenario dispatch tables: scenario specs are
/// deduplicated (sessions typically share a handful of scenarios
/// across all users) and their dependency / reverse-dependency lists
/// flattened into CSR arrays indexed by `scenario * NUM_MODELS +
/// model`. Per-user state shrinks to one `u32` scenario index, and
/// the hot loop reads contiguous slices instead of per-key `Vec`s.
struct Tables {
    /// Dense user index → deduplicated scenario index.
    spec_of_user: Vec<u32>,
    /// CSR offsets/payloads for each model's upstream dependencies.
    dep_off: Vec<u32>,
    dep_up: Vec<u8>,
    dep_prob: Vec<f64>,
    /// CSR offsets/payloads for each model's dependents (reverse
    /// dependencies), in the same per-scenario declaration order the
    /// heap engine builds.
    down_off: Vec<u32>,
    down: Vec<u8>,
}

impl Tables {
    fn build(specs: &[(u32, &ScenarioSpec)]) -> Self {
        let nm = NUM_MODELS;
        let mut uniq: Vec<&ScenarioSpec> = Vec::new();
        let mut spec_of_user = Vec::with_capacity(specs.len());
        for &(_, spec) in specs {
            let idx = uniq
                .iter()
                .position(|&u| std::ptr::eq(u, spec) || u == spec)
                .unwrap_or_else(|| {
                    uniq.push(spec);
                    uniq.len() - 1
                });
            spec_of_user.push(idx as u32);
        }

        let mut deps: Vec<Vec<(u8, f64)>> = vec![Vec::new(); uniq.len() * nm];
        let mut downstream: Vec<Vec<u8>> = vec![Vec::new(); uniq.len() * nm];
        for (si, spec) in uniq.iter().enumerate() {
            for m in &spec.models {
                let row = si * nm + m.model as usize;
                deps[row] = m
                    .deps
                    .iter()
                    .map(|d| (d.upstream as u8, d.trigger_probability))
                    .collect();
                for d in &m.deps {
                    downstream[si * nm + d.upstream as usize].push(m.model as u8);
                }
            }
        }

        let mut dep_off = Vec::with_capacity(deps.len() + 1);
        let mut dep_up = Vec::new();
        let mut dep_prob = Vec::new();
        dep_off.push(0u32);
        for row in &deps {
            for &(up, prob) in row {
                dep_up.push(up);
                dep_prob.push(prob);
            }
            dep_off.push(dep_up.len() as u32);
        }
        let mut down_off = Vec::with_capacity(downstream.len() + 1);
        let mut down = Vec::new();
        down_off.push(0u32);
        for row in &downstream {
            down.extend_from_slice(row);
            down_off.push(down.len() as u32);
        }

        Self {
            spec_of_user,
            dep_off,
            dep_up,
            dep_prob,
            down_off,
            down,
        }
    }

    #[inline]
    fn row(&self, key: usize) -> usize {
        self.spec_of_user[key / NUM_MODELS] as usize * NUM_MODELS + key % NUM_MODELS
    }

    #[inline]
    fn deps(&self, key: usize) -> (&[u8], &[f64]) {
        let r = self.row(key);
        let (a, b) = (self.dep_off[r] as usize, self.dep_off[r + 1] as usize);
        (&self.dep_up[a..b], &self.dep_prob[a..b])
    }

    #[inline]
    fn has_deps(&self, key: usize) -> bool {
        let r = self.row(key);
        self.dep_off[r] != self.dep_off[r + 1]
    }

    #[inline]
    fn downstream(&self, key: usize) -> &[u8] {
        let r = self.row(key);
        &self.down[self.down_off[r] as usize..self.down_off[r + 1] as usize]
    }
}

/// Per-key upstream resolution windows: a flat-array replacement for
/// the heap engine's `BTreeMap<u64, Resolution>` per key. Each window
/// is a sorted `(sensor_frame, resolution)` run with a retired-prefix
/// head index — retirement advances the head (O(1) per entry, exactly
/// the `BTreeMap` pop loop), lookups binary-search the live suffix,
/// and inserts append in the common in-order case. Retired prefixes
/// are physically dropped when the window refills, so capacity stays
/// proportional to the in-flight frame window.
struct ResolutionStore {
    wins: Vec<Window>,
}

#[derive(Default, Clone)]
struct Window {
    buf: Vec<(u64, Resolution)>,
    head: usize,
}

impl ResolutionStore {
    fn new(num_keys: usize) -> Self {
        Self {
            wins: vec![Window::default(); num_keys],
        }
    }

    fn insert(&mut self, key: usize, sf: u64, res: Resolution) {
        let win = &mut self.wins[key];
        if win.head == win.buf.len() {
            win.buf.clear();
            win.head = 0;
        } else if win.head > 0 && win.buf.len() == win.buf.capacity() {
            win.buf.drain(..win.head);
            win.head = 0;
        }
        match win.buf[win.head..].binary_search_by_key(&sf, |e| e.0) {
            Ok(i) => win.buf[win.head + i].1 = res,
            Err(i) => win.buf.insert(win.head + i, (sf, res)),
        }
    }

    fn get(&self, key: usize, sf: u64) -> Option<Resolution> {
        let win = &self.wins[key];
        win.buf[win.head..]
            .binary_search_by_key(&sf, |e| e.0)
            .ok()
            .map(|i| win.buf[win.head + i].1)
    }

    /// Retires every resolution with `sensor_frame < threshold`.
    fn retire_below(&mut self, key: usize, threshold: u64) {
        let win = &mut self.wins[key];
        while win.head < win.buf.len() && win.buf[win.head].0 < threshold {
            win.head += 1;
        }
        if win.head == win.buf.len() {
            win.buf.clear();
            win.head = 0;
        }
    }
}

/// Dependent frames parked until their upstreams resolve, in
/// struct-of-arrays layout (`seq == EMPTY_SEQ` marks empty).
struct Waiting {
    seq: Vec<u64>,
    frame_id: Vec<u64>,
    sensor_frame: Vec<u64>,
    t_req: Vec<f64>,
    t_deadline: Vec<f64>,
}

impl Waiting {
    fn new(num_keys: usize) -> Self {
        Self {
            seq: vec![EMPTY_SEQ; num_keys],
            frame_id: vec![0; num_keys],
            sensor_frame: vec![0; num_keys],
            t_req: vec![0.0; num_keys],
            t_deadline: vec![0.0; num_keys],
        }
    }

    #[inline]
    fn occupied(&self, key: usize) -> bool {
        self.seq[key] != EMPTY_SEQ
    }
}

/// Raw user id → dense user index. Dense ids (the common case: session
/// builders assign 0..n) get a direct lookup table; sparse ids fall
/// back to binary search.
enum UserIndex {
    /// `table[id] == idx + 1`, 0 marks an unknown id.
    Dense(Vec<u32>),
    /// Sorted `(id, idx)` pairs.
    Sparse(Vec<(u32, u32)>),
}

impl UserIndex {
    fn build(users: &[u32]) -> Self {
        let max = users.iter().copied().max().unwrap_or(0) as usize;
        if max < users.len() * 4 + 64 {
            let mut table = vec![0u32; max + 1];
            for (idx, &u) in users.iter().enumerate() {
                assert!(table[u as usize] == 0, "duplicate session user id {u}");
                table[u as usize] = idx as u32 + 1;
            }
            UserIndex::Dense(table)
        } else {
            let mut pairs: Vec<(u32, u32)> = users
                .iter()
                .enumerate()
                .map(|(idx, &u)| (u, idx as u32))
                .collect();
            pairs.sort_unstable();
            assert!(
                pairs.windows(2).all(|w| w[0].0 != w[1].0),
                "duplicate session user ids"
            );
            UserIndex::Sparse(pairs)
        }
    }

    #[inline]
    fn get(&self, user: u32) -> usize {
        match self {
            UserIndex::Dense(table) => {
                let v = table.get(user as usize).copied().unwrap_or(0);
                assert!(v != 0, "request for unknown user {user}");
                (v - 1) as usize
            }
            UserIndex::Sparse(pairs) => {
                let i = pairs
                    .binary_search_by_key(&user, |e| e.0)
                    .unwrap_or_else(|_| panic!("request for unknown user {user}"));
                pairs[i].1 as usize
            }
        }
    }
}

/// The smallest sensor frame any dependent of `key` may still look
/// up — resolutions of `key` below this watermark are unreachable.
fn retire_threshold(key: usize, nm: usize, tables: &Tables, floor: &[u64]) -> u64 {
    let user_base = key - key % nm;
    tables
        .downstream(key)
        .iter()
        .map(|&d| floor[user_base + d as usize])
        .min()
        .unwrap_or(u64::MAX)
}

/// After `key`'s watermark advanced: retire upstream resolutions no
/// dependent can reference anymore. Each resolution is retired at most
/// once, so the cost amortizes to a constant per completion.
fn retire_upstreams(
    key: usize,
    nm: usize,
    tables: &Tables,
    floor: &[u64],
    resolved: &mut ResolutionStore,
) {
    let user_base = key - key % nm;
    let (ups, _) = tables.deps(key);
    for &up in ups {
        let upkey = user_base + up as usize;
        let threshold = retire_threshold(upkey, nm, tables, floor);
        resolved.retire_below(upkey, threshold);
    }
}

/// Applies one due completion: records the resolution (unless already
/// unreachable), queues pass candidates for the waiting dependents it
/// may unblock, and frees its engine.
#[allow(clippy::too_many_arguments)]
fn process_completion(
    ev: CompletionEv,
    nm: usize,
    tables: &Tables,
    floor: &[u64],
    resolved: &mut ResolutionStore,
    waiting: &Waiting,
    pass: &mut BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    engine_token: &mut [Option<u64>],
    free: &mut FreeSet,
) {
    let key = ev.key as usize;
    if !tables.downstream(key).is_empty() {
        if ev.sensor_frame >= retire_threshold(key, nm, tables, floor) {
            resolved.insert(key, ev.sensor_frame, Resolution::Completed);
        }
        let user_base = key - key % nm;
        for &d in tables.downstream(key) {
            let dkey = user_base + d as usize;
            if waiting.occupied(dkey) && waiting.sensor_frame[dkey] == ev.sensor_frame {
                pass.push(std::cmp::Reverse((waiting.seq[dkey], dkey as u32)));
            }
        }
    }
    let engine = ev.engine as usize;
    if engine_token[engine] == Some(ev.token) {
        engine_token[engine] = None;
        free.insert(engine);
    }
}

/// Fault-injection inputs for one run: the expanded event schedule and
/// the recovery policy for revoked in-flight work.
pub(crate) struct FaultCtx<'a> {
    /// The expanded, time-sorted fault schedule.
    pub timeline: &'a FaultTimeline,
    /// What to do with in-flight work on a lost engine.
    pub policy: RecoveryPolicy,
}

/// One dispatched inference that may still be revoked by a fault.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    key: u32,
    view: PendingView,
    sensor_frame: u64,
    t_start: f64,
    t_end: f64,
    /// Remaining-work fraction this dispatch carried.
    frac: f64,
    energy_j: f64,
}

/// Live fault-injection state for one run.
struct FaultState<'a> {
    events: &'a [crate::fault::FaultEvent],
    cursor: usize,
    policy: RecoveryPolicy,
    engine_up: Vec<bool>,
    /// Current capacity multiplier per engine, sampled at dispatch
    /// time (a throttle landing mid-flight does not stretch work
    /// already on the engine).
    capacity: Vec<f64>,
    /// In-flight dispatches by token, for revocation and for the
    /// deferred stats/record emission at completion.
    open: BTreeMap<u64, InFlight>,
    /// Tokens whose dispatch was revoked; their stale calendar
    /// completions are skipped.
    revoked: BTreeSet<u64>,
}

/// Emits the deferred stats and execution record for a completion that
/// survived to its scheduled end (faulted mode only; the fault-free
/// path emits at dispatch).
fn emit_completion(
    inf: &InFlight,
    ev: &CompletionEv,
    nm: usize,
    users_raw: &[u32],
    stats: &mut [ModelStats],
    records: &mut [Vec<ExecRecord>],
    mode: &mut RecordMode<'_>,
) {
    let key = ev.key as usize;
    stats[key].executed_frames += 1;
    if ev.t > inf.view.t_deadline {
        stats[key].missed_deadlines += 1;
    }
    let record = ExecRecord {
        model: inf.view.model,
        frame_id: inf.view.frame_id,
        sensor_frame: ev.sensor_frame,
        engine: ev.engine as usize,
        t_req: inf.view.t_req,
        t_deadline: inf.view.t_deadline,
        t_start: inf.t_start,
        t_end: ev.t,
        energy_j: inf.energy_j,
    };
    match mode {
        RecordMode::Collect => records[key / nm].push(record),
        RecordMode::Fold(sink) => sink(users_raw[key / nm], &record),
    }
}

/// Where completed inferences go: materialized per-user vectors (the
/// classic path), or streamed into a fold callback so the run's memory
/// stays proportional to the in-flight window instead of the request
/// count (the fleet path).
///
/// Records reach the sink in dispatch order, which is nondecreasing in
/// `t_start` — exactly the order `SimResult::records` lists them (the
/// fault-free path emits pre-sorted and skips the final sort
/// entirely). The two modes are otherwise bit-identical: same events,
/// same stats, same tie-breaks.
pub(crate) enum RecordMode<'a> {
    /// Retain every [`ExecRecord`] in per-user vectors.
    Collect,
    /// Stream each record to the callback as `(user, record)` and
    /// retain nothing.
    Fold(&'a mut dyn FnMut(u32, &ExecRecord)),
}

/// The evolving state of a kernel-driven dispatch run (see
/// [`DispatchKernel`]): exported back to the scheduler through
/// [`Scheduler::absorb_kernel`] at run end.
enum KernelState {
    EdfFastest,
    FifoRotate { next_engine: usize },
    FifoLeastLoaded { loads: Vec<f64> },
    EdfOutages { outages: Vec<u64> },
}

/// Splits a declared kernel into the request order and the engine-rule
/// state, pre-sizing carried vectors to the engine count so the hot
/// loop never resizes them (reads beyond the declared length are 0 by
/// the kernel contract, so this is semantics-preserving).
fn kernel_setup(kernel: DispatchKernel, num_engines: usize) -> (PickOrder, KernelState) {
    match kernel {
        DispatchKernel::EdfFastestEngine => (PickOrder::Edf, KernelState::EdfFastest),
        DispatchKernel::FifoRotatingEngine { next_engine } => {
            (PickOrder::Fifo, KernelState::FifoRotate { next_engine })
        }
        DispatchKernel::FifoLeastLoadedEngine { mut loads } => {
            if loads.len() < num_engines {
                loads.resize(num_engines, 0.0);
            }
            (PickOrder::Fifo, KernelState::FifoLeastLoaded { loads })
        }
        DispatchKernel::EdfFewestOutagesEngine { mut outages } => {
            if outages.len() < num_engines {
                outages.resize(num_engines, 0);
            }
            (PickOrder::Edf, KernelState::EdfOutages { outages })
        }
    }
}

/// Packages the evolved kernel state for [`Scheduler::absorb_kernel`].
fn kernel_export(state: KernelState) -> DispatchKernel {
    match state {
        KernelState::EdfFastest => DispatchKernel::EdfFastestEngine,
        KernelState::FifoRotate { next_engine } => {
            DispatchKernel::FifoRotatingEngine { next_engine }
        }
        KernelState::FifoLeastLoaded { loads } => DispatchKernel::FifoLeastLoadedEngine { loads },
        KernelState::EdfOutages { outages } => DispatchKernel::EdfFewestOutagesEngine { outages },
    }
}

/// The production event loop over user-tagged requests (`requests`
/// must be sorted by `t_req`, and strictly frame-monotone per
/// `(user, model)`). Returns one [`SimResult`] per user. Bit-identical
/// to [`crate::naive::run_tagged_naive`] and [`crate::heap`].
pub(crate) fn run_tagged(
    config: SimConfig,
    specs: &[(u32, &ScenarioSpec)],
    requests: Vec<Pending>,
    provider: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    duration_s: f64,
) -> BTreeMap<u32, SimResult> {
    run_tagged_mode(
        config,
        specs,
        requests,
        provider,
        scheduler,
        duration_s,
        RecordMode::Collect,
    )
}

/// [`run_tagged`] with an explicit [`RecordMode`]. In `Fold` mode the
/// returned [`SimResult`]s carry empty `records` vectors (stats are
/// still complete).
pub(crate) fn run_tagged_mode(
    config: SimConfig,
    specs: &[(u32, &ScenarioSpec)],
    requests: Vec<Pending>,
    provider: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    duration_s: f64,
    mode: RecordMode<'_>,
) -> BTreeMap<u32, SimResult> {
    run_tagged_faulted(
        config, specs, requests, provider, scheduler, duration_s, mode, None,
    )
}

/// [`run_tagged_mode`] with optional fault injection. With
/// `faults: None` this *is* the fault-free loop — no fault state is
/// allocated and every fault branch is behind an `Option` check, so
/// the classic path stays bit-identical to the reference loops.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tagged_faulted(
    config: SimConfig,
    specs: &[(u32, &ScenarioSpec)],
    requests: Vec<Pending>,
    provider: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    duration_s: f64,
    mut mode: RecordMode<'_>,
    faults: Option<FaultCtx<'_>>,
) -> BTreeMap<u32, SimResult> {
    assert!(provider.num_engines() > 0, "provider must expose engines");

    let nm = NUM_MODELS;
    let users_raw: Vec<u32> = specs.iter().map(|&(u, _)| u).collect();
    let uidx = UserIndex::build(&users_raw);
    let num_users = users_raw.len();
    let num_keys = num_users * nm;

    // Precomputed per-scenario dispatch tables (deduplicated CSR).
    let tables = Tables::build(specs);
    // Keys that must appear in the output stats (spec members), plus
    // any key a request actually touched.
    let mut touched = vec![false; num_keys];
    for (ui, &(_, spec)) in specs.iter().enumerate() {
        for m in &spec.models {
            touched[ui * nm + m.model as usize] = true;
        }
    }

    // The kernel fast path runs only fault-free (kernels cannot
    // observe mid-run outages) and only for schedulers that declare
    // one; everything else takes the generic `select` path.
    let num_engines = provider.num_engines();
    let kernel = if faults.is_none() {
        scheduler
            .dispatch_kernel()
            .map(|k| kernel_setup(k, num_engines))
    } else {
        None
    };
    let (kernel_order, mut kstate) = match kernel {
        Some((o, s)) => (Some(o), Some(s)),
        None => (None, None),
    };
    let mut prefs = PrefTable::new(num_engines);

    // Runtime state, pre-sized from spec-derived bounds: the calendar
    // and free set from the engine count, the queues and tables from
    // the dense key count.
    let cache = DenseCostCache::new(provider);
    let mut free = FreeSet::all(num_engines, kernel_order.is_none());
    let mut engine_token: Vec<Option<u64>> = vec![None; num_engines];
    let mut next_token = 0u64;
    let mut next_seq = 0u64;
    let mut calendar = CalendarQueue::with_capacity(num_engines);
    // Due-but-stashed events: calendar entries discovered at or before
    // `now + EPS` while looking for the next event time (possible only
    // for degenerate sub-epsilon latencies); the reference loop
    // processes them at the *next* event time, so we do too.
    let mut due: Vec<CompletionEv> = Vec::with_capacity(num_engines * 2 + 8);
    let mut ready = Ready::new(num_keys, kernel_order);
    let mut waiting = Waiting::new(num_keys);
    let mut pass: BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        BinaryHeap::with_capacity(num_keys + 16);
    let mut deferred: Vec<(u64, u32)> = Vec::with_capacity(32);
    let mut resolved = ResolutionStore::new(num_keys);
    let mut floor = vec![0u64; num_keys];
    let mut stats: Vec<ModelStats> = vec![ModelStats::default(); num_keys];
    let mut last_frame: Vec<Option<(u64, u64)>> = vec![None; num_keys];
    let mut records: Vec<Vec<ExecRecord>> = vec![Vec::new(); num_users];

    let mut fstate = faults.map(|f| FaultState {
        events: f.timeline.events(),
        cursor: 0,
        policy: f.policy,
        engine_up: vec![true; num_engines],
        capacity: vec![1.0; num_engines],
        open: BTreeMap::new(),
        revoked: BTreeSet::new(),
    });

    let mut arrivals = requests.into_iter().peekable();
    let mut now = 0.0_f64;

    loop {
        // 1. Process completions due now (stashed first, then the
        //    calendar drain — sorted per cohort under the same total
        //    order the heap popped in) and re-queue cascade candidates
        //    deferred from the previous pass.
        let fresh = due.len();
        calendar.drain_due(now + EPS, &mut due);
        due[fresh..].sort_unstable();
        for ev in due.drain(..) {
            if let Some(f) = fstate.as_mut() {
                if f.revoked.remove(&ev.token) {
                    // The dispatch was revoked by a fault; this is its
                    // stale completion.
                    continue;
                }
                if let Some(inf) = f.open.remove(&ev.token) {
                    emit_completion(
                        &inf,
                        &ev,
                        nm,
                        &users_raw,
                        &mut stats,
                        &mut records,
                        &mut mode,
                    );
                }
            }
            process_completion(
                ev,
                nm,
                &tables,
                &floor,
                &mut resolved,
                &waiting,
                &mut pass,
                &mut engine_token,
                &mut free,
            );
        }
        for c in deferred.drain(..) {
            pass.push(std::cmp::Reverse(c));
        }

        // 1b. Apply fault events due now: engines leave/rejoin the
        //     free set, in-flight work on a lost engine is revoked and
        //     recovered per policy, and capacity multipliers update.
        if let Some(f) = fstate.as_mut() {
            while f.cursor < f.events.len() && f.events[f.cursor].t <= now + EPS {
                let fev = f.events[f.cursor];
                f.cursor += 1;
                let engine = fev.engine as usize;
                if engine >= num_engines {
                    continue;
                }
                match fev.action {
                    FaultAction::Down(kind) => {
                        if !f.engine_up[engine] {
                            continue;
                        }
                        f.engine_up[engine] = false;
                        free.remove(engine);
                        scheduler.on_engine_down(engine, now);
                        let Some(token) = engine_token[engine].take() else {
                            continue;
                        };
                        f.revoked.insert(token);
                        let inf = f.open.remove(&token).expect("busy engine has open entry");
                        let key = inf.key as usize;
                        match f.policy {
                            RecoveryPolicy::Drop => {
                                let reason = match kind {
                                    FaultKind::Failure => DropReason::DeviceLost,
                                    FaultKind::Preemption => DropReason::Preempted,
                                };
                                stats[key].record_drop(reason);
                                if !tables.downstream(key).is_empty() {
                                    // Dependents see the same Dropped
                                    // resolution an untriggered frame
                                    // would leave behind.
                                    if inf.sensor_frame
                                        >= retire_threshold(key, nm, &tables, &floor)
                                    {
                                        resolved.insert(key, inf.sensor_frame, Resolution::Dropped);
                                    }
                                    let user_base = key - key % nm;
                                    for &d in tables.downstream(key) {
                                        let dkey = user_base + d as usize;
                                        if waiting.occupied(dkey)
                                            && waiting.sensor_frame[dkey] == inf.sensor_frame
                                        {
                                            pass.push(std::cmp::Reverse((
                                                waiting.seq[dkey],
                                                dkey as u32,
                                            )));
                                        }
                                    }
                                }
                            }
                            RecoveryPolicy::Requeue | RecoveryPolicy::Migrate => {
                                if ready.occupied(key) {
                                    // A newer frame is already queued:
                                    // freshness drops the revoked one.
                                    stats[key].record_drop(DropReason::Superseded);
                                } else {
                                    // In-flight implies a super-epsilon
                                    // span, so the fraction is well
                                    // defined and positive.
                                    let frac = if f.policy == RecoveryPolicy::Migrate {
                                        ((inf.t_end - now) / (inf.t_end - inf.t_start))
                                            .clamp(0.0, 1.0)
                                            * inf.frac
                                    } else {
                                        1.0
                                    };
                                    let seq = next_seq;
                                    next_seq += 1;
                                    ready.requeue_push(
                                        key,
                                        inf.view.user,
                                        inf.view.model,
                                        inf.view.frame_id,
                                        inf.sensor_frame,
                                        inf.view.t_req,
                                        inf.view.t_deadline,
                                        seq,
                                        frac,
                                    );
                                }
                            }
                        }
                    }
                    FaultAction::Up => {
                        if f.engine_up[engine] {
                            continue;
                        }
                        f.engine_up[engine] = true;
                        free.insert(engine);
                    }
                    FaultAction::Capacity(c) => {
                        f.capacity[engine] = c;
                    }
                }
            }
        }

        // 2. Ingest arrivals due now.
        while arrivals.peek().is_some_and(|p| p.req.t_req <= now + EPS) {
            let p = arrivals.next().expect("peeked");
            let ui = uidx.get(p.user);
            let key = ui * nm + p.req.model as usize;
            if let Some((lf, lsf)) = last_frame[key] {
                assert!(
                    p.req.frame_id > lf && p.req.sensor_frame > lsf,
                    "requests for {} (user {}) must have strictly increasing \
                     frame_id and sensor_frame",
                    p.req.model,
                    p.user
                );
            }
            last_frame[key] = Some((p.req.frame_id, p.req.sensor_frame));
            touched[key] = true;
            stats[key].total_frames += 1;
            if tables.has_deps(key) {
                // Freshness: a newer dependent frame supersedes an
                // older one still waiting for its upstream.
                if waiting.occupied(key) {
                    stats[key].record_drop(DropReason::Superseded);
                }
                let seq = next_seq;
                next_seq += 1;
                waiting.seq[key] = seq;
                waiting.frame_id[key] = p.req.frame_id;
                waiting.sensor_frame[key] = p.req.sensor_frame;
                waiting.t_req[key] = p.req.t_req;
                waiting.t_deadline[key] = p.req.t_deadline;
                // Lookups now target this frame and nothing older.
                if p.req.sensor_frame > floor[key] {
                    floor[key] = p.req.sensor_frame;
                    retire_upstreams(key, nm, &tables, &floor, &mut resolved);
                }
                pass.push(std::cmp::Reverse((seq, key as u32)));
            } else {
                let seq = next_seq;
                next_seq += 1;
                ready.supersede_push(
                    key,
                    p.user,
                    p.req.model,
                    p.req.frame_id,
                    p.req.sensor_frame,
                    p.req.t_req,
                    p.req.t_deadline,
                    seq,
                    &mut stats,
                );
            }
        }

        // 3. Resolve waiting dependents whose upstream is decided —
        //    candidates only, in waiting-queue (seq) order, exactly
        //    mirroring the reference loop's linear scan.
        while let Some(std::cmp::Reverse((seq, key32))) = pass.pop() {
            let key = key32 as usize;
            if !waiting.occupied(key) || waiting.seq[key] != seq {
                continue; // superseded since candidacy
            }
            let user_base = key - key % nm;
            let w_sf = waiting.sensor_frame[key];
            // Are all upstream resolutions decided?
            let (ups, probs) = tables.deps(key);
            let mut any_dropped = Some(false);
            for &up in ups {
                match resolved.get(user_base + up as usize, w_sf) {
                    None => {
                        any_dropped = None;
                        break;
                    }
                    Some(Resolution::Dropped) => any_dropped = any_dropped.map(|_| true),
                    Some(Resolution::Completed) => {}
                }
            }
            let Some(any_dropped) = any_dropped else {
                continue; // upstream still in flight; stays waiting
            };
            let w_frame = waiting.frame_id[key];
            let w_t_req = waiting.t_req[key];
            let w_deadline = waiting.t_deadline[key];
            waiting.seq[key] = EMPTY_SEQ;
            floor[key] = w_sf + 1;
            retire_upstreams(key, nm, &tables, &floor, &mut resolved);
            let model = ModelId::ALL[key % nm];
            let user = users_raw[key / nm];
            if any_dropped {
                stats[key].record_drop(DropReason::UpstreamDropped);
            } else if ups.iter().zip(probs).all(|(&up, &prob)| {
                // Exactly one seeded draw per (user, model, upstream,
                // frame) decision: the waiting slot holds one frame
                // per key and is cleared before this branch runs, and
                // frame ids are strictly increasing, so no decision
                // can ever be re-evaluated — no memo table needed.
                trigger_draw(
                    config.seed,
                    user,
                    model,
                    ModelId::ALL[up as usize],
                    w_frame,
                    prob,
                )
            }) {
                let seq = next_seq;
                next_seq += 1;
                ready.supersede_push(
                    key, user, model, w_frame, w_sf, w_t_req, w_deadline, seq, &mut stats,
                );
            } else {
                // Legitimately deactivated: not streamed work for QoE
                // purposes.
                stats[key].untriggered_frames += 1;
                stats[key].total_frames -= 1;
                if !tables.downstream(key).is_empty() {
                    if w_sf >= retire_threshold(key, nm, &tables, &floor) {
                        resolved.insert(key, w_sf, Resolution::Dropped);
                    }
                    // Cascade: this may unblock further dependents.
                    // Forward (later-queued) ones join this pass, as
                    // the reference scan would reach them; backward
                    // ones wait for the next event time, as the
                    // reference scan already passed them.
                    for &d in tables.downstream(key) {
                        let dkey = user_base + d as usize;
                        if waiting.occupied(dkey) && waiting.sensor_frame[dkey] == w_sf {
                            if waiting.seq[dkey] > seq {
                                pass.push(std::cmp::Reverse((waiting.seq[dkey], dkey as u32)));
                            } else {
                                deferred.push((waiting.seq[dkey], dkey as u32));
                            }
                        }
                    }
                }
            }
        }

        // 4. Dispatch ready requests onto free engines.
        match &mut kstate {
            None => {
                // Generic path: compact the cohort's tombstones once,
                // then drive the scheduler's own `select`.
                ready.compact();
                while !free.is_empty() && !ready.is_empty() {
                    let Some((ri, engine)) =
                        scheduler.select(ready.views(), &free.list, &cache, now)
                    else {
                        break;
                    };
                    assert!(
                        ri < ready.views().len(),
                        "scheduler returned bad request index"
                    );
                    assert!(
                        free.contains(engine),
                        "scheduler returned busy engine {engine}"
                    );
                    let (key, view, sensor_frame, frac) = ready.remove_pos(ri);
                    let cost = cache.cost(view.model, engine);
                    let t_end;
                    if let Some(f) = fstate.as_ref() {
                        // Faulted dispatches pay only the remaining-work
                        // fraction, stretched by the engine's current
                        // thermal capacity; stats and records wait for
                        // completion because the dispatch may yet be
                        // revoked.
                        t_end = now + cost.latency_s * frac / f.capacity[engine];
                    } else {
                        t_end = now + cost.latency_s;
                        stats[key].executed_frames += 1;
                        if t_end > view.t_deadline {
                            stats[key].missed_deadlines += 1;
                        }
                        let record = ExecRecord {
                            model: view.model,
                            frame_id: view.frame_id,
                            sensor_frame,
                            engine,
                            t_req: view.t_req,
                            t_deadline: view.t_deadline,
                            t_start: now,
                            t_end,
                            energy_j: cost.energy_j,
                        };
                        match &mut mode {
                            RecordMode::Collect => records[key / nm].push(record),
                            RecordMode::Fold(sink) => sink(users_raw[key / nm], &record),
                        }
                    }
                    let token = next_token;
                    next_token += 1;
                    if let Some(f) = fstate.as_mut() {
                        f.open.insert(
                            token,
                            InFlight {
                                key: key as u32,
                                view,
                                sensor_frame,
                                t_start: now,
                                t_end,
                                frac,
                                energy_j: cost.energy_j * frac,
                            },
                        );
                    }
                    if t_end > now + EPS {
                        engine_token[engine] = Some(token);
                        free.remove(engine);
                    }
                    // Degenerate sub-epsilon latencies leave the engine
                    // free, matching the reference loop's fresh free-set
                    // rescan; the stale token then never matches at
                    // completion time.
                    calendar.push(CompletionEv {
                        t: t_end,
                        key: key as u32,
                        sensor_frame,
                        engine: engine as u32,
                        token,
                    });
                }
            }
            Some(kstate) => {
                // Kernel path (always fault-free): indexed argmin over
                // the declared request order, engine rule replayed
                // exactly.
                while !free.is_empty() {
                    let Some(key) = ready.min_key() else { break };
                    let mi = key % nm;
                    let model = ModelId::ALL[mi];
                    let engine =
                        match kstate {
                            KernelState::EdfFastest => {
                                let row = prefs.row(mi, |row| {
                                    row.sort_unstable_by(|&a, &b| {
                                        cache
                                            .cost(model, a as usize)
                                            .latency_s
                                            .total_cmp(&cache.cost(model, b as usize).latency_s)
                                            .then(a.cmp(&b))
                                    });
                                });
                                *row.iter().find(|&&e| free.contains(e as usize)).expect(
                                    "free set is non-empty, so some preferred engine is free",
                                ) as usize
                            }
                            KernelState::EdfOutages { outages } => {
                                let row = prefs.row(mi, |row| {
                                    row.sort_unstable_by(|&a, &b| {
                                        outages[a as usize]
                                            .cmp(&outages[b as usize])
                                            .then(
                                                cache.cost(model, a as usize).latency_s.total_cmp(
                                                    &cache.cost(model, b as usize).latency_s,
                                                ),
                                            )
                                            .then(a.cmp(&b))
                                    });
                                });
                                *row.iter().find(|&&e| free.contains(e as usize)).expect(
                                    "free set is non-empty, so some preferred engine is free",
                                ) as usize
                            }
                            KernelState::FifoRotate { next_engine } => {
                                let e = free
                                    .first_at_or_above(*next_engine)
                                    .unwrap_or_else(|| free.lowest());
                                // Mirrors RoundRobin::select's cursor
                                // update, including reading the free count
                                // *before* this dispatch occupies `e`.
                                *next_engine = (e + 1) % usize::max(1, e + 1).max(free.count);
                                e
                            }
                            KernelState::FifoLeastLoaded { loads } => {
                                let mut best = usize::MAX;
                                let mut best_load = f64::INFINITY;
                                free.for_each(|e| {
                                    // Strictly-less keeps the lowest id on
                                    // ties, matching `min_by`'s first-min.
                                    if loads[e].total_cmp(&best_load).is_lt() {
                                        best_load = loads[e];
                                        best = e;
                                    }
                                });
                                loads[best] += cache.cost(model, best).latency_s;
                                best
                            }
                        };
                    let (frame_id, sensor_frame, t_req, t_deadline, _frac) = ready.take_key(key);
                    let cost = cache.cost(model, engine);
                    let t_end = now + cost.latency_s;
                    stats[key].executed_frames += 1;
                    if t_end > t_deadline {
                        stats[key].missed_deadlines += 1;
                    }
                    let record = ExecRecord {
                        model,
                        frame_id,
                        sensor_frame,
                        engine,
                        t_req,
                        t_deadline,
                        t_start: now,
                        t_end,
                        energy_j: cost.energy_j,
                    };
                    match &mut mode {
                        RecordMode::Collect => records[key / nm].push(record),
                        RecordMode::Fold(sink) => sink(users_raw[key / nm], &record),
                    }
                    let token = next_token;
                    next_token += 1;
                    if t_end > now + EPS {
                        engine_token[engine] = Some(token);
                        free.remove(engine);
                    }
                    calendar.push(CompletionEv {
                        t: t_end,
                        key: key as u32,
                        sensor_frame,
                        engine: engine as u32,
                        token,
                    });
                }
            }
        }

        // 5. Advance to the next event strictly after `now`, stashing
        //    degenerate sub-epsilon completions for the next pass.
        let mut next = f64::INFINITY;
        if let Some(p) = arrivals.peek() {
            next = next.min(p.req.t_req);
        }
        let fresh = due.len();
        calendar.drain_due(now + EPS, &mut due);
        due[fresh..].sort_unstable();
        if let Some(t) = calendar.next_time() {
            next = next.min(t);
        }
        if let Some(f) = &fstate {
            // Fault events only matter while some work can still use
            // the engines they toggle: with nothing queued, in flight,
            // or arriving, the remaining toggles are no-ops (waiting
            // frames can never resolve without completions).
            let work_pending = arrivals.peek().is_some()
                || !calendar.is_empty()
                || !due.is_empty()
                || !ready.is_empty();
            if work_pending {
                if let Some(fev) = f.events.get(f.cursor) {
                    next = next.min(fev.t);
                }
            }
        }
        if next.is_infinite() {
            break;
        }
        now = next;
    }

    // Hand the evolved kernel state back so back-to-back runs on one
    // scheduler instance behave as if `select` had been called.
    if let Some(kstate) = kstate {
        scheduler.absorb_kernel(kernel_export(kstate));
    }

    // Completions stashed as due when the loop ended (possible only
    // with sub-epsilon latencies) did execute; surface their deferred
    // records in faulted mode (the clean path emitted at dispatch).
    if let Some(f) = fstate.as_mut() {
        for ev in due.drain(..) {
            if f.revoked.remove(&ev.token) {
                continue;
            }
            if let Some(inf) = f.open.remove(&ev.token) {
                emit_completion(
                    &inf,
                    &ev,
                    nm,
                    &users_raw,
                    &mut stats,
                    &mut records,
                    &mut mode,
                );
            }
        }
    }

    // Anything still queued at drain time never got to run within the
    // run's horizon; count as dropped.
    for (key, st) in stats.iter_mut().enumerate() {
        if waiting.occupied(key) {
            st.record_drop(DropReason::Starved);
        }
        if ready.occupied(key) {
            st.record_drop(DropReason::Starved);
        }
    }

    // Assemble one SimResult per user. Fault-free records were emitted
    // in dispatch order — already nondecreasing in `t_start` — so the
    // heap engine's final re-sort is skipped (its stable sort on
    // sorted input is the identity); faulted records were emitted at
    // completion and still need the stable start-time sort.
    let emit_at_completion = fstate.is_some();
    let mut out = BTreeMap::new();
    for (ui, &(user, _)) in specs.iter().enumerate() {
        let mut recs = std::mem::take(&mut records[ui]);
        if emit_at_completion {
            recs.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        } else {
            debug_assert!(
                recs.windows(2).all(|w| w[0].t_start <= w[1].t_start),
                "fault-free dispatch order must be nondecreasing in t_start"
            );
        }
        let mut user_stats: BTreeMap<ModelId, ModelStats> = BTreeMap::new();
        for (mi, &m) in ModelId::ALL.iter().enumerate() {
            let key = ui * nm + mi;
            if touched[key] {
                user_stats.insert(m, stats[key].clone());
            }
        }
        out.insert(
            user,
            SimResult {
                records: recs,
                stats: user_stats,
                num_engines,
                duration_s,
            },
        );
    }
    out
}
