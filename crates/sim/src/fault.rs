//! The deterministic availability/fault process for dynamic fleets.
//!
//! Real XR deployments are not static: devices churn in and out,
//! engines get preempted by the OS, and thermal throttling derates
//! compute mid-session. This module models all of that as a
//! **seed-derived timeline of engine events** — engine down (failure
//! or preemption), engine up (recovery), and capacity changes
//! (throttling) — that the discrete-event engine injects between
//! completions and arrivals.
//!
//! Determinism is the design constraint everything here serves:
//!
//! * A [`FaultProcess`] is pure data (rates, mean durations, an
//!   optional throttle wave). [`FaultProcess::timeline`] expands it
//!   into a concrete [`FaultTimeline`] as a pure function of
//!   `(process, seed, engines, span)` — per-engine RNG streams are
//!   derived by splitmix64 so engine `k`'s events never depend on how
//!   many other engines exist.
//! * The timeline seed is derived from the *simulation* seed (see
//!   [`fault_seed`]). In a fleet, every replica's `SimConfig` seed is
//!   already `replica_seed(base, group, replica)`, so the fault
//!   timeline is part of the replica's identity and fleet merges stay
//!   exact for any worker count.
//! * Down/up events per engine are strictly alternating: failure and
//!   preemption intervals are generated independently and union-merged,
//!   with the merged interval attributed to whichever process started
//!   it (that attribution picks the [`crate::DropReason`] under the
//!   [`RecoveryPolicy::Drop`] policy).
//!
//! A process with zero rates and no effective throttle is *quiet*
//! ([`FaultProcess::is_quiet`]): runs with a quiet process are routed
//! through the unmodified fault-free engine path and are bit-identical
//! to runs without any fault process at all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt mixed into the simulation seed to derive the fault-timeline
/// seed, so the availability process never correlates with load-gen
/// jitter or cascade trigger draws derived from the same seed.
pub const FAULT_SEED_SALT: u64 = 0x5DEE_CE66_D1CE_FA17;

/// splitmix64 finalization mix — the same construction the fleet layer
/// uses for replica seeds.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Derives the fault-timeline seed from a simulation seed. Part of the
/// public contract: a fleet replica's fault timeline is
/// `fault_seed(replica_seed(base, group, replica))`.
pub fn fault_seed(sim_seed: u64) -> u64 {
    mix64(sim_seed ^ FAULT_SEED_SALT)
}

/// What kind of outage took an engine down — determines the
/// [`crate::DropReason`] attributed to revoked in-flight work under
/// [`RecoveryPolicy::Drop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Engine/device failure (churn): in-flight work is `DeviceLost`.
    Failure,
    /// OS/runtime preemption: in-flight work is `Preempted`.
    Preemption,
}

/// One timeline action applied to a single engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The engine goes offline; any in-flight inference is revoked.
    Down(FaultKind),
    /// The engine comes back online and can be dispatched to again.
    Up,
    /// The engine's capacity multiplier changes (thermal throttling):
    /// future dispatches on it run at `latency / multiplier`.
    Capacity(f64),
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time the event fires (seconds).
    pub t: f64,
    /// Engine index the event applies to.
    pub engine: u32,
    /// What happens.
    pub action: FaultAction,
}

/// A concrete, fully-expanded fault schedule: events sorted by
/// `(t, engine)` with per-engine emission order preserved for ties.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty timeline (no faults ever fire).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the timeline carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What to do with an inference that was in flight on an engine that
/// went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Discard the work: the frame is dropped as `Preempted` /
    /// `DeviceLost` depending on the outage kind (the baseline).
    #[default]
    Drop,
    /// Put the frame back on the ready queue; it restarts from scratch
    /// on whatever engine the scheduler next assigns.
    Requeue,
    /// Checkpoint-and-migrate: the frame re-enters the ready queue
    /// carrying its remaining-work fraction, so the next dispatch only
    /// pays for the unfinished part.
    Migrate,
}

impl RecoveryPolicy {
    /// All policies, in comparison-report order.
    pub const ALL: [RecoveryPolicy; 3] = [
        RecoveryPolicy::Drop,
        RecoveryPolicy::Requeue,
        RecoveryPolicy::Migrate,
    ];

    /// The lowercase wire name (`drop` / `requeue` / `migrate`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryPolicy::Drop => "drop",
            RecoveryPolicy::Requeue => "requeue",
            RecoveryPolicy::Migrate => "migrate",
        }
    }

    /// Parses a wire name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "drop" => Some(RecoveryPolicy::Drop),
            "requeue" => Some(RecoveryPolicy::Requeue),
            "migrate" => Some(RecoveryPolicy::Migrate),
            _ => None,
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A deterministic thermal-throttling square wave: for `duty · period`
/// out of every `period` seconds the engine runs at `factor` of its
/// nominal capacity. Each engine gets a seed-derived phase offset so a
/// fleet's engines do not throttle in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleSpec {
    /// Wave period in seconds (must be positive).
    pub period_s: f64,
    /// Throttled fraction of each period, in `[0, 1]`.
    pub duty: f64,
    /// Capacity multiplier while throttled, in `(0, 1]`.
    pub factor: f64,
}

/// The declarative availability/fault process for one device: Poisson
/// failure and preemption outages (exponential inter-arrival and
/// duration) plus an optional throttle wave. Expand it into a concrete
/// schedule with [`FaultProcess::timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProcess {
    /// Engine-failure rate (events per second per engine).
    pub failure_rate_per_s: f64,
    /// Mean failure outage duration (seconds).
    pub mean_downtime_s: f64,
    /// Preemption rate (events per second per engine).
    pub preemption_rate_per_s: f64,
    /// Mean preemption duration (seconds).
    pub mean_preemption_s: f64,
    /// Optional thermal-throttling wave.
    pub throttle: Option<ThrottleSpec>,
}

impl Default for FaultProcess {
    fn default() -> Self {
        Self {
            failure_rate_per_s: 0.0,
            mean_downtime_s: 0.0,
            preemption_rate_per_s: 0.0,
            mean_preemption_s: 0.0,
            throttle: None,
        }
    }
}

impl FaultProcess {
    /// Whether the process can never produce an event: zero outage
    /// rates and no effective throttle. Quiet processes are routed
    /// through the unmodified fault-free engine path.
    pub fn is_quiet(&self) -> bool {
        self.failure_rate_per_s == 0.0
            && self.preemption_rate_per_s == 0.0
            && self
                .throttle
                .is_none_or(|t| t.factor >= 1.0 || t.duty <= 0.0)
    }

    /// Validates the process parameters, returning a human-readable
    /// description of the first violation.
    ///
    /// # Errors
    ///
    /// Rates must be finite and non-negative; mean durations must be
    /// finite and non-negative (and positive when the matching rate is
    /// positive); a throttle needs `period_s > 0`, `duty` in `[0, 1]`,
    /// and `factor` in `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let rate = |name: &str, v: f64| {
            if !v.is_finite() || v < 0.0 {
                Err(format!("{name} must be finite and non-negative, got {v}"))
            } else {
                Ok(())
            }
        };
        rate("failure_rate_per_s", self.failure_rate_per_s)?;
        rate("mean_downtime_s", self.mean_downtime_s)?;
        rate("preemption_rate_per_s", self.preemption_rate_per_s)?;
        rate("mean_preemption_s", self.mean_preemption_s)?;
        if self.failure_rate_per_s > 0.0 && self.mean_downtime_s <= 0.0 {
            return Err("mean_downtime_s must be positive when failure_rate_per_s is".to_string());
        }
        if self.preemption_rate_per_s > 0.0 && self.mean_preemption_s <= 0.0 {
            return Err(
                "mean_preemption_s must be positive when preemption_rate_per_s is".to_string(),
            );
        }
        if let Some(t) = self.throttle {
            if !t.period_s.is_finite() || t.period_s <= 0.0 {
                return Err(format!(
                    "throttle_period_s must be finite and positive, got {}",
                    t.period_s
                ));
            }
            if !t.duty.is_finite() || !(0.0..=1.0).contains(&t.duty) {
                return Err(format!("throttle_duty must be in [0, 1], got {}", t.duty));
            }
            if !t.factor.is_finite() || t.factor <= 0.0 || t.factor > 1.0 {
                return Err(format!(
                    "throttle_factor must be in (0, 1], got {}",
                    t.factor
                ));
            }
        }
        Ok(())
    }

    /// The long-run fraction of time an engine is *up* under this
    /// process (alternating-renewal availability), ignoring throttling.
    pub fn mean_availability(&self) -> f64 {
        let a_fail = 1.0 / (1.0 + self.failure_rate_per_s * self.mean_downtime_s);
        let a_preempt = 1.0 / (1.0 + self.preemption_rate_per_s * self.mean_preemption_s);
        a_fail * a_preempt
    }

    /// The mean capacity multiplier the throttle wave applies (1.0
    /// without a throttle).
    pub fn mean_capacity(&self) -> f64 {
        match self.throttle {
            Some(t) => t.duty * t.factor + (1.0 - t.duty),
            None => 1.0,
        }
    }

    /// Expands the process into a concrete per-engine event schedule
    /// over `[0, span_s)`. A pure function of its arguments: the same
    /// `(process, seed, num_engines, span_s)` always yields the same
    /// timeline, and engine `k`'s events are independent of
    /// `num_engines`.
    pub fn timeline(&self, seed: u64, num_engines: usize, span_s: f64) -> FaultTimeline {
        assert!(
            self.validate().is_ok(),
            "invalid fault process: {:?}",
            self.validate()
        );
        let mut events: Vec<FaultEvent> = Vec::new();
        for engine in 0..num_engines {
            let eseed = mix64(seed ^ (engine as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            self.engine_events(eseed, engine as u32, span_s, &mut events);
        }
        // Stable sort: per-engine emission order is preserved for
        // same-(t, engine) ties (throttle window boundaries rely on
        // it), and cross-engine ties break by engine index.
        events.sort_by(|a, b| a.t.total_cmp(&b.t).then_with(|| a.engine.cmp(&b.engine)));
        FaultTimeline { events }
    }

    /// Emits one engine's events (outages union-merged, then the
    /// throttle wave) in nondecreasing time order per stream.
    fn engine_events(&self, eseed: u64, engine: u32, span_s: f64, out: &mut Vec<FaultEvent>) {
        // (start, end, kind) outage intervals from both processes.
        let mut intervals: Vec<(f64, f64, FaultKind)> = Vec::new();
        draw_intervals(
            self.failure_rate_per_s,
            self.mean_downtime_s,
            FaultKind::Failure,
            mix64(eseed ^ 0x0F01),
            span_s,
            &mut intervals,
        );
        draw_intervals(
            self.preemption_rate_per_s,
            self.mean_preemption_s,
            FaultKind::Preemption,
            mix64(eseed ^ 0x0F02),
            span_s,
            &mut intervals,
        );
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| b.1.total_cmp(&a.1)));
        // Union-merge overlapping outages so down/up strictly
        // alternate; the merged outage keeps the kind of whichever
        // interval opened it.
        let mut i = 0;
        while i < intervals.len() {
            let (start, mut end, kind) = intervals[i];
            i += 1;
            while i < intervals.len() && intervals[i].0 <= end {
                end = end.max(intervals[i].1);
                i += 1;
            }
            out.push(FaultEvent {
                t: start,
                engine,
                action: FaultAction::Down(kind),
            });
            out.push(FaultEvent {
                t: end,
                engine,
                action: FaultAction::Up,
            });
        }
        if let Some(th) = self.throttle {
            if th.factor < 1.0 && th.duty > 0.0 {
                let mut rng = StdRng::seed_from_u64(mix64(eseed ^ 0x0F03));
                let phase = rng.gen_range(0.0..1.0) * th.period_s;
                // The wave starts one period before 0 so a window
                // already open at t = 0 is represented.
                let mut k = 0u64;
                loop {
                    let start = phase + (k as f64 - 1.0) * th.period_s;
                    if start >= span_s {
                        break;
                    }
                    let end = start + th.duty * th.period_s;
                    if end > 0.0 {
                        out.push(FaultEvent {
                            t: start.max(0.0),
                            engine,
                            action: FaultAction::Capacity(th.factor),
                        });
                        if end < span_s {
                            out.push(FaultEvent {
                                t: end,
                                engine,
                                action: FaultAction::Capacity(1.0),
                            });
                        }
                    }
                    k += 1;
                }
            }
        }
    }
}

/// Draws exponential `(start, end, kind)` outage intervals over
/// `[0, span_s)` for one Poisson process.
fn draw_intervals(
    rate_per_s: f64,
    mean_duration_s: f64,
    kind: FaultKind,
    seed: u64,
    span_s: f64,
    out: &mut Vec<(f64, f64, FaultKind)>,
) {
    if rate_per_s <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut exp = |mean: f64| -> f64 {
        // Inverse-CDF exponential from a [0, 1) uniform; 1 - u is in
        // (0, 1] so the log is finite.
        let u: f64 = rng.gen_range(0.0..1.0);
        -mean * (1.0 - u).ln()
    };
    let mut t = 0.0f64;
    loop {
        t += exp(1.0 / rate_per_s);
        if t >= span_s {
            break;
        }
        let duration = exp(mean_duration_s);
        out.push((t, t + duration, kind));
        t += duration;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn() -> FaultProcess {
        FaultProcess {
            failure_rate_per_s: 2.0,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 4.0,
            mean_preemption_s: 0.02,
            throttle: Some(ThrottleSpec {
                period_s: 0.25,
                duty: 0.4,
                factor: 0.5,
            }),
        }
    }

    #[test]
    fn timeline_is_a_pure_function_of_its_inputs() {
        let p = churn();
        let a = p.timeline(42, 4, 1.0);
        let b = p.timeline(42, 4, 1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = p.timeline(43, 4, 1.0);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn engine_streams_are_independent_of_engine_count() {
        let p = churn();
        let four = p.timeline(7, 4, 1.0);
        let eight = p.timeline(7, 8, 1.0);
        let first_four = |t: &FaultTimeline| {
            t.events()
                .iter()
                .filter(|e| e.engine < 4)
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(first_four(&four), first_four(&eight));
    }

    #[test]
    fn down_up_strictly_alternate_per_engine() {
        let p = churn();
        let tl = p.timeline(11, 3, 2.0);
        for e in 0..3u32 {
            let mut down = false;
            for ev in tl.events().iter().filter(|ev| ev.engine == e) {
                match ev.action {
                    FaultAction::Down(_) => {
                        assert!(!down, "nested Down on engine {e}");
                        down = true;
                    }
                    FaultAction::Up => {
                        assert!(down, "Up without Down on engine {e}");
                        down = false;
                    }
                    FaultAction::Capacity(_) => {}
                }
            }
        }
    }

    #[test]
    fn events_are_time_sorted() {
        let tl = churn().timeline(5, 4, 1.5);
        for w in tl.events().windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        assert!(tl.events().iter().all(|e| e.t >= 0.0));
    }

    #[test]
    fn quiet_process_produces_nothing() {
        let p = FaultProcess::default();
        assert!(p.is_quiet());
        assert!(p.timeline(1, 8, 1.0).is_empty());
        let ineffective_throttle = FaultProcess {
            throttle: Some(ThrottleSpec {
                period_s: 0.1,
                duty: 0.5,
                factor: 1.0,
            }),
            ..FaultProcess::default()
        };
        assert!(ineffective_throttle.is_quiet());
        assert!(ineffective_throttle.timeline(1, 8, 1.0).is_empty());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let bad = [
            FaultProcess {
                failure_rate_per_s: -1.0,
                ..FaultProcess::default()
            },
            FaultProcess {
                failure_rate_per_s: f64::NAN,
                ..FaultProcess::default()
            },
            FaultProcess {
                failure_rate_per_s: 1.0,
                mean_downtime_s: 0.0,
                ..FaultProcess::default()
            },
            FaultProcess {
                throttle: Some(ThrottleSpec {
                    period_s: 0.0,
                    duty: 0.5,
                    factor: 0.5,
                }),
                ..FaultProcess::default()
            },
            FaultProcess {
                throttle: Some(ThrottleSpec {
                    period_s: 0.1,
                    duty: 1.5,
                    factor: 0.5,
                }),
                ..FaultProcess::default()
            },
            FaultProcess {
                throttle: Some(ThrottleSpec {
                    period_s: 0.1,
                    duty: 0.5,
                    factor: 0.0,
                }),
                ..FaultProcess::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?}");
        }
        assert!(churn().validate().is_ok());
    }

    #[test]
    fn availability_matches_renewal_theory() {
        let p = FaultProcess {
            failure_rate_per_s: 1.0,
            mean_downtime_s: 1.0,
            ..FaultProcess::default()
        };
        assert!((p.mean_availability() - 0.5).abs() < 1e-12);
        assert!((churn().mean_capacity() - (0.4 * 0.5 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn recovery_policy_round_trips_wire_names() {
        for p in RecoveryPolicy::ALL {
            assert_eq!(RecoveryPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(RecoveryPolicy::parse("teleport"), None);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Drop);
    }
}
