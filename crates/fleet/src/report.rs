//! The fleet report: machine-readable aggregates of a sharded
//! multi-session run.
//!
//! Every number here is derived from the exactly-merged
//! [`FleetAccumulator`], so the serialized report is byte-identical
//! for any worker count (see `DESIGN.md`'s determinism argument).

use serde::Serialize;

use xrbench_score::FixedHistogram;

use crate::accumulator::{
    DropCounts, FleetAccumulator, StatAgg, ENERGY_SCALE, SCORE_SCALE, TIME_SCALE,
};
use crate::spec::FleetSpec;

/// Frame drops split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetDropReport {
    /// Frames superseded by a newer frame of the same model.
    pub superseded: u64,
    /// Dependent frames whose upstream frame was itself dropped.
    pub upstream_dropped: u64,
    /// Frames still queued when their session's run ended.
    pub starved: u64,
    /// In-flight frames revoked by engine preemption (fault
    /// injection, `Drop` recovery policy).
    pub preempted: u64,
    /// In-flight frames revoked by engine failure (fault injection,
    /// `Drop` recovery policy).
    pub device_lost: u64,
}

// Hand-written so the fault counters appear only in fault-injected
// runs: fault-free reports must stay byte-identical to the pre-fault
// wire format (the golden fixtures pin it).
impl Serialize for FleetDropReport {
    fn to_json_value(&self) -> serde::json::JsonValue {
        let mut obj = vec![
            ("superseded".to_string(), self.superseded.to_json_value()),
            (
                "upstream_dropped".to_string(),
                self.upstream_dropped.to_json_value(),
            ),
            ("starved".to_string(), self.starved.to_json_value()),
        ];
        if self.preempted > 0 {
            obj.push(("preempted".to_string(), self.preempted.to_json_value()));
        }
        if self.device_lost > 0 {
            obj.push(("device_lost".to_string(), self.device_lost.to_json_value()));
        }
        serde::json::JsonValue::Object(obj)
    }
}

impl From<DropCounts> for FleetDropReport {
    fn from(d: DropCounts) -> Self {
        Self {
            superseded: d.superseded,
            upstream_dropped: d.upstream_dropped,
            starved: d.starved,
            preempted: d.preempted,
            device_lost: d.device_lost,
        }
    }
}

/// A latency-style distribution: count/mean/min/max from exact sums,
/// percentiles from the fixed-bucket histogram (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DistributionReport {
    /// Recorded values.
    pub count: u64,
    /// Mean (ms).
    pub mean_ms: f64,
    /// Minimum (ms).
    pub min_ms: f64,
    /// Maximum (ms).
    pub max_ms: f64,
    /// Median, as the histogram bucket's upper edge (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
}

/// A percentile in milliseconds, clamped to the observed maximum: the
/// histogram reports upper bucket edges (≤12.5% above any contained
/// value, infinite for the overflow bucket), and a report must never
/// quote a percentile above its own `max_ms`.
fn pct_ms(h: &FixedHistogram, q: f64, max_s: f64) -> f64 {
    h.percentile(q).min(max_s) * 1e3
}

fn distribution(stats: &StatAgg, hist: &FixedHistogram) -> DistributionReport {
    DistributionReport {
        count: stats.count,
        mean_ms: stats.mean(TIME_SCALE) * 1e3,
        min_ms: stats.min() * 1e3,
        max_ms: stats.max() * 1e3,
        p50_ms: pct_ms(hist, 0.50, stats.max()),
        p95_ms: pct_ms(hist, 0.95, stats.max()),
        p99_ms: pct_ms(hist, 0.99, stats.max()),
    }
}

/// One scenario's fleet-wide score aggregate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioFleetReport {
    /// Scenario display name.
    pub scenario: String,
    /// Users that ran this scenario across the fleet.
    pub users: u64,
    /// Mean per-user real-time score.
    pub realtime_score: f64,
    /// Mean per-user energy score.
    pub energy_score: f64,
    /// Mean per-user accuracy score.
    pub accuracy_score: f64,
    /// Mean per-user QoE score.
    pub qoe_score: f64,
    /// Mean per-user overall scenario score.
    pub overall_score: f64,
    /// Worst-served user's overall score (fairness floor).
    pub min_overall: f64,
    /// Best-served user's overall score.
    pub max_overall: f64,
}

/// One model's fleet-wide aggregate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelFleetReport {
    /// The model's two-letter abbreviation.
    pub model: String,
    /// Frames streamed and triggered.
    pub total_frames: u64,
    /// Frames executed.
    pub executed_frames: u64,
    /// Frames deactivated by failed cascade draws.
    pub untriggered_frames: u64,
    /// Executed frames past their deadline.
    pub missed_deadlines: u64,
    /// Drops by cause.
    pub drops: FleetDropReport,
    /// Mean end-to-end latency over executed frames (ms).
    pub mean_latency_ms: f64,
    /// Fastest executed frame (ms).
    pub min_latency_ms: f64,
    /// Slowest executed frame (ms).
    pub max_latency_ms: f64,
    /// Mean energy per executed inference (mJ).
    pub mean_energy_mj: f64,
}

/// One device group's aggregate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupFleetReport {
    /// Group index within the fleet spec.
    pub group: usize,
    /// Group display name.
    pub name: String,
    /// Device sessions in the group.
    pub sessions: u64,
    /// Users across the group's sessions.
    pub users: u64,
    /// Mean per-session score.
    pub session_score: f64,
    /// Worst session's score.
    pub min_session_score: f64,
    /// Best session's score.
    pub max_session_score: f64,
    /// Frame-drop rate across the group.
    pub drop_rate: f64,
}

/// The outcome of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Fleet display name.
    pub fleet: String,
    /// Evaluated system label.
    pub system: String,
    /// Scheduler name (one fresh instance per device session).
    pub scheduler: String,
    /// Device groups.
    pub num_groups: usize,
    /// Device sessions executed.
    pub num_sessions: u64,
    /// Concurrent users across all sessions.
    pub num_users: u64,
    /// Mean per-session score (each session's score is the mean of
    /// its users' overall scenario scores).
    pub fleet_score: f64,
    /// Worst session's score.
    pub session_score_min: f64,
    /// Best session's score.
    pub session_score_max: f64,
    /// Frames streamed and triggered, fleet-wide.
    pub total_requests: u64,
    /// Inferences executed, fleet-wide.
    pub executed_inferences: u64,
    /// Frames dropped, fleet-wide.
    pub dropped_frames: u64,
    /// Frames deactivated by failed cascade draws.
    pub untriggered_frames: u64,
    /// Executed inferences past their deadline.
    pub missed_deadlines: u64,
    /// Drop rate (dropped / streamed-and-triggered).
    pub drop_rate: f64,
    /// Drops by cause.
    pub drops: FleetDropReport,
    /// Total energy across the fleet (mJ).
    pub total_energy_mj: f64,
    /// End-to-end latency distribution over executed inferences.
    pub latency: DistributionReport,
    /// Deadline-overrun tail (ms; met deadlines contribute 0).
    pub overrun_p95_ms: f64,
    /// 99th-percentile deadline overrun (ms).
    pub overrun_p99_ms: f64,
    /// 5th-percentile combined per-inference score (the QoS floor the
    /// worst 5% of inferences live under), from the score histogram.
    pub inference_score_p05: f64,
    /// Median combined per-inference score.
    pub inference_score_p50: f64,
    /// Discrete events processed (arrivals + completions) — the
    /// denominator of the fleet gate's events/sec.
    pub events: u64,
    /// Per-scenario aggregates, in name order.
    pub scenarios: Vec<ScenarioFleetReport>,
    /// Per-model aggregates, in model order (touched models only).
    pub models: Vec<ModelFleetReport>,
    /// Per-group aggregates, in group order.
    pub groups: Vec<GroupFleetReport>,
}

impl FleetReport {
    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// One scenario's aggregate by display name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioFleetReport> {
        self.scenarios.iter().find(|s| s.scenario == name)
    }

    /// One model's aggregate by abbreviation.
    pub fn model(&self, abbrev: &str) -> Option<&ModelFleetReport> {
        self.models.iter().find(|m| m.model == abbrev)
    }
}

/// Assembles the report from the per-group and fleet-total
/// accumulators (all exact-merged, so this is pure presentation).
pub(crate) fn build_report(
    spec: &FleetSpec,
    system: &str,
    scheduler: &str,
    group_accs: &[FleetAccumulator],
    fleet: &FleetAccumulator,
) -> FleetReport {
    let drops = fleet.drops();
    let total = fleet.total_frames();
    let latency_stats = fleet.latency_stats();
    // An overrun never exceeds the latency of the same inference
    // (t_end − t_deadline ≤ t_end − t_req), so the latency maximum is
    // a valid clamp for overflow-bucket overrun percentiles.
    let max_overrun = latency_stats.max();

    let scenarios = fleet
        .scenarios()
        .map(|(name, agg)| {
            let b = agg.mean_breakdown();
            ScenarioFleetReport {
                scenario: name.to_string(),
                users: agg.users,
                realtime_score: b.realtime,
                energy_score: b.energy,
                accuracy_score: b.accuracy,
                qoe_score: b.qoe,
                overall_score: b.overall,
                min_overall: agg.overall.min(),
                max_overall: agg.overall.max(),
            }
        })
        .collect();

    let models = fleet
        .models()
        .map(|(m, a)| ModelFleetReport {
            model: m.abbrev().to_string(),
            total_frames: a.total_frames,
            executed_frames: a.executed_frames,
            untriggered_frames: a.untriggered_frames,
            missed_deadlines: a.missed_deadlines,
            drops: a.drops.into(),
            mean_latency_ms: a.latency.mean(TIME_SCALE) * 1e3,
            min_latency_ms: a.latency.min() * 1e3,
            max_latency_ms: a.latency.max() * 1e3,
            mean_energy_mj: a.energy.mean(ENERGY_SCALE) * 1e3,
        })
        .collect();

    let groups = spec
        .groups
        .iter()
        .zip(group_accs)
        .enumerate()
        .map(|(i, (g, acc))| {
            let gd = acc.drops();
            let gt = acc.total_frames();
            GroupFleetReport {
                group: i,
                name: g.name.clone(),
                sessions: acc.sessions,
                users: acc.users,
                session_score: acc.session_score.mean(SCORE_SCALE),
                min_session_score: acc.session_score.min(),
                max_session_score: acc.session_score.max(),
                drop_rate: if gt == 0 {
                    0.0
                } else {
                    gd.total() as f64 / gt as f64
                },
            }
        })
        .collect();

    FleetReport {
        fleet: spec.name.clone(),
        system: system.to_string(),
        scheduler: scheduler.to_string(),
        num_groups: spec.num_groups(),
        num_sessions: fleet.sessions,
        num_users: fleet.users,
        fleet_score: fleet.session_score.mean(SCORE_SCALE),
        session_score_min: fleet.session_score.min(),
        session_score_max: fleet.session_score.max(),
        total_requests: total,
        executed_inferences: fleet.executed_frames(),
        dropped_frames: drops.total(),
        untriggered_frames: fleet.untriggered_frames(),
        missed_deadlines: fleet.missed_deadlines(),
        drop_rate: if total == 0 {
            0.0
        } else {
            drops.total() as f64 / total as f64
        },
        drops: drops.into(),
        total_energy_mj: fleet.total_energy_j() * 1e3,
        latency: distribution(&latency_stats, &fleet.latency),
        overrun_p95_ms: pct_ms(&fleet.overrun, 0.95, max_overrun),
        overrun_p99_ms: pct_ms(&fleet.overrun, 0.99, max_overrun),
        // Combined scores live on [0, 1]; clamp the bucket upper
        // edges so a fleet of perfect inferences reports 1.0, not the
        // containing bucket's 1.125 edge.
        inference_score_p05: fleet.score.percentile(0.05).min(1.0),
        inference_score_p50: fleet.score.percentile(0.50).min(1.0),
        events: fleet.arrivals() + fleet.executed_frames(),
        scenarios,
        models,
        groups,
    }
}
