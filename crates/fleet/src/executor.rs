//! The fleet executor: a bounded work-stealing worker pool running
//! each device session through the heap engine's folding path, with
//! per-worker accumulators merged deterministically at the end.
//!
//! ## Determinism under parallelism
//!
//! Which worker runs which session is scheduler noise — but it cannot
//! leak into the result:
//!
//! 1. each device session is seeded purely by
//!    [`replica_seed`]`(base, group, replica)` and simulated
//!    single-threaded, so its folded [`FleetAccumulator`] contribution
//!    is a pure function of the fleet spec and base seed;
//! 2. contributions are folded into per-`(worker, group)`
//!    accumulators, and [`FleetAccumulator::merge`] is **exact**
//!    (integer counters, fixed-point sums, histogram buckets, min/max)
//!    — associative and commutative, so any merge tree over the same
//!    session set yields bit-identical state;
//! 3. the final reduction runs in group order.
//!
//! Together: the [`FleetReport`] of a 1-worker run and a 64-worker run
//! are byte-identical, and memory stays O(workers × groups) — no
//! per-request vector survives a session (see `DESIGN.md`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xrbench_score::{session_breakdown, AccuracyParams, EnergyParams, RtParams};
use xrbench_sim::{CostProvider, LatencyGreedy, RecoveryPolicy, Scheduler, SimConfig, Simulator};

use crate::accumulator::{FleetAccumulator, SCORE_SCALE};
use crate::report::{build_report, FleetReport};
use crate::scoring::{InferenceScorer, SessionFold};
use crate::spec::{replica_seed, DeviceGroup, FleetSpec};

/// Everything a fleet run needs besides the spec and the system:
/// simulation base config, scoring parameters, and the worker budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRunConfig {
    /// Base simulator configuration. `seed` is the fleet base seed
    /// (each replica derives its own via [`replica_seed`]);
    /// `duration_s` is the per-user run duration.
    pub sim: SimConfig,
    /// Real-time sigmoid parameters.
    pub rt: RtParams,
    /// Energy score parameters.
    pub energy: EnergyParams,
    /// Accuracy score parameters.
    pub accuracy: AccuracyParams,
    /// Worker threads (capped at the session count; must be ≥ 1).
    pub workers: usize,
    /// What happens to in-flight work on an engine lost to an
    /// injected fault (groups without a fault process never consult
    /// this).
    pub recovery: RecoveryPolicy,
}

impl Default for FleetRunConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            rt: RtParams::default(),
            energy: EnergyParams::default(),
            accuracy: AccuracyParams::default(),
            workers: default_workers(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// The default fleet worker count:
/// `max(available_parallelism, 2)`, so the merge path is exercised
/// even on a single-core host.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Runs one device session through the folding path, accumulating
/// into `acc` and never retaining per-request vectors.
fn fold_session(
    group: &DeviceGroup,
    sim: &Simulator,
    system: &dyn CostProvider,
    scheduler: &mut dyn Scheduler,
    scorer: &InferenceScorer,
    recovery: RecoveryPolicy,
    acc: &mut FleetAccumulator,
) {
    let session = &group.session;
    let mut fold = SessionFold::new(session);
    let mut sink = |user: u32, rec: &xrbench_sim::ExecRecord| {
        let combined = fold.record(user, rec, scorer);
        acc.latency.record(rec.latency_s());
        acc.overrun.record(rec.overrun_s());
        acc.score.record(combined);
        acc.model_mut(rec.model).record_exec(rec);
    };
    let result = match &group.faults {
        Some(faults) => {
            sim.run_session_folded_faulted(session, system, scheduler, faults, recovery, &mut sink)
        }
        None => sim.run_session_folded(session, system, scheduler, &mut sink),
    };
    for (_, r) in &result.per_user {
        for (m, st) in &r.stats {
            acc.model_mut(*m).absorb_stats(st);
        }
    }
    let breakdowns = fold.finish(session, &result);
    let aggregate = session_breakdown(&breakdowns);
    acc.sessions += 1;
    acc.users += breakdowns.len() as u64;
    acc.session_score.record(aggregate.overall, SCORE_SCALE);
    for (su, b) in session.users.iter().zip(&breakdowns) {
        acc.scenario_mut(&su.spec.name).record_user(b);
    }
}

/// Runs a fleet under the default latency-greedy scheduler.
///
/// # Panics
///
/// Panics if the fleet is invalid (see [`FleetSpec::validate`]),
/// `config.workers == 0`, or the system has no engines.
pub fn run_fleet(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
) -> FleetReport {
    run_fleet_with(spec, system, config, &|| Box::new(LatencyGreedy::new()))
}

/// [`run_fleet`] under an explicit scheduler (one fresh instance per
/// device session, exactly as [`xrbench_sim::Simulator::run_session`]
/// would use it).
///
/// # Panics
///
/// Panics if the fleet is invalid, `config.workers == 0`, or the
/// system has no engines; propagates worker panics.
pub fn run_fleet_with(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
    scheduler_factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
) -> FleetReport {
    spec.validate();
    let scheduler_name = scheduler_factory().name();

    // The flat job list: (group, replica), in group order.
    let jobs: Vec<(u32, u32)> = spec
        .groups
        .iter()
        .enumerate()
        .flat_map(|(g, grp)| (0..grp.replicas).map(move |r| (g as u32, r)))
        .collect();
    let group_accs = run_jobs(spec, system, config, scheduler_factory, &jobs);
    let mut fleet_acc = FleetAccumulator::new();
    for g in &group_accs {
        fleet_acc.merge(g);
    }
    build_report(
        spec,
        &system.label(),
        scheduler_name,
        &group_accs,
        &fleet_acc,
    )
}

/// Runs an explicit `(group, replica)` job list through the worker
/// pool and returns one merged accumulator per group (empty for
/// groups the list never touches). Replica indices are **global** —
/// each session is seeded by `replica_seed(base, g, r)` from the
/// indices as given, so running a subset of the jobs here produces
/// exactly the contribution those sessions make to a full run. This
/// is the primitive both [`run_fleet_with`] (all jobs) and the shard
/// runner ([`crate::run_fleet_shard`], one shard's slice) share.
///
/// # Panics
///
/// Panics if `config.workers == 0`, a job's group index is out of
/// range, or the system has no engines; propagates worker panics.
pub(crate) fn run_jobs(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
    scheduler_factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
    jobs: &[(u32, u32)],
) -> Vec<FleetAccumulator> {
    assert!(config.workers > 0, "fleet needs at least one worker");
    let scorer = InferenceScorer::new(config.rt, config.energy, config.accuracy);
    let workers = config.workers.min(jobs.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<FleetAccumulator>>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for slot in &slots {
            let (next, scorer) = (&next, &scorer);
            scope.spawn(move || {
                let mut local = vec![FleetAccumulator::new(); spec.groups.len()];
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(g, r)) = jobs.get(idx) else {
                        break;
                    };
                    let sim = Simulator::new(SimConfig {
                        duration_s: config.sim.duration_s,
                        seed: replica_seed(config.sim.seed, g, r),
                    });
                    let mut scheduler = scheduler_factory();
                    fold_session(
                        &spec.groups[g as usize],
                        &sim,
                        system,
                        scheduler.as_mut(),
                        scorer,
                        config.recovery,
                        &mut local[g as usize],
                    );
                }
                *slot.lock().expect("worker slot poisoned") = Some(local);
            });
        }
    });

    // Reduce per-group accumulators; exact merges, so worker order is
    // immaterial.
    let mut group_accs: Vec<FleetAccumulator> = vec![FleetAccumulator::new(); spec.groups.len()];
    for slot in slots {
        let worker = slot
            .into_inner()
            .expect("worker slot poisoned")
            .expect("worker completed");
        for (g, acc) in worker.iter().enumerate() {
            group_accs[g].merge(acc);
        }
    }
    group_accs
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::UniformProvider;
    use xrbench_workload::{SessionSpec, UsageScenario};

    fn small_fleet() -> FleetSpec {
        FleetSpec::new("test")
            .group(
                "vr",
                SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 3, 0.002),
                4,
            )
            .group(
                "social",
                SessionSpec::uniform("soc", UsageScenario::SocialInteractionA.spec(), 2, 0.003),
                3,
            )
    }

    #[test]
    fn fleet_runs_and_counts_everyone() {
        let p = UniformProvider::new(4, 0.001, 0.001);
        let r = run_fleet(&small_fleet(), &p, &FleetRunConfig::default());
        assert_eq!(r.num_sessions, 7);
        assert_eq!(r.num_users, 4 * 3 + 3 * 2);
        assert_eq!(r.num_groups, 2);
        assert!(r.fleet_score > 0.0 && r.fleet_score <= 1.0);
        assert!(r.executed_inferences > 0);
        assert_eq!(
            r.events,
            r.total_requests + r.untriggered_frames + r.executed_inferences
        );
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].sessions, 4);
        assert_eq!(r.groups[1].users, 6);
        // Both scenarios appear, in name order.
        let names: Vec<&str> = r.scenarios.iter().map(|s| s.scenario.as_str()).collect();
        assert_eq!(names, ["Social Interaction A", "VR Gaming"]);
        // Reported percentiles never exceed their own maxima, and
        // score percentiles stay on [0, 1] (the histogram's raw upper
        // edges would overshoot both).
        assert!(r.latency.p50_ms <= r.latency.p95_ms);
        assert!(r.latency.p95_ms <= r.latency.p99_ms);
        assert!(r.latency.p99_ms <= r.latency.max_ms);
        assert!(r.overrun_p95_ms <= r.overrun_p99_ms);
        assert!(r.overrun_p99_ms <= r.latency.max_ms);
        assert!(r.inference_score_p05 <= r.inference_score_p50);
        assert!(r.inference_score_p50 <= 1.0);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let spec = small_fleet();
        let base = FleetRunConfig {
            workers: 1,
            ..FleetRunConfig::default()
        };
        let one = run_fleet(&spec, &p, &base);
        for workers in [2, 3, 8] {
            let cfg = FleetRunConfig { workers, ..base };
            let many = run_fleet(&spec, &p, &cfg);
            assert_eq!(one, many, "workers = {workers}");
            assert_eq!(one.to_json(), many.to_json(), "workers = {workers}");
        }
    }

    #[test]
    fn replicas_are_independent_devices() {
        // Two replicas of the same session must not produce identical
        // per-session scores under contention-free jitter (their seeds
        // differ), yet the fleet total is reproducible.
        let p = UniformProvider::new(2, 0.002, 0.001);
        let spec = FleetSpec::uniform(
            "twins",
            SessionSpec::uniform("s", UsageScenario::ArAssistant.spec(), 2, 0.002),
            2,
        );
        let cfg = FleetRunConfig::default();
        let a = run_fleet(&spec, &p, &cfg);
        let b = run_fleet(&spec, &p, &cfg);
        assert_eq!(a, b);
        // AR Assistant has probabilistic cascades: distinct seeds show
        // up as distinct work (with overwhelming probability).
        assert!(
            a.session_score_min != a.session_score_max || a.untriggered_frames > 0,
            "replicas look seed-correlated"
        );
    }

    fn churny() -> xrbench_sim::FaultProcess {
        xrbench_sim::FaultProcess {
            failure_rate_per_s: 2.0,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 4.0,
            mean_preemption_s: 0.02,
            throttle: Some(xrbench_sim::ThrottleSpec {
                period_s: 0.25,
                duty: 0.4,
                factor: 0.5,
            }),
        }
    }

    fn faulted_fleet() -> FleetSpec {
        FleetSpec::new("churn")
            .group_faulted(
                "vr",
                SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 3, 0.002),
                4,
                churny(),
            )
            .group(
                "calm",
                SessionSpec::uniform("soc", UsageScenario::SocialInteractionA.spec(), 2, 0.003),
                2,
            )
    }

    #[test]
    fn faulted_fleet_report_is_identical_for_any_worker_count() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let spec = faulted_fleet();
        for recovery in RecoveryPolicy::ALL {
            let base = FleetRunConfig {
                workers: 1,
                recovery,
                ..FleetRunConfig::default()
            };
            let one = run_fleet(&spec, &p, &base);
            for workers in [2, 8] {
                let cfg = FleetRunConfig { workers, ..base };
                let many = run_fleet(&spec, &p, &cfg);
                assert_eq!(one, many, "{recovery} workers = {workers}");
                assert_eq!(
                    one.to_json(),
                    many.to_json(),
                    "{recovery} workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn fault_drops_surface_in_the_report_only_when_injected() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        // Baseline policy: revoked in-flight work is dropped and
        // attributed to its outage kind, fleet-wide and per-group.
        let faulted = run_fleet(&faulted_fleet(), &p, &FleetRunConfig::default());
        assert!(faulted.drops.preempted > 0, "{:?}", faulted.drops);
        assert!(faulted.drops.device_lost > 0, "{:?}", faulted.drops);
        let json = faulted.to_json();
        assert!(json.contains("\"preempted\""), "fault drops not serialized");
        assert!(json.contains("\"device_lost\""));
        // A fault-free fleet keeps the pre-fault wire format: the new
        // counters stay zero and are omitted from the JSON entirely.
        let clean = run_fleet(&small_fleet(), &p, &FleetRunConfig::default());
        assert_eq!(clean.drops.preempted, 0);
        assert_eq!(clean.drops.device_lost, 0);
        let clean_json = clean.to_json();
        assert!(!clean_json.contains("preempted"), "zero counter serialized");
        assert!(!clean_json.contains("device_lost"));
    }

    #[test]
    fn recovery_policies_change_the_outcome_under_identical_faults() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let spec = faulted_fleet();
        let run = |recovery| {
            let cfg = FleetRunConfig {
                recovery,
                ..FleetRunConfig::default()
            };
            run_fleet(&spec, &p, &cfg)
        };
        let drop = run(RecoveryPolicy::Drop);
        let requeue = run(RecoveryPolicy::Requeue);
        let migrate = run(RecoveryPolicy::Migrate);
        // Recovery policies never lose in-flight work to faults …
        assert_eq!(requeue.drops.preempted + requeue.drops.device_lost, 0);
        assert_eq!(migrate.drops.preempted + migrate.drops.device_lost, 0);
        // … so under the same outage schedule they execute at least
        // as many inferences as the baseline.
        assert!(requeue.executed_inferences >= drop.executed_inferences);
        assert!(migrate.executed_inferences >= drop.executed_inferences);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        let p = UniformProvider::new(1, 0.001, 0.001);
        let cfg = FleetRunConfig {
            workers: 0,
            ..FleetRunConfig::default()
        };
        let _ = run_fleet(&small_fleet(), &p, &cfg);
    }
}
