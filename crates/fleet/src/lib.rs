//! # xrbench-fleet
//!
//! Fleet-scale execution for the XRBench reproduction: thousands of
//! independent XR device sessions (each a multi-user
//! [`xrbench_workload::SessionSpec`] simulated by the heap-driven
//! event engine) executed across a bounded work-stealing worker pool,
//! with results folded into a **streaming, exactly-mergeable
//! aggregate** instead of materialized per-request vectors.
//!
//! The paper deploys its cascaded multi-model scenarios on fleets of
//! headsets; this crate is the scale axis of the reproduction — the
//! ROADMAP's "heavy traffic from millions of users" — engineered so
//! that:
//!
//! * **memory is O(workers × groups)**, not O(requests): every
//!   completed inference is scored and folded the moment it is
//!   dispatched ([`xrbench_sim::Simulator::run_session_folded`]);
//! * **the report is bit-identical for any worker count**: the
//!   [`FleetAccumulator`] stores only integer counters, fixed-point
//!   sums, histogram buckets, and min/max, so merging is associative,
//!   commutative, and exact (see `DESIGN.md`);
//! * **every device is independently seeded** via
//!   [`replica_seed`]`(base, group, replica)`, so replicas
//!   de-correlate exactly like distinct physical devices while the
//!   whole fleet stays reproducible from one base seed.
//!
//! Fleets may be **dynamic**: a device group can carry a
//! [`xrbench_sim::FaultProcess`] (engine churn, preemption, thermal
//! throttling), expanded per replica from its replica seed, with
//! in-flight work on a lost engine handled by the configured
//! [`xrbench_sim::RecoveryPolicy`]. [`compare_recovery_policies`]
//! replays the identical outage schedule once per policy and
//! tabulates the outcomes.
//!
//! Beyond one process, the **shard-plan layer** splits a fleet along
//! `(group, replica-range)` boundaries ([`plan_shards`]), runs each
//! shard in its own OS process ([`run_fleet_shard`] on the child
//! side, [`supervise`] on the coordinator side), ships partial state
//! as [`ShardState`] JSON, and merges byte-exactly back into the
//! single-process report ([`merge_fleet_shards`]) — replica seeding
//! is a pure function of the global `(group, replica)` coordinate,
//! so the shard cut cannot change any device's behavior.
//!
//! ## Example
//!
//! ```
//! use xrbench_fleet::{run_fleet, FleetRunConfig, FleetSpec};
//! use xrbench_sim::UniformProvider;
//! use xrbench_workload::{SessionSpec, UsageScenario};
//!
//! // 8 devices × 4-user VR parties = a 32-user fleet.
//! let fleet = FleetSpec::uniform(
//!     "vr-arcade",
//!     SessionSpec::uniform("party", UsageScenario::VrGaming.spec(), 4, 0.002),
//!     8,
//! );
//! let system = UniformProvider::new(4, 0.001, 0.001);
//! let report = run_fleet(&fleet, &system, &FleetRunConfig::default());
//! assert_eq!(report.num_users, 32);
//! assert!(report.fleet_score > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod compare;
mod executor;
mod report;
mod scoring;
mod shard;
mod spec;
pub mod specfile;
mod supervisor;

pub use accumulator::{
    DropCounts, FleetAccumulator, ModelAccumulator, ScenarioAccumulator, StatAgg, ENERGY_SCALE,
    SCORE_SCALE, TIME_SCALE,
};
pub use compare::{
    compare_recovery_policies, compare_recovery_policies_with, PolicyComparisonReport,
    PolicyOutcome,
};
pub use executor::{default_workers, run_fleet, run_fleet_with, FleetRunConfig};
pub use report::{
    DistributionReport, FleetDropReport, FleetReport, GroupFleetReport, ModelFleetReport,
    ScenarioFleetReport,
};
pub use scoring::InferenceScorer;
pub use shard::{
    merge_fleet_shards, plan_shards, run_fleet_shard, run_fleet_shard_with, ShardPiece, ShardPlan,
    ShardState,
};
pub use spec::{replica_seed, DeviceGroup, FleetSpec};
pub use specfile::{fleet_from_str, fleet_to_json};
pub use supervisor::{supervise, ShardError};
