//! The shard-plan layer: splitting a fleet across OS processes.
//!
//! A [`crate::FleetSpec`] names every device session it contains as a
//! global `(group, replica)` coordinate, and
//! [`crate::replica_seed`]`(base, group, replica)` derives each session's
//! RNG stream — and, through `fault_seed`, its outage timeline — from
//! that coordinate alone. A shard is therefore nothing more than a
//! **slice of the flat job list**: shard `k` of `N` runs the jobs
//! with flat index in `[⌊kJ/N⌋, ⌊(k+1)J/N⌋)` (where `J` is the total
//! session count), keeping the *global* indices, so every session
//! computes exactly the contribution it would make to an unsharded
//! run. No session state crosses shard boundaries, so the cut cannot
//! change any replica's identity.
//!
//! A shard's result is a [`ShardState`]: one [`FleetAccumulator`] per
//! device group. Because the accumulator is built from integer
//! counters, fixed-point sums, histogram buckets, and min/max — all
//! exactly mergeable — shard states merge associatively and
//! commutatively into *bit-identical* fleet state for any shard count
//! ([`merge_fleet_shards`]). The wire format
//! ([`ShardState::to_json`] / [`ShardState::from_json`]) preserves
//! that exactness across a process boundary by serializing every
//! counter and fixed-point sum as a decimal-string integer (the
//! vendored JSON value is `f64`-backed, which would corrupt counters
//! past 2^53) and every `f64` min/max as its IEEE-754 bit pattern.
//!
//! The intended topology is one coordinator process fork/exec-ing one
//! child per shard (`xrbench run-fleet … --shard k/N`), collecting
//! each child's `ShardState` over a pipe, and merging — see
//! [`crate::supervise`] and `DESIGN.md`'s "shard-plan layer" section.

use serde::de::Cursor;
use serde::json::JsonValue;

use xrbench_models::ModelId;
use xrbench_score::FixedHistogram;
use xrbench_sim::{CostProvider, Scheduler};
use xrbench_workload::spec::{parse_json, SpecError};

use crate::accumulator::{FleetAccumulator, ModelAccumulator, ScenarioAccumulator, StatAgg};
use crate::executor::{run_jobs, FleetRunConfig};
use crate::report::{build_report, FleetReport};
use crate::spec::FleetSpec;

/// Wire-format version tag for [`ShardState`] documents.
const SHARD_STATE_VERSION: u64 = 1;

/// One contiguous run of replicas of one device group, as assigned to
/// a shard by [`plan_shards`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPiece {
    /// Device-group index into [`FleetSpec::groups`].
    pub group: u32,
    /// First (global) replica index of the run.
    pub replica_start: u32,
    /// Number of consecutive replicas in the run (≥ 1).
    pub replica_count: u32,
}

/// A partition of a fleet's sessions into `N` shards, each a list of
/// contiguous `(group, replica-range)` pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Piece lists, indexed by shard. A shard with more shards than
    /// sessions may legally be empty (it contributes the merge
    /// identity).
    pub shards: Vec<Vec<ShardPiece>>,
}

impl ShardPlan {
    /// Number of shards in the plan.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Total sessions across all pieces of all shards.
    pub fn total_sessions(&self) -> u64 {
        self.shards
            .iter()
            .flatten()
            .map(|p| u64::from(p.replica_count))
            .sum()
    }
}

/// The flat `(group, replica)` job list of a fleet, in group order —
/// the same enumeration the unsharded executor walks.
fn flat_jobs(spec: &FleetSpec) -> Vec<(u32, u32)> {
    spec.groups
        .iter()
        .enumerate()
        .flat_map(|(g, grp)| (0..grp.replicas).map(move |r| (g as u32, r)))
        .collect()
}

/// The flat-index range `[⌊kJ/N⌋, ⌊(k+1)J/N⌋)` shard `k` owns.
fn shard_range(total: usize, shard: u32, num_shards: u32) -> (usize, usize) {
    let j = total as u64;
    let n = u64::from(num_shards);
    let start = (u64::from(shard) * j / n) as usize;
    let end = ((u64::from(shard) + 1) * j / n) as usize;
    (start, end)
}

/// Splits a fleet into `num_shards` balanced shards along
/// `(group, replica-range)` boundaries.
///
/// Every session appears in exactly one shard, shard sizes differ by
/// at most one session, and replica indices stay **global** — which
/// is what keeps `replica_seed` (and every fault timeline derived
/// from it) independent of the cut.
///
/// # Panics
///
/// Panics if the fleet is invalid or `num_shards == 0`.
pub fn plan_shards(spec: &FleetSpec, num_shards: u32) -> ShardPlan {
    spec.validate();
    assert!(num_shards > 0, "shard plan needs at least one shard");
    let jobs = flat_jobs(spec);
    let mut shards = Vec::with_capacity(num_shards as usize);
    for k in 0..num_shards {
        let (start, end) = shard_range(jobs.len(), k, num_shards);
        let mut pieces: Vec<ShardPiece> = Vec::new();
        for &(g, r) in &jobs[start..end] {
            match pieces.last_mut() {
                Some(p) if p.group == g && p.replica_start + p.replica_count == r => {
                    p.replica_count += 1;
                }
                _ => pieces.push(ShardPiece {
                    group: g,
                    replica_start: r,
                    replica_count: 1,
                }),
            }
        }
        shards.push(pieces);
    }
    ShardPlan { shards }
}

/// One shard's partial fleet state: a merged [`FleetAccumulator`] per
/// device group (empty for groups the shard never touched), plus the
/// shard coordinate it was computed for.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Which shard this is (`0 ≤ shard < num_shards`).
    pub shard: u32,
    /// The shard count the cut was made with.
    pub num_shards: u32,
    /// Per-group accumulators, indexed like [`FleetSpec::groups`].
    pub groups: Vec<FleetAccumulator>,
    /// The producing process's peak RSS in MiB, when it measured one
    /// (informational: excluded from equality-relevant merge state).
    pub peak_rss_mib: Option<f64>,
}

/// Runs one shard of a fleet under an explicit scheduler and returns
/// its partial state. `run_fleet_shard(spec, …, 0, 1)` computes the
/// full fleet's accumulator state.
///
/// # Panics
///
/// Panics if the fleet is invalid, `shard >= num_shards`,
/// `config.workers == 0`, or the system has no engines.
pub fn run_fleet_shard_with(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
    scheduler_factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
    shard: u32,
    num_shards: u32,
) -> ShardState {
    spec.validate();
    assert!(
        shard < num_shards,
        "shard index {shard} out of range for {num_shards} shards"
    );
    let jobs = flat_jobs(spec);
    let (start, end) = shard_range(jobs.len(), shard, num_shards);
    let groups = run_jobs(spec, system, config, scheduler_factory, &jobs[start..end]);
    ShardState {
        shard,
        num_shards,
        groups,
        peak_rss_mib: None,
    }
}

/// [`run_fleet_shard_with`] under the default latency-greedy
/// scheduler — the scheduler every spec-document fleet run uses.
pub fn run_fleet_shard(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
    shard: u32,
    num_shards: u32,
) -> ShardState {
    run_fleet_shard_with(
        spec,
        system,
        config,
        &|| Box::new(xrbench_sim::LatencyGreedy::new()),
        shard,
        num_shards,
    )
}

/// Merges shard states into the final [`FleetReport`], byte-identical
/// to the unsharded run's report.
///
/// # Errors
///
/// Returns a [`SpecError`] when the states do not form a complete,
/// consistent partition: wrong shard count, a missing or duplicated
/// shard index, or a group list that does not match the spec.
pub fn merge_fleet_shards(
    spec: &FleetSpec,
    system_label: &str,
    scheduler_name: &str,
    states: &[ShardState],
) -> Result<FleetReport, SpecError> {
    let invalid = |message: String| SpecError::Invalid {
        path: "shard-state".to_string(),
        message,
    };
    if states.is_empty() {
        return Err(invalid("no shard states to merge".to_string()));
    }
    let n = states[0].num_shards;
    if n as usize != states.len() {
        return Err(invalid(format!(
            "expected {n} shard states, got {}",
            states.len()
        )));
    }
    let mut seen = vec![false; states.len()];
    for st in states {
        if st.num_shards != n {
            return Err(invalid(format!(
                "inconsistent shard counts: {} vs {n}",
                st.num_shards
            )));
        }
        if st.shard >= n || std::mem::replace(&mut seen[st.shard as usize], true) {
            return Err(invalid(format!(
                "shard {}/{n} missing, duplicated, or out of range",
                st.shard
            )));
        }
        if st.groups.len() != spec.groups.len() {
            return Err(invalid(format!(
                "shard {} carries {} groups, spec has {}",
                st.shard,
                st.groups.len(),
                spec.groups.len()
            )));
        }
    }
    let mut group_accs: Vec<FleetAccumulator> = vec![FleetAccumulator::new(); spec.groups.len()];
    for st in states {
        for (g, acc) in st.groups.iter().enumerate() {
            group_accs[g].merge(acc);
        }
    }
    let mut fleet_acc = FleetAccumulator::new();
    for g in &group_accs {
        fleet_acc.merge(g);
    }
    Ok(build_report(
        spec,
        system_label,
        scheduler_name,
        &group_accs,
        &fleet_acc,
    ))
}

// ---------------------------------------------------------------------------
// Wire format.
//
// Every integer (u64 counter, i128 fixed-point sum) is serialized as
// a decimal string — the vendored JSON tree stores numbers as f64,
// which is exact only up to 2^53 and the score sums routinely exceed
// that. The f64 min/max fields are serialized as the decimal form of
// their IEEE-754 bit pattern (`f64::to_bits`), which round-trips
// every value — including the ±inf sentinels of an empty StatAgg —
// without any decimal-formatting question marks.
// ---------------------------------------------------------------------------

fn s(v: impl ToString) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn stat_to_value(a: &StatAgg) -> JsonValue {
    obj(vec![
        ("count", s(a.count)),
        ("anomalies", s(a.anomalies)),
        ("sum_fp", s(a.sum_fp)),
        ("min_bits", s(a.min.to_bits())),
        ("max_bits", s(a.max.to_bits())),
    ])
}

fn hist_to_value(h: &FixedHistogram) -> JsonValue {
    JsonValue::Array(h.buckets().iter().map(|&c| s(c)).collect())
}

fn model_to_value(m: &ModelAccumulator) -> JsonValue {
    obj(vec![
        ("total_frames", s(m.total_frames)),
        ("executed_frames", s(m.executed_frames)),
        ("untriggered_frames", s(m.untriggered_frames)),
        ("missed_deadlines", s(m.missed_deadlines)),
        (
            "drops",
            JsonValue::Array(vec![
                s(m.drops.superseded),
                s(m.drops.upstream_dropped),
                s(m.drops.starved),
                s(m.drops.preempted),
                s(m.drops.device_lost),
            ]),
        ),
        ("latency", stat_to_value(&m.latency)),
        ("energy", stat_to_value(&m.energy)),
    ])
}

fn scenario_to_value(sc: &ScenarioAccumulator) -> JsonValue {
    obj(vec![
        ("users", s(sc.users)),
        ("overall", stat_to_value(&sc.overall)),
        ("realtime_fp", s(sc.realtime_fp)),
        ("energy_fp", s(sc.energy_fp)),
        ("accuracy_fp", s(sc.accuracy_fp)),
        ("qoe_fp", s(sc.qoe_fp)),
    ])
}

fn acc_to_value(acc: &FleetAccumulator) -> JsonValue {
    obj(vec![
        ("sessions", s(acc.sessions)),
        ("users", s(acc.users)),
        ("session_score", stat_to_value(&acc.session_score)),
        ("latency_hist", hist_to_value(&acc.latency)),
        ("overrun_hist", hist_to_value(&acc.overrun)),
        ("score_hist", hist_to_value(&acc.score)),
        (
            "per_model",
            JsonValue::Array(acc.per_model.iter().map(model_to_value).collect()),
        ),
        (
            "per_scenario",
            JsonValue::Array(
                acc.per_scenario
                    .iter()
                    .map(|(name, sc)| {
                        JsonValue::Array(vec![JsonValue::Str(name.clone()), scenario_to_value(sc)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a decimal-string integer field.
fn parse_int<T: std::str::FromStr>(cursor: &Cursor<'_>, name: &str) -> Result<T, SpecError> {
    let field = cursor.field(name)?;
    let text = field.as_str()?;
    text.parse::<T>().map_err(|_| SpecError::Invalid {
        path: field.path().to_string(),
        message: format!("not a decimal integer: `{text}`"),
    })
}

fn stat_from_value(cursor: &Cursor<'_>) -> Result<StatAgg, SpecError> {
    cursor.deny_unknown_fields(&["count", "anomalies", "sum_fp", "min_bits", "max_bits"])?;
    Ok(StatAgg {
        count: parse_int(cursor, "count")?,
        anomalies: parse_int(cursor, "anomalies")?,
        sum_fp: parse_int(cursor, "sum_fp")?,
        min: f64::from_bits(parse_int::<u64>(cursor, "min_bits")?),
        max: f64::from_bits(parse_int::<u64>(cursor, "max_bits")?),
    })
}

fn hist_from_value(cursor: &Cursor<'_>) -> Result<FixedHistogram, SpecError> {
    let mut buckets = Vec::new();
    for item in cursor.items()? {
        let text = item.as_str()?;
        buckets.push(text.parse::<u64>().map_err(|_| SpecError::Invalid {
            path: item.path().to_string(),
            message: format!("not a decimal integer: `{text}`"),
        })?);
    }
    FixedHistogram::from_buckets(&buckets).ok_or_else(|| SpecError::Invalid {
        path: cursor.path().to_string(),
        message: format!(
            "histogram needs exactly {} buckets, got {}",
            xrbench_score::NUM_BUCKETS,
            buckets.len()
        ),
    })
}

fn model_from_value(cursor: &Cursor<'_>) -> Result<ModelAccumulator, SpecError> {
    cursor.deny_unknown_fields(&[
        "total_frames",
        "executed_frames",
        "untriggered_frames",
        "missed_deadlines",
        "drops",
        "latency",
        "energy",
    ])?;
    let drops_cursor = cursor.field("drops")?;
    let drops = drops_cursor.items()?;
    if drops.len() != 5 {
        return Err(SpecError::Invalid {
            path: drops_cursor.path().to_string(),
            message: format!("drop breakdown needs 5 counters, got {}", drops.len()),
        });
    }
    let count = |i: usize| -> Result<u64, SpecError> {
        let item: &Cursor<'_> = &drops[i];
        let text = item.as_str()?;
        text.parse::<u64>().map_err(|_| SpecError::Invalid {
            path: item.path().to_string(),
            message: format!("not a decimal integer: `{text}`"),
        })
    };
    Ok(ModelAccumulator {
        total_frames: parse_int(cursor, "total_frames")?,
        executed_frames: parse_int(cursor, "executed_frames")?,
        untriggered_frames: parse_int(cursor, "untriggered_frames")?,
        missed_deadlines: parse_int(cursor, "missed_deadlines")?,
        drops: crate::accumulator::DropCounts {
            superseded: count(0)?,
            upstream_dropped: count(1)?,
            starved: count(2)?,
            preempted: count(3)?,
            device_lost: count(4)?,
        },
        latency: stat_from_value(&cursor.field("latency")?)?,
        energy: stat_from_value(&cursor.field("energy")?)?,
    })
}

fn scenario_from_value(cursor: &Cursor<'_>) -> Result<ScenarioAccumulator, SpecError> {
    cursor.deny_unknown_fields(&[
        "users",
        "overall",
        "realtime_fp",
        "energy_fp",
        "accuracy_fp",
        "qoe_fp",
    ])?;
    Ok(ScenarioAccumulator {
        users: parse_int(cursor, "users")?,
        overall: stat_from_value(&cursor.field("overall")?)?,
        realtime_fp: parse_int(cursor, "realtime_fp")?,
        energy_fp: parse_int(cursor, "energy_fp")?,
        accuracy_fp: parse_int(cursor, "accuracy_fp")?,
        qoe_fp: parse_int(cursor, "qoe_fp")?,
    })
}

fn acc_from_value(cursor: &Cursor<'_>) -> Result<FleetAccumulator, SpecError> {
    cursor.deny_unknown_fields(&[
        "sessions",
        "users",
        "session_score",
        "latency_hist",
        "overrun_hist",
        "score_hist",
        "per_model",
        "per_scenario",
    ])?;
    let mut acc = FleetAccumulator::new();
    acc.sessions = parse_int(cursor, "sessions")?;
    acc.users = parse_int(cursor, "users")?;
    acc.session_score = stat_from_value(&cursor.field("session_score")?)?;
    acc.latency = hist_from_value(&cursor.field("latency_hist")?)?;
    acc.overrun = hist_from_value(&cursor.field("overrun_hist")?)?;
    acc.score = hist_from_value(&cursor.field("score_hist")?)?;
    let models_cursor = cursor.field("per_model")?;
    let models = models_cursor.items()?;
    if models.len() != ModelId::ALL.len() {
        return Err(SpecError::Invalid {
            path: models_cursor.path().to_string(),
            message: format!(
                "per_model needs {} entries, got {}",
                ModelId::ALL.len(),
                models.len()
            ),
        });
    }
    for (slot, item) in acc.per_model.iter_mut().zip(&models) {
        *slot = model_from_value(item)?;
    }
    for pair_cursor in cursor.field("per_scenario")?.items()? {
        let pair = pair_cursor.items()?;
        if pair.len() != 2 {
            return Err(SpecError::Invalid {
                path: pair_cursor.path().to_string(),
                message: format!(
                    "scenario entry needs [name, state], got {} items",
                    pair.len()
                ),
            });
        }
        let name = pair[0].as_str()?;
        acc.per_scenario
            .insert(name.to_string(), scenario_from_value(&pair[1])?);
    }
    Ok(acc)
}

impl ShardState {
    /// Serializes this shard state as a single-line JSON document —
    /// the payload a shard child writes to its stdout pipe.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("xrbench_shard_state", s(SHARD_STATE_VERSION)),
            ("shard", s(self.shard)),
            ("num_shards", s(self.num_shards)),
            (
                "groups",
                JsonValue::Array(self.groups.iter().map(acc_to_value).collect()),
            ),
        ];
        if let Some(rss) = self.peak_rss_mib {
            fields.push(("peak_rss_mib", JsonValue::Num(rss)));
        }
        serde_json::to_string(&obj(fields)).expect("shard state serializes")
    }

    /// Parses a shard state back from [`ShardState::to_json`]'s
    /// output. The round trip is exact: the reconstructed accumulators
    /// compare equal to the originals, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed JSON, an unknown wire
    /// version, or any shape/integer problem.
    pub fn from_json(text: &str) -> Result<ShardState, SpecError> {
        let value = parse_json(text)?;
        let cursor = Cursor::root(&value);
        cursor.deny_unknown_fields(&[
            "xrbench_shard_state",
            "shard",
            "num_shards",
            "groups",
            "peak_rss_mib",
        ])?;
        let version: u64 = parse_int(&cursor, "xrbench_shard_state")?;
        if version != SHARD_STATE_VERSION {
            return Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: format!(
                    "unsupported shard-state version {version} (this build speaks {SHARD_STATE_VERSION})"
                ),
            });
        }
        let shard: u32 = parse_int(&cursor, "shard")?;
        let num_shards: u32 = parse_int(&cursor, "num_shards")?;
        if num_shards == 0 || shard >= num_shards {
            return Err(SpecError::Invalid {
                path: cursor.path().to_string(),
                message: format!("shard coordinate {shard}/{num_shards} out of range"),
            });
        }
        let mut groups = Vec::new();
        for item in cursor.field("groups")?.items()? {
            groups.push(acc_from_value(&item)?);
        }
        let peak_rss_mib = match cursor.opt_field("peak_rss_mib")? {
            Some(f) => Some(f.as_f64()?),
            None => None,
        };
        Ok(ShardState {
            shard,
            num_shards,
            groups,
            peak_rss_mib,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_fleet;
    use crate::spec::replica_seed;
    use xrbench_sim::{FaultProcess, RecoveryPolicy, ThrottleSpec, UniformProvider};
    use xrbench_workload::{SessionSpec, UsageScenario};

    fn fleet() -> FleetSpec {
        FleetSpec::new("shardy")
            .group(
                "vr",
                SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 3, 0.002),
                5,
            )
            .group_faulted(
                "churny",
                SessionSpec::uniform("soc", UsageScenario::SocialInteractionA.spec(), 2, 0.003),
                4,
                FaultProcess {
                    failure_rate_per_s: 2.0,
                    mean_downtime_s: 0.05,
                    preemption_rate_per_s: 4.0,
                    mean_preemption_s: 0.02,
                    throttle: Some(ThrottleSpec {
                        period_s: 0.25,
                        duty: 0.4,
                        factor: 0.5,
                    }),
                },
            )
    }

    fn provider() -> UniformProvider {
        UniformProvider::new(2, 0.002, 0.001)
    }

    #[test]
    fn plan_partitions_every_session_exactly_once() {
        let spec = fleet();
        let all = flat_jobs(&spec);
        for n in [1u32, 2, 3, 7, 9, 64] {
            let plan = plan_shards(&spec, n);
            assert_eq!(plan.num_shards(), n);
            assert_eq!(plan.total_sessions(), all.len() as u64, "n = {n}");
            let mut covered: Vec<(u32, u32)> = plan
                .shards
                .iter()
                .flatten()
                .flat_map(|p| {
                    (p.replica_start..p.replica_start + p.replica_count).map(|r| (p.group, r))
                })
                .collect();
            covered.sort_unstable();
            let mut expected = all.clone();
            expected.sort_unstable();
            assert_eq!(covered, expected, "n = {n}");
            // Balance: shard sizes differ by at most one session.
            let sizes: Vec<u64> = plan
                .shards
                .iter()
                .map(|pieces| pieces.iter().map(|p| u64::from(p.replica_count)).sum())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n = {n}: unbalanced {sizes:?}");
        }
    }

    #[test]
    fn any_shard_cut_merges_to_the_unsharded_report() {
        let spec = fleet();
        let p = provider();
        for recovery in [RecoveryPolicy::Drop, RecoveryPolicy::Migrate] {
            let config = FleetRunConfig {
                workers: 2,
                recovery,
                ..FleetRunConfig::default()
            };
            let reference = run_fleet(&spec, &p, &config);
            for n in [1u32, 2, 3, 5, 9, 16] {
                let states: Vec<ShardState> = (0..n)
                    .map(|k| run_fleet_shard(&spec, &p, &config, k, n))
                    .collect();
                let merged =
                    merge_fleet_shards(&spec, &p.label(), "latency-greedy", &states).unwrap();
                assert_eq!(merged, reference, "{recovery} n = {n}");
                assert_eq!(merged.to_json(), reference.to_json(), "{recovery} n = {n}");
            }
        }
    }

    #[test]
    fn shard_state_json_round_trips_bit_exactly() {
        let spec = fleet();
        let config = FleetRunConfig {
            workers: 2,
            ..FleetRunConfig::default()
        };
        for k in 0..3u32 {
            let mut state = run_fleet_shard(&spec, &provider(), &config, k, 3);
            state.peak_rss_mib = Some(12.5);
            let wire = state.to_json();
            let back = ShardState::from_json(&wire).unwrap();
            assert_eq!(back, state, "shard {k}");
            // And the round trip composes with the merge.
            assert_eq!(back.to_json(), wire);
        }
    }

    #[test]
    fn empty_shards_are_the_merge_identity() {
        // More shards than sessions: trailing shards run nothing but
        // still merge cleanly.
        let spec = FleetSpec::uniform(
            "tiny",
            SessionSpec::uniform("s", UsageScenario::ArAssistant.spec(), 2, 0.002),
            2,
        );
        let p = provider();
        let config = FleetRunConfig {
            workers: 1,
            ..FleetRunConfig::default()
        };
        let reference = run_fleet(&spec, &p, &config);
        let n = 5u32;
        let states: Vec<ShardState> = (0..n)
            .map(|k| {
                let state = run_fleet_shard(&spec, &p, &config, k, n);
                ShardState::from_json(&state.to_json()).unwrap()
            })
            .collect();
        assert!(states.iter().any(|s| s.groups[0].sessions == 0));
        let merged = merge_fleet_shards(&spec, &p.label(), "latency-greedy", &states).unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn merge_rejects_inconsistent_partitions() {
        let spec = fleet();
        let p = provider();
        let config = FleetRunConfig {
            workers: 1,
            ..FleetRunConfig::default()
        };
        let s0 = run_fleet_shard(&spec, &p, &config, 0, 2);
        let s1 = run_fleet_shard(&spec, &p, &config, 1, 2);
        // Duplicated shard index.
        assert!(
            merge_fleet_shards(&spec, "u", "latency-greedy", &[s0.clone(), s0.clone()]).is_err()
        );
        // Wrong cardinality.
        assert!(
            merge_fleet_shards(&spec, "u", "latency-greedy", std::slice::from_ref(&s0)).is_err()
        );
        // Empty input.
        assert!(merge_fleet_shards(&spec, "u", "latency-greedy", &[]).is_err());
        // Group count mismatch.
        let mut truncated = s1.clone();
        truncated.groups.pop();
        assert!(merge_fleet_shards(&spec, "u", "latency-greedy", &[s0, truncated]).is_err());
    }

    #[test]
    fn wire_format_rejects_garbage() {
        assert!(ShardState::from_json("not json").is_err());
        assert!(ShardState::from_json("{}").is_err());
        assert!(ShardState::from_json(
            "{\"xrbench_shard_state\":\"9\",\"shard\":\"0\",\"num_shards\":\"1\",\"groups\":[]}"
        )
        .is_err());
        assert!(ShardState::from_json(
            "{\"xrbench_shard_state\":\"1\",\"shard\":\"3\",\"num_shards\":\"2\",\"groups\":[]}"
        )
        .is_err());
    }

    #[test]
    fn seed_derivation_is_shard_invariant() {
        // The property the whole layer leans on, stated directly: the
        // seed of (g, r) never mentions the shard cut.
        let base = 0xDEAD_BEEF;
        for &(g, r) in &[(0u32, 0u32), (0, 7), (3, 11)] {
            let direct = replica_seed(base, g, r);
            // However the job list is sliced, the seed is a pure
            // function of the global coordinate.
            assert_eq!(direct, replica_seed(base, g, r));
        }
    }
}
