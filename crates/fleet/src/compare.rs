//! Recovery-policy comparison: the same fleet, system, and fault
//! seeds executed once per [`RecoveryPolicy`], so the only varying
//! input is what happens to in-flight work on a lost engine.
//!
//! Fault timelines are derived from replica seeds alone (see
//! [`xrbench_sim::fault_seed`]), never from the recovery policy, so
//! every run in a comparison replays the *identical* outage schedule
//! — the comparison isolates the policy's effect exactly.

use serde::Serialize;

use xrbench_sim::{CostProvider, LatencyGreedy, RecoveryPolicy, Scheduler};

use crate::executor::{run_fleet_with, FleetRunConfig};
use crate::report::FleetReport;
use crate::spec::FleetSpec;

/// One recovery policy's fleet outcome under the shared fault seeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicyOutcome {
    /// Recovery policy wire name (`drop` / `requeue` / `migrate`).
    pub policy: String,
    /// Mean per-session score under this policy.
    pub fleet_score: f64,
    /// Inferences executed fleet-wide.
    pub executed_inferences: u64,
    /// Frames dropped fleet-wide (all causes).
    pub dropped_frames: u64,
    /// In-flight frames lost to preemption (`Drop` policy only).
    pub preempted: u64,
    /// In-flight frames lost to engine failure (`Drop` policy only).
    pub device_lost: u64,
    /// Executed inferences past their deadline.
    pub missed_deadlines: u64,
    /// Drop rate (dropped / streamed-and-triggered).
    pub drop_rate: f64,
}

/// The outcome of one policy-comparison run: the baseline `drop`
/// policy against every alternative, under identical fault seeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicyComparisonReport {
    /// Fleet display name.
    pub fleet: String,
    /// Evaluated system label.
    pub system: String,
    /// Scheduler name (shared by every policy run).
    pub scheduler: String,
    /// One row per recovery policy, in [`RecoveryPolicy::ALL`] order.
    pub policies: Vec<PolicyOutcome>,
}

impl PolicyComparisonReport {
    /// Serializes the comparison as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// One policy's outcome by wire name.
    pub fn policy(&self, name: &str) -> Option<&PolicyOutcome> {
        self.policies.iter().find(|p| p.policy == name)
    }

    /// Renders the comparison as an aligned plain-text table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "recovery-policy comparison — fleet `{}` on `{}` under `{}`\n",
            self.fleet, self.system, self.scheduler
        );
        out.push_str(&format!(
            "{:<9} {:>11} {:>9} {:>8} {:>10} {:>10} {:>7} {:>9}\n",
            "policy",
            "score",
            "executed",
            "dropped",
            "preempted",
            "dev-lost",
            "missed",
            "drop-rate"
        ));
        for p in &self.policies {
            out.push_str(&format!(
                "{:<9} {:>11.6} {:>9} {:>8} {:>10} {:>10} {:>7} {:>9.4}\n",
                p.policy,
                p.fleet_score,
                p.executed_inferences,
                p.dropped_frames,
                p.preempted,
                p.device_lost,
                p.missed_deadlines,
                p.drop_rate,
            ));
        }
        out
    }
}

fn outcome(policy: RecoveryPolicy, report: &FleetReport) -> PolicyOutcome {
    PolicyOutcome {
        policy: policy.as_str().to_string(),
        fleet_score: report.fleet_score,
        executed_inferences: report.executed_inferences,
        dropped_frames: report.dropped_frames,
        preempted: report.drops.preempted,
        device_lost: report.drops.device_lost,
        missed_deadlines: report.missed_deadlines,
        drop_rate: report.drop_rate,
    }
}

/// Runs the fleet once per [`RecoveryPolicy`] (identical spec, seeds,
/// and fault timelines) under the default latency-greedy scheduler and
/// tabulates the outcomes.
///
/// # Panics
///
/// Same contract as [`crate::run_fleet`].
pub fn compare_recovery_policies(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
) -> PolicyComparisonReport {
    compare_recovery_policies_with(spec, system, config, &|| Box::new(LatencyGreedy::new()))
}

/// [`compare_recovery_policies`] under an explicit scheduler factory.
///
/// # Panics
///
/// Same contract as [`crate::run_fleet_with`].
pub fn compare_recovery_policies_with(
    spec: &FleetSpec,
    system: &(dyn CostProvider + Sync),
    config: &FleetRunConfig,
    scheduler_factory: &(dyn Fn() -> Box<dyn Scheduler> + Sync),
) -> PolicyComparisonReport {
    let mut policies = Vec::with_capacity(RecoveryPolicy::ALL.len());
    let mut header: Option<(String, String)> = None;
    for policy in RecoveryPolicy::ALL {
        let cfg = FleetRunConfig {
            recovery: policy,
            ..*config
        };
        let report = run_fleet_with(spec, system, &cfg, scheduler_factory);
        if header.is_none() {
            header = Some((report.system.clone(), report.scheduler.clone()));
        }
        policies.push(outcome(policy, &report));
    }
    let (system_label, scheduler) = header.expect("RecoveryPolicy::ALL is non-empty");
    PolicyComparisonReport {
        fleet: spec.name.clone(),
        system: system_label,
        scheduler,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_sim::{FaultProcess, ThrottleSpec, UniformProvider};
    use xrbench_workload::{SessionSpec, UsageScenario};

    fn churny() -> FaultProcess {
        FaultProcess {
            failure_rate_per_s: 2.0,
            mean_downtime_s: 0.05,
            preemption_rate_per_s: 4.0,
            mean_preemption_s: 0.02,
            throttle: Some(ThrottleSpec {
                period_s: 0.25,
                duty: 0.4,
                factor: 0.5,
            }),
        }
    }

    fn faulted_fleet() -> FleetSpec {
        FleetSpec::new("churn").group_faulted(
            "vr",
            SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 2, 0.002),
            3,
            churny(),
        )
    }

    #[test]
    fn comparison_covers_every_policy_under_one_fault_seed() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let cfg = FleetRunConfig {
            workers: 2,
            ..FleetRunConfig::default()
        };
        let cmp = compare_recovery_policies(&faulted_fleet(), &p, &cfg);
        assert_eq!(cmp.policies.len(), RecoveryPolicy::ALL.len());
        let drop = cmp.policy("drop").unwrap();
        let requeue = cmp.policy("requeue").unwrap();
        let migrate = cmp.policy("migrate").unwrap();
        // The baseline loses in-flight work to faults; the recovery
        // policies never do.
        assert!(drop.preempted + drop.device_lost > 0);
        assert_eq!(requeue.preempted + requeue.device_lost, 0);
        assert_eq!(migrate.preempted + migrate.device_lost, 0);
        // Recovering work can only help throughput under the same
        // outage schedule.
        assert!(requeue.executed_inferences >= drop.executed_inferences);
        assert!(migrate.executed_inferences >= drop.executed_inferences);
        // The comparison itself is reproducible.
        let again = compare_recovery_policies(&faulted_fleet(), &p, &cfg);
        assert_eq!(cmp, again);
        assert_eq!(cmp.to_json(), again.to_json());
    }

    #[test]
    fn table_renders_one_row_per_policy() {
        let p = UniformProvider::new(2, 0.002, 0.001);
        let cfg = FleetRunConfig {
            workers: 1,
            ..FleetRunConfig::default()
        };
        let cmp = compare_recovery_policies(&faulted_fleet(), &p, &cfg);
        let table = cmp.render_table();
        for policy in RecoveryPolicy::ALL {
            assert!(table.contains(policy.as_str()), "{table}");
        }
        assert_eq!(table.lines().count(), 2 + RecoveryPolicy::ALL.len());
    }
}
