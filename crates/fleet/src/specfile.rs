//! The JSON wire format for fleet topologies.
//!
//! A [`FleetSpec`] can be defined in a text file: M device groups,
//! each an embedded session document (the same schema
//! [`xrbench_workload::spec`] loads) stamped out `replicas` times.
//! Scenario references resolve against the caller's catalog extended
//! by the document's top-level `scenarios` definitions (shared by all
//! groups), then by each session's own local definitions.
//!
//! ```json
//! {
//!   "name": "arcade",
//!   "scenarios": [ /* optional shared scenario definitions */ ],
//!   "groups": [
//!     { "name": "vr", "replicas": 8,
//!       "session": { "name": "party",
//!                    "uniform": { "scenario": "VR Gaming",
//!                                 "users": 4, "stagger_s": 0.002 } } }
//!   ]
//! }
//! ```

use serde::de::Cursor;
use serde::json::JsonValue;

use xrbench_workload::spec::{
    extend_catalog, parse_json, session_from_value, session_to_value, SpecError,
};
use xrbench_workload::ScenarioCatalog;

use crate::spec::FleetSpec;

/// Decodes a fleet from a parsed JSON value.
///
/// # Errors
///
/// Returns a [`SpecError`] for shape problems, zero-replica or
/// group-less fleets, or any error from the embedded session and
/// scenario documents.
pub fn fleet_from_value(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<FleetSpec, SpecError> {
    cursor.deny_unknown_fields(&["name", "scenarios", "groups"])?;
    let name: String = cursor.get_field("name")?;
    let catalog = extend_catalog(cursor, catalog)?;

    let groups = cursor.field("groups")?.items()?;
    if groups.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "fleet needs at least one device group".to_string(),
        });
    }
    let mut fleet = FleetSpec::new(name);
    for group in groups {
        group.deny_unknown_fields(&["name", "replicas", "session"])?;
        let group_name: String = group.get_field("name")?;
        let replicas_cursor = group.field("replicas")?;
        let replicas: u32 = replicas_cursor.get()?;
        if replicas == 0 {
            return Err(SpecError::Invalid {
                path: replicas_cursor.path().to_string(),
                message: "device group needs at least one replica".to_string(),
            });
        }
        let session = session_from_value(&group.field("session")?, &catalog)?;
        fleet = fleet.group(group_name, session, replicas);
    }
    Ok(fleet)
}

/// Loads a fleet from JSON text (see [`fleet_from_value`]).
///
/// # Errors
///
/// See [`fleet_from_value`]; malformed JSON yields [`SpecError::Json`].
pub fn fleet_from_str(text: &str, catalog: &ScenarioCatalog) -> Result<FleetSpec, SpecError> {
    let value = parse_json(text)?;
    fleet_from_value(&Cursor::root(&value), catalog)
}

/// The serializable wire value of a fleet. Each group's session is
/// exported through [`session_to_value`], so non-builtin scenarios
/// travel as local definitions and the result reloads exactly.
pub fn fleet_to_value(fleet: &FleetSpec) -> JsonValue {
    JsonValue::Object(vec![
        ("name".to_string(), JsonValue::Str(fleet.name.clone())),
        (
            "groups".to_string(),
            JsonValue::Array(
                fleet
                    .groups
                    .iter()
                    .map(|g| {
                        JsonValue::Object(vec![
                            ("name".to_string(), JsonValue::Str(g.name.clone())),
                            (
                                "replicas".to_string(),
                                JsonValue::Num(f64::from(g.replicas)),
                            ),
                            ("session".to_string(), session_to_value(&g.session)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes a fleet as a pretty-printed spec file (the format
/// [`fleet_from_str`] loads).
pub fn fleet_to_json(fleet: &FleetSpec) -> String {
    serde_json::to_string_pretty(&fleet_to_value(fleet)).expect("spec serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_workload::{SessionSpec, UsageScenario};

    #[test]
    fn loads_a_two_group_fleet() {
        let fleet = fleet_from_str(
            r#"{
                "name": "arcade",
                "groups": [
                    { "name": "vr", "replicas": 8,
                      "session": { "name": "party",
                                   "uniform": { "scenario": "VR Gaming",
                                                "users": 4, "stagger_s": 0.002 } } },
                    { "name": "ar", "replicas": 4,
                      "session": { "name": "walk",
                                   "uniform": { "scenario": "AR Assistant",
                                                "users": 2 } } }
                ]
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        assert_eq!(fleet.name, "arcade");
        assert_eq!(fleet.total_sessions(), 12);
        assert_eq!(fleet.total_users(), 8 * 4 + 4 * 2);
    }

    #[test]
    fn shared_scenarios_reach_every_group() {
        let fleet = fleet_from_str(
            r#"{
                "name": "f",
                "scenarios": [
                    { "name": "Fitness", "models": [
                        { "model": "HT", "target_fps": 30.0 } ] }
                ],
                "groups": [
                    { "name": "a", "replicas": 1,
                      "session": { "name": "s",
                                   "uniform": { "scenario": "Fitness", "users": 1 } } }
                ]
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        assert_eq!(fleet.groups[0].session.users[0].spec.name, "Fitness");
    }

    #[test]
    fn rejections_never_panic() {
        let catalog = ScenarioCatalog::builtin();
        for (text, needle) in [
            ("{ nope", "invalid JSON"),
            (
                r#"{ "name": "f", "groups": [] }"#,
                "at least one device group",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 0,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "VR Gaming", "users": 1 } } } ] }"#,
                "at least one replica",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 1,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "Nope", "users": 1 } } } ] }"#,
                "unknown scenario `Nope`",
            ),
            (r#"{ "name": "f", "gruops": [] }"#, "unknown field `gruops`"),
        ] {
            let err = fleet_from_str(text, &catalog).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn fleets_round_trip_byte_identically() {
        let fleet = FleetSpec::new("demo")
            .group(
                "vr",
                SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 4, 0.002),
                8,
            )
            .group(
                "mix",
                SessionSpec::mixed(
                    "mix",
                    &[
                        UsageScenario::ArGaming.spec(),
                        UsageScenario::OutdoorActivityA.spec(),
                    ],
                    3,
                    0.01,
                ),
                2,
            );
        let json = fleet_to_json(&fleet);
        let reloaded = fleet_from_str(&json, &ScenarioCatalog::builtin()).unwrap();
        assert_eq!(reloaded, fleet);
        assert_eq!(fleet_to_json(&reloaded), json);
    }
}
